//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two shapes this workspace serializes:
//!
//! * structs with named fields — rendered as a JSON-style object with one
//!   entry per field, in declaration order;
//! * C-like enums (unit variants only) — rendered as the variant name as
//!   a string.
//!
//! Generics, tuple structs and data-carrying enums are intentionally
//! unsupported; deriving on one is a compile-time panic with a clear
//! message. Built on `proc_macro` alone (no syn/quote, which are not
//! available offline), so parsing is a small hand-rolled token walk.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Shape {
    /// Struct name + named fields in order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names in order.
    Enum(String, Vec<String>),
}

/// Walks the item's tokens: skips attributes and visibility, finds
/// `struct`/`enum`, the type name, and the brace-delimited body.
fn parse(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (s.as_str(), &kind) {
                    ("struct" | "enum", None) => kind = Some(s),
                    (_, Some(_)) if name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' && name.is_some() => {
                panic!("vendored serde_derive does not support generic types");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = name.expect("derive input must have a name");
    let body = body.unwrap_or_else(|| {
        panic!("vendored serde_derive requires a braced body on `{name}` (no tuple/unit structs)")
    });
    if kind == "struct" {
        Shape::Struct(name, struct_fields(body))
    } else {
        Shape::Enum(name, enum_variants(body))
    }
}

/// Extracts field names from a named-field struct body.
fn struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // One field: attrs, visibility, name, ':', type tokens, ','.
        let mut field_name: Option<String> = None;
        let mut saw_any = false;
        while let Some(tt) = iter.next() {
            saw_any = true;
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    let _ = iter.next(); // attribute body
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    // Optional `pub(...)` restriction group.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                TokenTree::Ident(id) if field_name.is_none() => {
                    field_name = Some(id.to_string());
                }
                TokenTree::Punct(p) if p.as_char() == ':' => {
                    // Skip type tokens until a top-level comma. Generics in
                    // the type (`Vec<f32>`) contain no top-level commas
                    // because `<...>` nesting tracks depth.
                    let mut angle_depth = 0i32;
                    for tt in iter.by_ref() {
                        match &tt {
                            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                            _ => {}
                        }
                    }
                    break;
                }
                _ => {}
            }
        }
        match field_name {
            Some(f) => fields.push(f),
            None if !saw_any => break,
            None => break,
        }
    }
    fields
}

/// Extracts variant names from an enum body, panicking on payloads.
fn enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                // Payload or discriminant means unsupported.
                if let Some(next) = iter.peek() {
                    match next {
                        TokenTree::Group(_) => {
                            panic!("vendored serde_derive supports only unit enum variants")
                        }
                        TokenTree::Punct(p) if p.as_char() == '=' => {
                            panic!("vendored serde_derive does not support discriminants")
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse(input) {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::serde::Map::from(vec![{entries}]))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse(input) {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\n\
                             v.get(\"{f}\").ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?\n\
                         )?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated impl parses")
}
