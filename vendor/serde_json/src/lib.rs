//! Offline stand-in for `serde_json`.
//!
//! Text encoding/decoding for the vendored [`serde`] value tree: the
//! [`json!`] macro, [`to_string`]/[`to_string_pretty`], [`from_str`], and
//! a hand-rolled recursive-descent JSON parser. Floats print with Rust's
//! shortest-roundtrip formatting, so `f32`/`f64` survive a round-trip
//! exactly.

pub use serde::{Error, Map, Value};

/// Renders any serializable value into the [`Value`] data model.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Reads a typed value back out of the [`Value`] data model.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-ish syntax.
///
/// Keys are string literals; values are arbitrary Rust expressions
/// (including nested `json!` calls), `null`, or bracketed arrays of
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:tt : $v:expr),* $(,)? }) => {
        $crate::Value::Object($crate::Map::from(vec![
            $( (($k).to_string(), $crate::to_value(&$v)) ),*
        ]))
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

/// Parses a complete JSON document (surrounding whitespace allowed).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error("unexpected end of input".into()));
    };
    match c {
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'"' => Ok(Value::Str(parse_string(b, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields.into()));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_at(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields.into()));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error("unterminated string".into()));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(Error("unterminated escape".into()));
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error("short \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u".into()))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                }
            }
            _ => {
                // Re-decode UTF-8 starting at the byte we consumed.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xc0) == 0x80 {
                    end += 1;
                }
                let chunk =
                    std::str::from_utf8(&b[start..end]).map_err(|_| Error("bad utf-8".into()))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("bad number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::I64(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let name = "conv";
        let v = json!({
            "op": name,
            "latency_us": 12.5,
            "n": 3u64,
            "tags": json!([1i64, 2, 3]),
        });
        assert_eq!(v["op"].as_str(), Some("conv"));
        assert_eq!(v["latency_us"].as_f64(), Some(12.5));
        assert_eq!(v["tags"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn parse_roundtrip() {
        let v = json!({
            "a": 1i64,
            "b": [1.5f64, -2.0],
            "c": "x\"y",
            "d": json!(null),
            "e": true,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-9, 12345.678, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x, y, "text {s}");
        }
        for x in [0.1f32, 2.0f32 / 3.0, 3.4e38f32] {
            let s = to_string(&x).unwrap();
            let y: f32 = from_str(&s).unwrap();
            assert_eq!(x, y, "text {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
