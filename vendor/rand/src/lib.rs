//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `StdRng` (a
//! xoshiro256++ generator seeded via SplitMix64), `SeedableRng::
//! seed_from_u64`, and the `Rng` sampling surface (`gen`, `gen_range`
//! over integer and float ranges, `gen_bool`). Determinism is the only
//! contract the workspace relies on (all tuning is seeded); the streams
//! are not bit-compatible with upstream `rand 0.8`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Snapshot of the raw generator state (for checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
