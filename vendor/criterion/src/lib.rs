//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter`,
//! `iter_batched`) but replaces the statistical engine with a simple
//! wall-clock mean over `sample_size` samples, printed as plain text.
//! Good enough to spot order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

/// Benchmark driver; collects per-function timings and prints them.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as one named benchmark and prints its mean sample time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample, then the measured ones.
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{id:<40} mean {:>12}  median {:>12}  ({} samples)",
            fmt_time(mean),
            fmt_time(median),
            samples.len()
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

/// Hint for how much setup output to batch; ignored by this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample is neither a single noisy call nor
        // unbounded: aim for ~1ms of work, capped at 1000 iterations.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += t1.elapsed();
        self.iters += iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        self.elapsed += t.elapsed();
        self.iters += 1;
    }
}

/// Opaque value barrier so the optimizer cannot delete benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut n = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("smoke/add", |b| {
                b.iter(|| {
                    n = n.wrapping_add(1);
                    n
                })
            });
        assert!(n > 0);
    }

    #[test]
    fn iter_batched_uses_setup_output() {
        let mut got = Vec::new();
        Criterion::default()
            .sample_size(2)
            .bench_function("smoke/batched", |b| {
                b.iter_batched(|| 21u32, |x| got.push(x * 2), BatchSize::SmallInput)
            });
        assert!(got.iter().all(|&v| v == 42));
    }
}
