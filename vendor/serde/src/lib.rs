//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of serde it uses. Instead of upstream serde's
//! visitor architecture, this implementation round-trips everything
//! through a JSON-like [`Value`] tree: `Serialize` renders a value tree,
//! `Deserialize` reads one back. `serde_json` (also vendored) adds the
//! text encoding. The `#[derive(Serialize, Deserialize)]` macros come
//! from the sibling `serde_derive` crate and support structs with named
//! fields and C-like enums — the shapes this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the data model of the vendored serde stack.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Signed integers.
    I64(i64),
    /// Unsigned integers that do not fit `i64`.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Map),
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Appends or replaces `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl From<Vec<(String, Value)>> for Map {
    fn from(entries: Vec<(String, Value)>) -> Map {
        Map { entries }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl std::ops::Index<&str> for Map {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Error for a missing struct field.
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }

    /// Error for a type mismatch.
    pub fn type_mismatch(expected: &str, got: &Value) -> Error {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Borrow as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an `i64` (lossless).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(*v as i64),
            _ => None,
        }
    }

    /// Borrow as a `u64` (lossless, non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::U64(v) => Some(*v),
            Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.9e19 => Some(*v as u64),
            _ => None,
        }
    }

    /// Borrow as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True when this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(index),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Renders a value as compact JSON.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        write!(f, "{out}")
    }
}

/// Escapes a string into a JSON string literal.
pub fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a value as JSON. `indent = Some(width)` pretty-prints.
pub fn write_json(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's shortest-roundtrip float printing; keep a
                // trailing `.0` so the token stays a JSON number that
                // parses back as a float.
                let s = format!("{n}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no infinities; mirror serde_json by emitting
                // null.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_json_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                pad(out, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                escape_json_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(item, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                pad(out, depth);
            }
            out.push('}');
        }
    }
}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types readable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads a value tree back into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::type_mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // f32 -> f64 -> f32 is exact, so this round-trips.
        Ok(v.as_f64()
            .ok_or_else(|| Error::type_mismatch("number", v))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into())
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::type_mismatch("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::type_mismatch("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::type_mismatch("array", v))?;
                Ok(($($t::from_value(
                    a.get($n).ok_or_else(|| Error(format!("tuple too short at {}", $n)))?
                )?,)+))
            }
        }
    )+};
}
tuple_impl!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(Map::from(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::F64(1.5)])),
        ]));
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["b"][0].as_f64(), Some(1.5));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(Map::from(vec![
            ("x".into(), Value::I64(-2)),
            ("s".into(), Value::Str("a\"b".into())),
        ]));
        assert_eq!(v.to_string(), r#"{"x":-2,"s":"a\"b"}"#);
    }

    #[test]
    fn tuples_and_vecs_roundtrip() {
        let x: Vec<(u64, f64)> = vec![(1, 0.5), (2, 0.25)];
        let v = x.to_value();
        let back: Vec<(u64, f64)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn float_display_keeps_json_number_shape() {
        assert_eq!(Value::F64(2.0).to_string(), "2.0");
        assert_eq!(Value::F64(0.1).to_string(), "0.1");
    }
}
