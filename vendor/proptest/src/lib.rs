//! Offline stand-in for `proptest`.
//!
//! Same test-authoring surface (`proptest!`, `Strategy`, `any`,
//! `prop::collection::vec`, `prop_assert*`, `prop_assume`), but the engine
//! is plain deterministic random sampling: each test runs
//! `ProptestConfig::cases` cases seeded from the test name and case index.
//! There is no shrinking — a failing case reports its inputs via the
//! assertion message and the case number, which is reproducible because
//! sampling is deterministic.

use std::marker::PhantomData;

/// Per-case deterministic random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name and case index so every case is
    /// independent but reproducible across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a proptest case body resolved.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                ((rng.next_u64() as u128 % span as u128) as i128 + self.start as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                ((rng.next_u64() as u128 % span as u128) as i128 + *self.start() as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}

/// Strategy for [`Arbitrary`] types; produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Inclusive bounds for a collection length.
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let outcome = (|| -> Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} of {} failed: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };

    /// Namespace mirror so `prop::collection::vec` works from the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0i64..100, 3..=5);
        let mut a = TestRng::for_case("t", 7);
        let mut b = TestRng::for_case("t", 7);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..=9, y in 0usize..4, f in -1.5f32..2.5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 4, "y = {y}");
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u64>(), 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
        }

        #[test]
        fn assume_rejects_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
