//! Workspace-level integration tests: the full pipeline (graph -> joint
//! tuning -> lowering -> execution) against the reference executor, plus
//! cross-cutting invariants that span crates.

use std::collections::HashMap;

use alt_core::{CompileOptions, Compiler};
use alt_layout::{presets, LayoutPlan, PropagationMode};
use alt_loopir::{lower, run_program, GraphSchedule};
use alt_sim::{arm_cpu, intel_cpu, nvidia_gpu};
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, NdBuf, Shape, TensorId};

/// A small conv network: stem -> residual block -> pool -> dense.
fn mini_convnet() -> (Graph, TensorId) {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 18, 18]));
    let w0 = g.add_param("w0", Shape::new([8, 3, 3, 3]));
    let stem = ops::conv2d(&mut g, x, w0, ConvCfg::default());
    let r0 = ops::relu(&mut g, stem);
    let p = ops::pad2d_spatial(&mut g, r0, 1);
    let w1 = g.add_param("w1", Shape::new([8, 8, 3, 3]));
    let c1 = ops::conv2d(&mut g, p, w1, ConvCfg::default());
    let sum = ops::add(&mut g, c1, r0);
    let act = ops::relu(&mut g, sum);
    let pool = ops::max_pool2d(&mut g, act, 2, 2);
    let flat = ops::reshape(&mut g, pool, Shape::new([1, 8 * 8 * 8]));
    let wfc = g.add_param("wfc", Shape::new([8 * 8 * 8, 10]));
    let out = ops::gmm(&mut g, flat, wfc);
    (g, out)
}

/// A tiny transformer block: projections, attention, FFN, layernorm.
fn mini_transformer() -> (Graph, TensorId) {
    let mut g = Graph::new();
    let (s, h, a) = (8i64, 16i64, 2i64);
    let x = g.add_input("x", Shape::new([s, h]));
    let wq = g.add_param("wq", Shape::new([h, h]));
    let wk = g.add_param("wk", Shape::new([h, h]));
    let wv = g.add_param("wv", Shape::new([h, h]));
    let q = ops::gmm(&mut g, x, wq);
    let k = ops::gmm(&mut g, x, wk);
    let v = ops::gmm(&mut g, x, wv);
    let split = |g: &mut Graph, t| {
        let t4 = ops::reshape(g, t, Shape::new([1, s, a, h / a]));
        let p = ops::permute(g, t4, &[0, 2, 1, 3]);
        ops::reshape(g, p, Shape::new([a, s, h / a]))
    };
    let qh = split(&mut g, q);
    let kh = split(&mut g, k);
    let vh = split(&mut g, v);
    let kt = ops::permute(&mut g, kh, &[0, 2, 1]);
    let scores = ops::batch_gmm(&mut g, qh, kt);
    let scaled = ops::scale_const(&mut g, scores, 1.0 / (h as f32 / a as f32).sqrt());
    let probs = ops::softmax_lastdim(&mut g, scaled);
    let ctx = ops::batch_gmm(&mut g, probs, vh);
    let ctx4 = ops::reshape(&mut g, ctx, Shape::new([1, a, s, h / a]));
    let merged = ops::permute(&mut g, ctx4, &[0, 2, 1, 3]);
    let ctx2 = ops::reshape(&mut g, merged, Shape::new([s, h]));
    let res = ops::add(&mut g, ctx2, x);
    let gamma = g.add_param("gamma", Shape::new([h]));
    let beta = g.add_param("beta", Shape::new([h]));
    let out = ops::layernorm_lastdim(&mut g, res, gamma, beta, 1e-5);
    (g, out)
}

fn compare(
    graph: &Graph,
    out: TensorId,
    got: &HashMap<TensorId, NdBuf>,
    bindings: &HashMap<TensorId, NdBuf>,
    tol: f32,
) {
    let want = run_graph(graph, bindings);
    let diff = want[out.0].max_abs_diff(&got[&out]);
    assert!(diff < tol, "output differs by {diff}");
}

#[test]
fn compiled_convnet_matches_reference_on_all_platforms() {
    let (g, out) = mini_convnet();
    for profile in [intel_cpu(), nvidia_gpu(), arm_cpu()] {
        let compiler = Compiler::new(profile).with_options(CompileOptions {
            joint_budget: 24,
            loop_budget: 24,
            seed: 11,
            ..CompileOptions::default()
        });
        let compiled = compiler.compile(&g);
        let bindings = random_bindings(&g, 5);
        let outputs = compiled.run(&bindings);
        compare(&g, out, &outputs, &bindings, 1e-3);
    }
}

#[test]
fn compiled_transformer_matches_reference() {
    let (g, out) = mini_transformer();
    let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
        joint_budget: 16,
        loop_budget: 16,
        seed: 3,
        ..CompileOptions::default()
    });
    let compiled = compiler.compile(&g);
    let bindings = random_bindings(&g, 8);
    let outputs = compiled.run(&bindings);
    compare(&g, out, &outputs, &bindings, 1e-3);
}

#[test]
fn propagation_modes_agree_numerically() {
    // Full propagation, no propagation (conversions everywhere) and
    // WithoutFusionAlign must all compute the same values.
    let (g, out) = mini_convnet();
    let bindings = random_bindings(&g, 9);
    let reference = run_graph(&g, &bindings);
    for mode in [
        PropagationMode::Full,
        PropagationMode::WithoutFusionAlign,
        PropagationMode::None,
    ] {
        let mut plan = LayoutPlan::new(mode);
        // Assign a tiled layout to the first conv's output and a
        // channels-last input to the second conv.
        let convs = g.complex_ops();
        let c0_out = g.node(convs[0]).output;
        plan.assign_output_layout(
            &g,
            convs[0],
            presets::channel_tiled(g.tensor(c0_out).shape.clone(), 4).unwrap(),
        );
        let c1_in = g.node(convs[1]).inputs[0];
        plan.assign_input_layout(
            &g,
            convs[1],
            c1_in,
            presets::nhwo(g.tensor(c1_in).shape.clone()).unwrap(),
        );
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let got = run_program(&program, &g, &plan, &bindings);
        let diff = reference[out.0].max_abs_diff(&got[&out]);
        assert!(diff < 1e-3, "{mode:?} differs by {diff}");
    }
}

#[test]
fn compilation_is_deterministic() {
    let (g, _) = mini_convnet();
    let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
        joint_budget: 16,
        loop_budget: 16,
        seed: 77,
        ..CompileOptions::default()
    });
    let a = compiler.compile(&g);
    let b = compiler.compile(&g);
    assert_eq!(a.estimated_latency(), b.estimated_latency());
    assert_eq!(a.measurements(), b.measurements());
}

#[test]
fn baselines_and_alt_are_numerically_equivalent() {
    // The tuners only change layouts and schedules, never semantics.
    let (g, out) = mini_convnet();
    let bindings = random_bindings(&g, 13);
    let r = alt_baselines::ansor_like(&g, intel_cpu(), 16, 2);
    assert!(r.latency.is_finite());
    // Vendor plan executes correctly too.
    let (plan, sched) = alt_baselines::vendor_plan(&g, &intel_cpu(), true);
    let program = lower(&g, &plan, &sched);
    let got = run_program(&program, &g, &plan, &bindings);
    compare(&g, out, &got, &bindings, 1e-3);
}

#[test]
fn two_level_templates_compile_and_run() {
    let (g, out) = mini_convnet();
    let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
        joint_budget: 24,
        loop_budget: 8,
        levels: 2,
        seed: 21,
        ..CompileOptions::default()
    });
    let compiled = compiler.compile(&g);
    let bindings = random_bindings(&g, 17);
    let outputs = compiled.run(&bindings);
    compare(&g, out, &outputs, &bindings, 1e-3);
}

/// A faithful MobileNet-V2 inverted-residual block at toy size:
/// expand 1x1 -> depthwise 3x3 -> project 1x1 with a residual.
fn mini_inverted_residual() -> (Graph, TensorId) {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 8, 12, 12]));
    let we = g.add_param("we", Shape::new([24, 8, 1, 1]));
    let ex = ops::conv2d(&mut g, x, we, ConvCfg::default());
    let e6 = ops::relu6(&mut g, ex);
    let p = ops::pad2d_spatial(&mut g, e6, 1);
    let wd = g.add_param("wd", Shape::new([24, 1, 3, 3]));
    let dw = ops::conv2d(
        &mut g,
        p,
        wd,
        ConvCfg {
            groups: 24,
            ..ConvCfg::default()
        },
    );
    let d6 = ops::relu6(&mut g, dw);
    let wp = g.add_param("wp", Shape::new([8, 24, 1, 1]));
    let proj = ops::conv2d(&mut g, d6, wp, ConvCfg::default());
    let out = ops::add(&mut g, proj, x);
    (g, out)
}

#[test]
fn compiled_inverted_residual_matches_reference() {
    let (g, out) = mini_inverted_residual();
    let compiler = Compiler::new(arm_cpu()).with_options(CompileOptions {
        joint_budget: 24,
        loop_budget: 24,
        seed: 19,
        ..CompileOptions::default()
    });
    let compiled = compiler.compile(&g);
    let bindings = random_bindings(&g, 23);
    let outputs = compiled.run(&bindings);
    compare(&g, out, &outputs, &bindings, 1e-3);
}

#[test]
fn compiled_conv3d_block_matches_reference() {
    // ResNet3D-style block at toy size, with per-dimension strides.
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 5, 10, 10]));
    let p = ops::pad(&mut g, x, &[(0, 0), (0, 0), (1, 1), (1, 1), (1, 1)]);
    let w = g.add_param("w", Shape::new([6, 3, 3, 3, 3]));
    let c = ops::conv3d(&mut g, p, w, ConvCfg::with_strides(&[1, 2, 2]));
    let out = ops::relu(&mut g, c);
    let compiler = Compiler::new(nvidia_gpu()).with_options(CompileOptions {
        joint_budget: 16,
        loop_budget: 16,
        seed: 29,
        ..CompileOptions::default()
    });
    let compiled = compiler.compile(&g);
    let bindings = random_bindings(&g, 31);
    let outputs = compiled.run(&bindings);
    compare(&g, out, &outputs, &bindings, 1e-3);
}

#[test]
fn two_level_loop_tiling_compiles_and_runs() {
    use alt_autotune::tuner::TuneConfig;
    let (g, out) = mini_convnet();
    let cfg = TuneConfig {
        joint_budget: 16,
        loop_budget: 24,
        loop_levels: 2,
        free_input_layouts: true,
        seed: 37,
        ..TuneConfig::default()
    };
    let r = alt_autotune::tune_graph(&g, intel_cpu(), cfg);
    let program = alt_loopir::lower(&g, &r.plan, &r.sched);
    let bindings = random_bindings(&g, 39);
    let got = alt_loopir::run_program(&program, &g, &r.plan, &bindings);
    compare(&g, out, &got, &bindings, 1e-3);
}

#[test]
fn tuning_a_graph_with_no_complex_ops_is_safe() {
    // Elementwise-only graph: the joint stage has nothing to do; tuning
    // must not panic or spin.
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([4, 64]));
    let r = ops::relu(&mut g, x);
    let _ = ops::tanh(&mut g, r);
    let cfg = alt_autotune::TuneConfig {
        joint_budget: 16,
        loop_budget: 16,
        seed: 1,
        ..alt_autotune::TuneConfig::default()
    };
    let res = alt_autotune::tune_graph(&g, intel_cpu(), cfg);
    assert!(res.latency.is_finite() && res.latency > 0.0);
}

#[test]
fn empty_graph_compiles_to_empty_program() {
    let g = Graph::new();
    let compiler = Compiler::new(intel_cpu());
    let compiled = compiler.compile_unoptimized(&g);
    assert!(compiled.program().groups.is_empty());
    let outputs = compiled.run(&HashMap::new());
    assert!(outputs.is_empty());
}

#[test]
fn jsonl_trace_round_trips_through_report() {
    // Acceptance: compiling with a JSONL sink writes exactly one
    // measurement record per budget unit (joint + loop), and the
    // `altc report` renderer reconstructs the best-so-far latency curve
    // and the cache-counter summary from the file alone.
    use alt_telemetry::{read_jsonl, render_report, JsonlSink, Record};

    let (g, _) = mini_convnet();
    let dir = std::env::temp_dir().join(format!("alt-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let sink = std::sync::Arc::new(JsonlSink::create(&path).unwrap());
    let compiler = Compiler::new(intel_cpu())
        .with_options(CompileOptions {
            joint_budget: 12,
            loop_budget: 20,
            free_input_layouts: true,
            seed: 2,
            ..CompileOptions::default()
        })
        .with_telemetry(sink);
    let compiled = compiler.compile(&g);
    assert_eq!(
        compiled.run_summary().measurements,
        32,
        "tuning must consume exactly joint + loop budget"
    );

    let records = read_jsonl(&path).unwrap();
    let measured = records
        .iter()
        .filter(|r| matches!(r, Record::Measurement(_)))
        .count() as u64;
    assert_eq!(measured, 32, "one trace record per budget unit");
    assert!(
        records
            .iter()
            .any(|r| matches!(r, Record::RunSummary(s) if s.measurements == 32)),
        "trace must end with the run summary"
    );

    let report = render_report(&records);
    assert!(report.contains("budget: joint 12 + loop 20 = 32 units; consumed 32"));
    assert!(report.contains("best-latency curve"), "{report}");
    assert!(report.contains("cache / prefetch counters"), "{report}");
    assert!(report.contains("l1 accesses"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_panics_on_missing_binding() {
    let (g, _) = mini_convnet();
    let compiler = Compiler::new(intel_cpu());
    let compiled = compiler.compile_unoptimized(&g);
    let result = std::panic::catch_unwind(|| compiled.run(&HashMap::new()));
    assert!(result.is_err(), "missing bindings must be reported loudly");
}
