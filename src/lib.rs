//! Umbrella crate re-exporting the ALT reproduction stack.
pub use alt_autotune as autotune;
pub use alt_baselines as baselines;
pub use alt_core as core;
pub use alt_layout as layout;
pub use alt_loopir as loopir;
pub use alt_models as models;
pub use alt_sim as sim;
pub use alt_tensor as tensor;
