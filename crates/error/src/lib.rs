//! The workspace-wide typed error for the tuning path.
//!
//! An invalid layout/loop candidate must be a *recoverable event*, not a
//! process abort: the tuner consumes one budget unit, records the
//! failure, and moves on. Every fallible seam on the tuning path — layout
//! primitive application and index inference (`alt-layout`), lowering
//! (`alt-loopir`), simulation (`alt-sim`), and fault-injected measurement
//! (`alt-autotune`) — reports through [`AltError`].
//!
//! This crate is dependency-free so every layer can use it without
//! cycles; richer per-domain errors (e.g. `alt_layout::LayoutError`)
//! convert into it via `From` impls defined next to the domain error.

use std::fmt;

/// A recoverable failure anywhere on the tuning path.
#[derive(Clone, Debug, PartialEq)]
pub enum AltError {
    /// A layout primitive application or index-map inference failed
    /// (split divisibility, pad bounds, reorder/fuse validity, rank
    /// mismatches, non-constant index maps).
    Layout {
        /// Human-readable failure description.
        detail: String,
    },
    /// Lowering a scheduled, layout-annotated graph failed.
    Lower {
        /// Human-readable failure description.
        detail: String,
    },
    /// The simulator produced an unusable latency (non-finite or
    /// non-positive).
    Sim {
        /// Human-readable failure description.
        detail: String,
    },
    /// The fault injector declared this candidate's compilation failed
    /// (mirrors real-hardware build flakiness).
    InjectedCompileFailure {
        /// The candidate being measured.
        candidate: String,
    },
    /// The measurement timed out (injected; mirrors on-device hangs).
    MeasureTimeout {
        /// The candidate being measured.
        candidate: String,
    },
    /// Checkpoint serialization / deserialization / validation failed.
    Checkpoint {
        /// Human-readable failure description.
        detail: String,
    },
    /// The fault injector produced an outcome the measurement path has
    /// no mapping for — an internal inconsistency that degrades into a
    /// failed measurement instead of aborting a long tuning run.
    Injector {
        /// Human-readable failure description.
        detail: String,
    },
}

impl AltError {
    /// A short stable tag naming the error class (used for telemetry
    /// records and counters).
    pub fn kind(&self) -> &'static str {
        match self {
            AltError::Layout { .. } => "layout",
            AltError::Lower { .. } => "lower",
            AltError::Sim { .. } => "sim",
            AltError::InjectedCompileFailure { .. } => "injected_compile",
            AltError::MeasureTimeout { .. } => "timeout",
            AltError::Checkpoint { .. } => "checkpoint",
            AltError::Injector { .. } => "injector",
        }
    }

    /// Whether retrying the same candidate could plausibly succeed.
    ///
    /// Injected flakiness (compile failures, timeouts) is transient —
    /// real hardware sometimes succeeds on a second attempt — while
    /// structural errors (invalid layout, lowering failure) are
    /// deterministic and never worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            AltError::InjectedCompileFailure { .. } | AltError::MeasureTimeout { .. }
        )
    }
}

impl fmt::Display for AltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AltError::Layout { detail } => write!(f, "layout error: {detail}"),
            AltError::Lower { detail } => write!(f, "lowering error: {detail}"),
            AltError::Sim { detail } => write!(f, "simulation error: {detail}"),
            AltError::InjectedCompileFailure { candidate } => {
                write!(f, "injected compile failure for candidate {candidate}")
            }
            AltError::MeasureTimeout { candidate } => {
                write!(f, "measurement timed out for candidate {candidate}")
            }
            AltError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
            AltError::Injector { detail } => write!(f, "fault injector error: {detail}"),
        }
    }
}

impl std::error::Error for AltError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_tags() {
        let cases = [
            (AltError::Layout { detail: "x".into() }, "layout"),
            (AltError::Lower { detail: "x".into() }, "lower"),
            (AltError::Sim { detail: "x".into() }, "sim"),
            (
                AltError::InjectedCompileFailure {
                    candidate: "c".into(),
                },
                "injected_compile",
            ),
            (
                AltError::MeasureTimeout {
                    candidate: "c".into(),
                },
                "timeout",
            ),
            (AltError::Checkpoint { detail: "x".into() }, "checkpoint"),
            (AltError::Injector { detail: "x".into() }, "injector"),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn only_injected_faults_are_transient() {
        assert!(AltError::InjectedCompileFailure {
            candidate: "c".into()
        }
        .is_transient());
        assert!(AltError::MeasureTimeout {
            candidate: "c".into()
        }
        .is_transient());
        assert!(!AltError::Layout { detail: "x".into() }.is_transient());
        assert!(!AltError::Lower { detail: "x".into() }.is_transient());
        // An unexpected injector outcome is an internal inconsistency,
        // not hardware flakiness: retrying would draw fresh RNG state and
        // desynchronize the deterministic transcript.
        assert!(!AltError::Injector { detail: "x".into() }.is_transient());
    }
}
