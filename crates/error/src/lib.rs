//! The workspace-wide typed error for the tuning path.
//!
//! An invalid layout/loop candidate must be a *recoverable event*, not a
//! process abort: the tuner consumes one budget unit, records the
//! failure, and moves on. Every fallible seam on the tuning path — layout
//! primitive application and index inference (`alt-layout`), lowering
//! (`alt-loopir`), simulation (`alt-sim`), and fault-injected measurement
//! (`alt-autotune`) — reports through [`AltError`].
//!
//! This crate is dependency-free so every layer can use it without
//! cycles; richer per-domain errors (e.g. `alt_layout::LayoutError`)
//! convert into it via `From` impls defined next to the domain error.

use std::fmt;

/// A recoverable failure anywhere on the tuning path.
#[derive(Clone, Debug, PartialEq)]
pub enum AltError {
    /// A layout primitive application or index-map inference failed
    /// (split divisibility, pad bounds, reorder/fuse validity, rank
    /// mismatches, non-constant index maps).
    Layout {
        /// Human-readable failure description.
        detail: String,
    },
    /// Lowering a scheduled, layout-annotated graph failed.
    Lower {
        /// Human-readable failure description.
        detail: String,
    },
    /// The simulator produced an unusable latency (non-finite or
    /// non-positive).
    Sim {
        /// Human-readable failure description.
        detail: String,
    },
    /// The fault injector declared this candidate's compilation failed
    /// (mirrors real-hardware build flakiness).
    InjectedCompileFailure {
        /// The candidate being measured.
        candidate: String,
    },
    /// The measurement timed out (injected; mirrors on-device hangs).
    MeasureTimeout {
        /// The candidate being measured.
        candidate: String,
    },
    /// Checkpoint serialization / deserialization / validation failed.
    Checkpoint {
        /// Human-readable failure description.
        detail: String,
    },
    /// The fault injector produced an outcome the measurement path has
    /// no mapping for — an internal inconsistency that degrades into a
    /// failed measurement instead of aborting a long tuning run.
    Injector {
        /// Human-readable failure description.
        detail: String,
    },
    /// The search journal could not be opened or written. Journal
    /// errors are always survivable — the run degrades to journal-less
    /// operation (a warning plus a no-op sink) rather than aborting.
    Journal {
        /// Human-readable failure description.
        detail: String,
    },
    /// The telemetry trace sink could not be opened or written. Trace
    /// errors are always survivable — the run degrades to trace-less
    /// operation (a warning plus a no-op sink) rather than aborting.
    Trace {
        /// Human-readable failure description.
        detail: String,
    },
    /// The durable tuning store failed: lock contention, an
    /// incompatible or unreadable segment file, or a (possibly
    /// injected) I/O failure while appending a record. Store errors are
    /// always survivable — the tuner degrades to store-less operation
    /// rather than aborting a run.
    Store {
        /// Human-readable failure description.
        detail: String,
    },
    /// A static-verification pass rejected the program, layout plan or
    /// schedule. `code` is one of the stable diagnostic codes in
    /// [`codes`], so telemetry, tests and CI can match on it without
    /// parsing the free-form detail.
    Verify {
        /// Stable diagnostic code, e.g. `V007_PAD_UNDERCOVERS`.
        code: &'static str,
        /// Human-readable failure description.
        detail: String,
    },
}

/// Stable diagnostic codes emitted by the static-verification passes
/// (`alt-verify`) and by the fallible schedule/layout legality APIs.
///
/// The numbering is append-only: codes are part of the telemetry and CI
/// contract and must never be renumbered or reused.
pub mod codes {
    /// A loop rebinds a variable that is already live in an enclosing
    /// loop of the same nest.
    pub const V001_REBOUND_AXIS: &str = "V001_REBOUND_AXIS";
    /// An index expression uses a loop variable outside any live binding.
    pub const V002_UNBOUND_AXIS: &str = "V002_UNBOUND_AXIS";
    /// A loop has a non-positive trip count.
    pub const V003_NONPOSITIVE_EXTENT: &str = "V003_NONPOSITIVE_EXTENT";
    /// A buffer load can fall outside the buffer's physical extents.
    pub const V004_OOB_READ: &str = "V004_OOB_READ";
    /// A buffer store can fall outside the buffer's physical extents.
    pub const V005_OOB_WRITE: &str = "V005_OOB_WRITE";
    /// A store can clobber the reserved `store_at` staging slot of a
    /// host buffer (guest data and producer data must stay disjoint).
    pub const V006_STORE_AT_CLOBBERED: &str = "V006_STORE_AT_CLOBBERED";
    /// A load of a padded buffer can escape the padded extents: the pad
    /// does not cover every out-of-range read.
    pub const V007_PAD_UNDERCOVERS: &str = "V007_PAD_UNDERCOVERS";
    /// Split/tiling factors do not divide the axis extent.
    pub const V008_SPLIT_NONDIVISIBLE: &str = "V008_SPLIT_NONDIVISIBLE";
    /// A `@par`/`@vec` axis carries a loop-carried dependence.
    pub const V009_PAR_RACE: &str = "V009_PAR_RACE";
    /// A `@par`/`@vec` annotation sits on a reduction axis: every
    /// iteration accumulates into the same location.
    pub const V010_PAR_REDUCTION: &str = "V010_PAR_REDUCTION";
    /// A `fuse` primitive references an invalid dimension range.
    pub const V011_FUSE_BAD_RANGE: &str = "V011_FUSE_BAD_RANGE";
    /// An `unfold` primitive has an invalid tile/stride combination.
    pub const V012_UNFOLD_BAD_FACTORS: &str = "V012_UNFOLD_BAD_FACTORS";
    /// A `reorder` permutation is not a permutation of the dimensions.
    pub const V013_PERM_INVALID: &str = "V013_PERM_INVALID";
    /// Layout propagation is inconsistent across a graph edge (logical
    /// shape mismatch, dangling conversion, malformed embedding).
    pub const V014_PROPAGATION_MISMATCH: &str = "V014_PROPAGATION_MISMATCH";
    /// A `pad` primitive has negative head or tail padding.
    pub const V015_NEGATIVE_PAD: &str = "V015_NEGATIVE_PAD";
    /// A layout or schedule primitive references a nonexistent (or
    /// already-consumed) axis.
    pub const V016_UNKNOWN_AXIS: &str = "V016_UNKNOWN_AXIS";
    /// A `swizzle` primitive is invalid: source equals target, zero or
    /// oversized bit count, or the bit count does not divide the target
    /// extent into whole XOR groups.
    pub const V017_SWIZZLE_INVALID: &str = "V017_SWIZZLE_INVALID";
    /// A `morton` primitive needs two adjacent dimensions with equal
    /// power-of-two extents.
    pub const V018_MORTON_INVALID: &str = "V018_MORTON_INVALID";
    /// A `block_diag` primitive has an invalid source/target pair or a
    /// block offset outside `[1, extent)`.
    pub const V019_BLOCKDIAG_INVALID: &str = "V019_BLOCKDIAG_INVALID";
}

impl AltError {
    /// A short stable tag naming the error class (used for telemetry
    /// records and counters).
    pub fn kind(&self) -> &'static str {
        match self {
            AltError::Layout { .. } => "layout",
            AltError::Lower { .. } => "lower",
            AltError::Sim { .. } => "sim",
            AltError::InjectedCompileFailure { .. } => "injected_compile",
            AltError::MeasureTimeout { .. } => "timeout",
            AltError::Checkpoint { .. } => "checkpoint",
            AltError::Injector { .. } => "injector",
            AltError::Journal { .. } => "journal",
            AltError::Trace { .. } => "trace",
            AltError::Store { .. } => "store",
            AltError::Verify { .. } => "verify",
        }
    }

    /// The stable diagnostic code of a verification error, if this is
    /// one.
    pub fn verify_code(&self) -> Option<&'static str> {
        match self {
            AltError::Verify { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Whether retrying the same candidate could plausibly succeed.
    ///
    /// Injected flakiness (compile failures, timeouts) is transient —
    /// real hardware sometimes succeeds on a second attempt — while
    /// structural errors (invalid layout, lowering failure) are
    /// deterministic and never worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            AltError::InjectedCompileFailure { .. } | AltError::MeasureTimeout { .. }
        )
    }
}

impl fmt::Display for AltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AltError::Layout { detail } => write!(f, "layout error: {detail}"),
            AltError::Lower { detail } => write!(f, "lowering error: {detail}"),
            AltError::Sim { detail } => write!(f, "simulation error: {detail}"),
            AltError::InjectedCompileFailure { candidate } => {
                write!(f, "injected compile failure for candidate {candidate}")
            }
            AltError::MeasureTimeout { candidate } => {
                write!(f, "measurement timed out for candidate {candidate}")
            }
            AltError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
            AltError::Injector { detail } => write!(f, "fault injector error: {detail}"),
            AltError::Journal { detail } => write!(f, "journal error: {detail}"),
            AltError::Trace { detail } => write!(f, "trace error: {detail}"),
            AltError::Store { detail } => write!(f, "store error: {detail}"),
            AltError::Verify { code, detail } => write!(f, "verify error [{code}]: {detail}"),
        }
    }
}

impl std::error::Error for AltError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_tags() {
        let cases = [
            (AltError::Layout { detail: "x".into() }, "layout"),
            (AltError::Lower { detail: "x".into() }, "lower"),
            (AltError::Sim { detail: "x".into() }, "sim"),
            (
                AltError::InjectedCompileFailure {
                    candidate: "c".into(),
                },
                "injected_compile",
            ),
            (
                AltError::MeasureTimeout {
                    candidate: "c".into(),
                },
                "timeout",
            ),
            (AltError::Checkpoint { detail: "x".into() }, "checkpoint"),
            (AltError::Injector { detail: "x".into() }, "injector"),
            (AltError::Journal { detail: "x".into() }, "journal"),
            (AltError::Trace { detail: "x".into() }, "trace"),
            (AltError::Store { detail: "x".into() }, "store"),
            (
                AltError::Verify {
                    code: codes::V007_PAD_UNDERCOVERS,
                    detail: "x".into(),
                },
                "verify",
            ),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn only_injected_faults_are_transient() {
        assert!(AltError::InjectedCompileFailure {
            candidate: "c".into()
        }
        .is_transient());
        assert!(AltError::MeasureTimeout {
            candidate: "c".into()
        }
        .is_transient());
        assert!(!AltError::Layout { detail: "x".into() }.is_transient());
        assert!(!AltError::Lower { detail: "x".into() }.is_transient());
        // An unexpected injector outcome is an internal inconsistency,
        // not hardware flakiness: retrying would draw fresh RNG state and
        // desynchronize the deterministic transcript.
        assert!(!AltError::Injector { detail: "x".into() }.is_transient());
        // A store failure makes the run degrade to store-less operation;
        // retrying the same append against a full or torn disk would
        // just fail again.
        assert!(!AltError::Store { detail: "x".into() }.is_transient());
        // A journal that refuses to open will keep refusing; the run
        // continues journal-less instead of retrying.
        assert!(!AltError::Journal { detail: "x".into() }.is_transient());
        // Same contract for the trace sink: the run continues trace-less.
        assert!(!AltError::Trace { detail: "x".into() }.is_transient());
        // A statically-rejected program stays rejected.
        assert!(!AltError::Verify {
            code: codes::V009_PAR_RACE,
            detail: "x".into()
        }
        .is_transient());
    }

    #[test]
    fn verify_errors_carry_their_code() {
        let e = AltError::Verify {
            code: codes::V004_OOB_READ,
            detail: "load escapes".into(),
        };
        assert_eq!(e.verify_code(), Some("V004_OOB_READ"));
        assert!(e.to_string().contains("[V004_OOB_READ]"));
        assert_eq!(AltError::Layout { detail: "x".into() }.verify_code(), None);
    }
}
