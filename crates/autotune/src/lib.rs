//! The ALT auto-tuning framework (paper §5).
//!
//! * [`space`] — pruned layout templates (§5.1) and loop spaces.
//! * [`nn`] / [`ppo`] — from-scratch MLPs and PPO-clip (normalized
//!   one-step advantages, shared critic, §5.2), including pretraining
//!   ([`pretrain`], Fig. 11).
//! * [`gbt`] — the boosted-tree cost model (§5.2.3) with program
//!   [`features`].
//! * [`measure`] — budget-accounted measurement against the hardware
//!   model.
//! * [`tuner`] — the two-stage joint tuner with the cross-exploration
//!   architecture (Fig. 8).
//! * [`fault`] / [`rng`] — seeded fault injection drawing from the
//!   tuner's own random stream, for robustness testing.
//! * [`checkpoint`] — serializable tuner state: a killed run resumes
//!   from its last checkpoint at the exact budget point.

pub mod checkpoint;
pub mod fault;
pub mod features;
pub mod gbt;
pub mod measure;
pub mod nn;
pub mod parallel;
pub mod ppo;
pub mod pretrain;
pub mod progress;
pub mod rng;
pub mod space;
pub mod tuner;
pub mod winner;

pub use checkpoint::TunerCheckpoint;
pub use fault::{Fault, FaultConfig, FaultInjector};
pub use gbt::{GbtModel, GbtParams};
pub use measure::Measurer;
pub use parallel::ordered_map;
pub use ppo::{CriticState, PpoAgent, PpoWeights, SharedCritic};
pub use pretrain::{pretrain_ppo, tune_with_pretraining};
pub use progress::Progress;
pub use rng::SharedRng;
pub use space::{
    build_layout_template, build_layout_template_ex, build_loop_space, LayoutTemplate, Point, Space,
};
pub use tuner::{
    apply_fixed_layout, base_schedule, tune_graph, FixedLayout, LayoutSearch, TuneConfig,
    TuneResult, Tuner,
};
pub use winner::{decode_winner, encode_winner, task_fingerprint, WinnerRecord, WINNER_VERSION};
