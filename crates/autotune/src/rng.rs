//! A shared seeded random stream.
//!
//! The tuner and the fault injector must draw from *one* generator:
//! with two independently seeded streams, toggling fault injection on
//! would silently re-seed the search and make "same seed, same fault
//! config" runs incomparable. [`SharedRng`] is a cheaply clonable handle
//! to a single [`StdRng`]; every clone advances the same underlying
//! state, so a run is fully determined by the seed and the sequence of
//! draw sites.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A clonable handle to one seeded generator. All clones share state.
#[derive(Clone, Debug)]
pub struct SharedRng(Rc<RefCell<StdRng>>);

impl SharedRng {
    /// One generator seeded from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SharedRng(Rc::new(RefCell::new(StdRng::seed_from_u64(seed))))
    }

    /// Snapshot of the raw generator state (for checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.0.borrow().state()
    }

    /// Rewinds the shared generator to a [`SharedRng::state`] snapshot.
    /// Every clone of this handle observes the restored state.
    pub fn restore(&self, s: [u64; 4]) {
        *self.0.borrow_mut() = StdRng::from_state(s);
    }
}

impl RngCore for SharedRng {
    fn next_u64(&mut self) -> u64 {
        self.0.borrow_mut().next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn clones_share_one_stream() {
        let a = SharedRng::seed_from_u64(9);
        let mut b = a.clone();
        let mut c = a.clone();
        let mut reference = SharedRng::seed_from_u64(9);
        // Interleaved draws through two handles reproduce one stream.
        let x: u64 = b.gen();
        let y: u64 = c.gen();
        assert_eq!(x, reference.gen::<u64>());
        assert_eq!(y, reference.gen::<u64>());
    }

    #[test]
    fn state_roundtrips() {
        let mut rng = SharedRng::seed_from_u64(3);
        let _: u64 = rng.gen();
        let snap = rng.state();
        let a: u64 = rng.gen();
        rng.restore(snap);
        let b: u64 = rng.gen();
        assert_eq!(a, b);
    }
}
