//! Gradient-boosted regression trees (the paper's XGBoost-style cost
//! model, §5.2.3).
//!
//! Squared-error boosting over depth-limited regression trees with
//! quantile-candidate splits. Trained online on (program features,
//! measured latency) pairs accumulated during tuning; used to rank a
//! batch of candidate points so only the predicted top-k are "measured on
//! device" (i.e. run through the full simulator).

/// One node of a regression tree (flattened binary tree).
#[derive(Clone, Debug)]
enum TreeNode {
    Leaf(f32),
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A depth-limited regression tree.
#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    fn predict(&self, x: &[f32]) -> f32 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf(v) => return *v,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Fits a tree to residuals by greedy variance-reduction splitting.
    fn fit(xs: &[Vec<f32>], ys: &[f32], idx: &[usize], depth: usize, min_leaf: usize) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        tree.build(xs, ys, idx, depth, min_leaf);
        tree
    }

    fn build(
        &mut self,
        xs: &[Vec<f32>],
        ys: &[f32],
        idx: &[usize],
        depth: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f32>() / idx.len().max(1) as f32;
        if depth == 0 || idx.len() < 2 * min_leaf {
            self.nodes.push(TreeNode::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let n_features = xs[idx[0]].len();
        let base_err: f32 = idx.iter().map(|&i| (ys[i] - mean).powi(2)).sum();
        let mut best: Option<(f32, usize, f32)> = None; // (err, feature, threshold)
        #[allow(clippy::needless_range_loop)] // `f` also indexes the row slices below
        for f in 0..n_features {
            // Quantile candidate thresholds.
            let mut vals: Vec<f32> = idx.iter().map(|&i| xs[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            for q in 1..8.min(vals.len()) {
                let thr = vals[q * vals.len() / 8.min(vals.len())];
                let (mut sl, mut nl, mut sr, mut nr) = (0.0f32, 0usize, 0.0f32, 0usize);
                for &i in idx {
                    if xs[i][f] <= thr {
                        sl += ys[i];
                        nl += 1;
                    } else {
                        sr += ys[i];
                        nr += 1;
                    }
                }
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let (ml, mr) = (sl / nl as f32, sr / nr as f32);
                let err: f32 = idx
                    .iter()
                    .map(|&i| {
                        let m = if xs[i][f] <= thr { ml } else { mr };
                        (ys[i] - m).powi(2)
                    })
                    .sum();
                if best
                    .as_ref()
                    .map(|b| err < b.0)
                    .unwrap_or(err < base_err * 0.999)
                {
                    best = Some((err, f, thr));
                }
            }
        }
        let Some((_, f, thr)) = best else {
            self.nodes.push(TreeNode::Leaf(mean));
            return self.nodes.len() - 1;
        };
        let left_idx: Vec<usize> = idx.iter().copied().filter(|&i| xs[i][f] <= thr).collect();
        let right_idx: Vec<usize> = idx.iter().copied().filter(|&i| xs[i][f] > thr).collect();
        let me = self.nodes.len();
        self.nodes.push(TreeNode::Leaf(0.0)); // placeholder
        let left = self.build(xs, ys, &left_idx, depth - 1, min_leaf);
        let right = self.build(xs, ys, &right_idx, depth - 1, min_leaf);
        self.nodes[me] = TreeNode::Split {
            feature: f,
            threshold: thr,
            left,
            right,
        };
        me
    }
}

/// Gradient-boosted tree ensemble for latency regression.
#[derive(Clone, Debug, Default)]
pub struct GbtModel {
    trees: Vec<Tree>,
    base: f32,
    shrinkage: f32,
}

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct GbtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub depth: usize,
    /// Learning rate.
    pub shrinkage: f32,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            n_trees: 40,
            depth: 4,
            shrinkage: 0.3,
            min_leaf: 3,
        }
    }
}

impl GbtModel {
    /// Fits the ensemble to (features, target) pairs.
    ///
    /// Targets are typically `-log(latency)` so that higher predictions
    /// mean faster programs.
    pub fn fit(xs: &[Vec<f32>], ys: &[f32], params: GbtParams) -> GbtModel {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return GbtModel::default();
        }
        let base = ys.iter().sum::<f32>() / ys.len() as f32;
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut residuals: Vec<f32> = ys.iter().map(|y| y - base).collect();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let tree = Tree::fit(xs, &residuals, &idx, params.depth, params.min_leaf);
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= params.shrinkage * tree.predict(&xs[i]);
            }
            trees.push(tree);
        }
        GbtModel {
            trees,
            base,
            shrinkage: params.shrinkage,
        }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut out = self.base;
        for t in &self.trees {
            out += self.shrinkage * t.predict(x);
        }
        out
    }

    /// True when the model has been trained.
    pub fn is_trained(&self) -> bool {
        !self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        // A nonlinear target over 3 features.
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i % 7) as f32 / 7.0;
                let b = (i % 5) as f32 / 5.0;
                let c = (i % 3) as f32 / 3.0;
                vec![a, b, c]
            })
            .collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| x[0] * 2.0 + if x[1] > 0.5 { 1.0 } else { 0.0 } + x[2] * x[0])
            .collect();
        (xs, ys)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (xs, ys) = synth(200);
        let model = GbtModel::fit(&xs, &ys, GbtParams::default());
        let mse: f32 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (model.predict(x) - y).powi(2))
            .sum::<f32>()
            / xs.len() as f32;
        let var: f32 = {
            let m = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|y| (y - m).powi(2)).sum::<f32>() / ys.len() as f32
        };
        assert!(mse < var * 0.1, "mse {mse} vs variance {var}");
    }

    #[test]
    fn ranks_candidates() {
        let (xs, ys) = synth(100);
        let model = GbtModel::fit(&xs, &ys, GbtParams::default());
        // The highest-target sample should rank near the top.
        let best_true = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&a, &b| model.predict(&xs[b]).total_cmp(&model.predict(&xs[a])));
        let rank = order.iter().position(|&i| i == best_true).unwrap();
        assert!(rank < 10, "true best ranked {rank}");
    }

    #[test]
    fn empty_training_is_untrained() {
        let m = GbtModel::fit(&[], &[], GbtParams::default());
        assert!(!m.is_trained());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs = vec![vec![1.0, 2.0]; 10];
        let ys = vec![5.0; 10];
        let m = GbtModel::fit(&xs, &ys, GbtParams::default());
        assert!((m.predict(&[1.0, 2.0]) - 5.0).abs() < 1e-3);
    }
}
