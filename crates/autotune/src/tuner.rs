//! The ALT joint tuner (paper §5).
//!
//! Tuning runs in two stages:
//!
//! 1. **Joint stage** — for each complex operator (topological order), a
//!    layout PPO actor proposes template split factors; each proposed
//!    layout is assessed by several rounds of loop tuning (the
//!    cross-exploration architecture of Fig. 8) and the best loop latency
//!    is fed back as the layout's reward. The winning layouts are
//!    committed to the layout plan and propagated (§4.2).
//! 2. **Loop-only stage** — with layouts frozen (so loop spaces stop
//!    being reconstructed), the remaining budget keeps refining loop
//!    schedules round-robin across operators.
//!
//! Candidate points are generated in batches, ranked by the GBT cost
//! model, and only the predicted top-k are measured — one measurement
//! consumes one unit of the search budget, exactly the paper's
//! accounting.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use alt_journal::{
    finite, outcome, provenance, CandidateRecord, JournalHeader, JournalRecord, JournalSummary,
    LayoutCommitRecord, LayoutVisitRecord, JOURNAL_VERSION,
};
use alt_layout::{presets, Layout, LayoutPlan, PropagationMode};
use alt_loopir::{try_lower_filtered, GraphSchedule, OpSchedule};
use alt_sim::MachineProfile;
use alt_telemetry::{
    CostModelRecord, CounterRegistry, PpoUpdateRecord, Record, Span, Stage, Telemetry, Timing,
    VerifyRejectionRecord,
};
use alt_tensor::{Graph, OpId, OpTag};

use crate::checkpoint::{
    graph_signature, BestPointSnap, CommitSnap, LoopStateSnap, SchedSnap, TunerCheckpoint,
    CHECKPOINT_VERSION,
};
use crate::fault::{FaultConfig, FaultInjector};
use crate::features::extract_features;
use crate::gbt::{GbtModel, GbtParams};
use crate::measure::Measurer;
use crate::parallel::ordered_map;
use crate::ppo::{pad_obs, CriticState, PpoAgent, PpoWeights, SharedCritic};
use crate::rng::SharedRng;
use crate::space::{
    apply_layout_decision, build_layout_template_ex, decode_layout_point, decode_loop_point, Point,
};

/// How the joint stage picks layout candidates (Fig. 11's comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutSearch {
    /// PPO actor (optionally pretrained).
    Ppo,
    /// Uniform random sampling.
    Random,
}

/// A fixed layout family applied when layout tuning is disabled
/// (baselines and the ALT-OL ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixedLayout {
    /// Leave every tensor in its logical (NCHW-style) layout.
    Identity,
    /// Channels-last (`NHWO`/`NDHWO`/`NWO`), the ALT-OL setting.
    ChannelsLast,
    /// NeoCPU-style `N C/ct ... ct` with a fixed `ct` (AutoTVM/Ansor
    /// setting after integrating NeoCPU).
    ChannelTiled(i64),
}

/// Tuner configuration.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Budget (measurements) for the joint stage.
    pub joint_budget: u64,
    /// Budget for the loop-only stage.
    pub loop_budget: u64,
    /// Candidate batch size per round.
    pub batch: usize,
    /// Measured candidates per round (top-k by cost model).
    pub topk: usize,
    /// Rounds of loop tuning used to assess one layout candidate.
    pub rounds_per_layout: usize,
    /// Layout template tiling levels (1 or 2, Fig. 13).
    pub levels: u8,
    /// Loop-space spatial tiling levels (1 or 2).
    pub loop_levels: u8,
    /// Append the advanced `xform` knob (XOR swizzle, block-diagonal
    /// remap, Morton interleave) to every layout template. Off by
    /// default: the extra knob multiplies the pruned template spaces and
    /// changes seeded-run trajectories, so it is strictly opt-in
    /// (`altc tune --advanced-layouts`).
    pub advanced_layouts: bool,
    /// Layout propagation mode (Full / WithoutFusionAlign / None).
    pub mode: PropagationMode,
    /// Treat graph inputs as free to re-layout (single-operator
    /// benchmarks).
    pub free_input_layouts: bool,
    /// RNG seed.
    pub seed: u64,
    /// Pretrained PPO weights (Fig. 11's PPO-Pret).
    pub pretrained: Option<PpoWeights>,
    /// Layout candidate generator.
    pub layout_search: LayoutSearch,
    /// Disable the joint stage entirely and use this fixed layout
    /// (ALT-OL and baseline tuners).
    pub fixed_layout: Option<FixedLayout>,
    /// Visit well-known template points (channels-last, NeoCPU tiling,
    /// NCHW) before exploring. On by default; the search-method study
    /// (Fig. 11) disables it to compare raw explorers.
    pub seed_candidates: bool,
    /// Trace sink for structured tuning-run telemetry. Disabled
    /// (`Telemetry::noop()`) by default; with a sink attached, every
    /// budget unit emits one measurement record.
    pub telemetry: Telemetry,
    /// Fault injection for the measurement path (`None` = perfectly
    /// reliable). Faults draw from the tuner's own seeded stream, so a
    /// run is reproduced by its seed and fault configuration.
    pub faults: Option<FaultConfig>,
    /// Retries after a transient measurement failure (injected compile
    /// failure or timeout). Every retry consumes one budget unit, like
    /// a re-measurement on real hardware would.
    pub max_retries: u64,
    /// Times a candidate may exhaust its retries before it is
    /// quarantined and never proposed again.
    pub quarantine_threshold: u64,
    /// Write checkpoints to this JSON file at cut points.
    pub checkpoint_path: Option<String>,
    /// Checkpoint every N consumed budget units (0 disables periodic
    /// checkpointing; a final checkpoint is still written on halt).
    pub checkpoint_every: u64,
    /// Resume from a previously written checkpoint: the run continues
    /// from the exact budget unit the checkpoint was taken at.
    pub resume: Option<TunerCheckpoint>,
    /// Stop at the first cut point at/after this many consumed units,
    /// writing a checkpoint first (simulates a killed run; tests).
    pub halt_after: Option<u64>,
    /// Worker threads for candidate lowering/simulation (`--jobs` on
    /// `altc`). Workers only do pure work — lowering, feature
    /// extraction, and prewarming the measurement cache — while all RNG
    /// draws, fault injection, accounting and telemetry stay on the
    /// tuning thread, so any `jobs` value produces a bit-identical run;
    /// `1` (the default) keeps everything inline. Clamped to the
    /// machine's available parallelism at run time (the clamp cannot
    /// change results, only wall-clock).
    pub jobs: usize,
    /// Run the static verifier (`alt-verify`) on every lowered candidate
    /// before it can be scored or measured. Statically-rejected
    /// candidates consume *no* budget — they are dropped exactly like
    /// candidates that fail to lower — and are reported through the
    /// `verify.rejected` counter plus one `verify_rejection` trace
    /// record each. On by default.
    pub verify: bool,
    /// Search-journal sink: one record per generated candidate with its
    /// terminal outcome, plus layout visits, layout commits, a run
    /// header and a final summary. Disabled (`Journal::noop()`) by
    /// default. Emission happens only on the sequential accounting path
    /// and never draws from the RNG or consumes budget, so attaching a
    /// journal cannot change a run.
    pub journal: alt_journal::Journal,
    /// Durable cross-run result store (`altc --store`). When attached,
    /// measurements are served from / published into the store through
    /// the memo cache, and a completed run's winner is stored under its
    /// task fingerprint; a later identical task short-circuits the whole
    /// search by replaying the stored winner. Attaching a store never
    /// changes *what* a run computes — winners, transcripts and budgets
    /// stay bit-identical to store-less runs — only how much simulation
    /// work it takes to get there.
    pub store: Option<std::sync::Arc<alt_store::Store>>,
    /// Wall-clock self-profile (`altc --timing`). Disabled
    /// (`Timing::disabled()`) by default. When enabled, the tuner opens
    /// phases (`joint_stage`, `loop_stage`, `candidate_gen`, `lower`,
    /// `gbt_score`, `prewarm`, `measure`, `simulate`, `retry`,
    /// `checkpoint`) on the accounting thread and attaches the timing
    /// registry to the memo cache and store for I/O latency histograms.
    /// Timing is observation-only: it has its own sink and never writes
    /// to the deterministic trace/journal streams, so enabling it
    /// cannot change a run.
    pub timing: Timing,
    /// Print a throttled progress heartbeat to stderr (`altc
    /// --progress`): budget fraction, candidates/s, cache and store hit
    /// rates, ETA. Reads existing statistics only; cannot change a run.
    pub progress: bool,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            joint_budget: 300,
            loop_budget: 700,
            batch: 128,
            topk: 8,
            rounds_per_layout: 1,
            levels: 1,
            loop_levels: 1,
            advanced_layouts: false,
            mode: PropagationMode::Full,
            free_input_layouts: false,
            seed: 0,
            pretrained: None,
            layout_search: LayoutSearch::Ppo,
            fixed_layout: None,
            seed_candidates: true,
            telemetry: Telemetry::noop(),
            faults: None,
            max_retries: 2,
            quarantine_threshold: 2,
            checkpoint_path: None,
            checkpoint_every: 0,
            resume: None,
            halt_after: None,
            jobs: 1,
            verify: true,
            journal: alt_journal::Journal::noop(),
            store: None,
            timing: Timing::disabled(),
            progress: false,
        }
    }
}

/// Tuning outcome.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Final layout plan.
    pub plan: LayoutPlan,
    /// Final schedules.
    pub sched: GraphSchedule,
    /// End-to-end latency of the tuned graph (seconds).
    pub latency: f64,
    /// (budget used, measured latency) history.
    pub history: Vec<(u64, f64)>,
    /// Total measurements consumed.
    pub measurements: u64,
    /// Measurement-cache hits (budgeted measurements served from the
    /// memoized simulation table).
    pub cache_hits: u64,
    /// Measurement-cache misses (budgeted measurements that ran the
    /// full performance model).
    pub cache_misses: u64,
    /// Accounted measurements served from the durable store (0 without a
    /// store).
    pub store_hits: u64,
    /// Accounted measurements the durable store lacked; each was
    /// simulated and published back (0 without a store).
    pub store_misses: u64,
    /// Whether the whole search was short-circuited by a stored winner
    /// (in which case `measurements == 0` and `history` is empty).
    pub warm_start: bool,
}

impl TuneResult {
    /// Serializes a machine-readable tuning log: per-tensor layouts, the
    /// best-so-far curve, and budget accounting. Useful for dashboards
    /// and for comparing tuning runs (the paper reports four months of
    /// production deployment; logs are how such deployments are
    /// monitored).
    pub fn to_log(&self, graph: &Graph) -> serde_json::Value {
        let layouts: Vec<serde_json::Value> = graph
            .tensors()
            .iter()
            .enumerate()
            .filter_map(|(k, info)| {
                let id = alt_tensor::TensorId(k);
                let l = self.plan.layout_of(graph, id);
                if l.is_identity() {
                    None
                } else {
                    Some(serde_json::json!({
                        "tensor": info.name,
                        "layout": l.to_string(),
                        "physical_shape": l.physical_shape().dims(),
                    }))
                }
            })
            .collect();
        let mut best = f64::INFINITY;
        let curve: Vec<(u64, f64)> = self
            .history
            .iter()
            .map(|&(b, l)| {
                best = best.min(l);
                (b, best)
            })
            .collect();
        serde_json::json!({
            "latency_s": self.latency,
            "measurements": self.measurements,
            "layouts": layouts,
            "conversions": self.plan.conversions().len(),
            "best_so_far": curve,
        })
    }
}

/// Per-operator loop-tuning state that survives layout changes (the cost
/// model transfers across reconstructed spaces; the best point does not).
struct LoopTuneState {
    dataset_x: Vec<Vec<f32>>,
    dataset_y: Vec<f32>,
    model: GbtModel,
    /// Loop-tuning rounds executed for this op (trace labelling).
    rounds: u64,
    /// Dataset size the current model was trained on.
    trained_on: u64,
}

impl LoopTuneState {
    fn new() -> Self {
        Self {
            dataset_x: Vec::new(),
            dataset_y: Vec::new(),
            model: GbtModel::default(),
            rounds: 0,
            trained_on: 0,
        }
    }

    fn record(&mut self, feats: Vec<f32>, latency: f64) {
        self.dataset_x.push(feats);
        self.dataset_y.push(-(latency.max(1e-12).ln() as f32));
    }

    fn retrain(&mut self) {
        if self.dataset_x.len() >= 16 {
            self.model = GbtModel::fit(&self.dataset_x, &self.dataset_y, GbtParams::default());
            self.trained_on = self.dataset_x.len() as u64;
        }
    }
}

/// The tuner.
pub struct Tuner<'g> {
    graph: &'g Graph,
    cfg: TuneConfig,
    measurer: Measurer<'g>,
    rng: SharedRng,
    loop_state: HashMap<OpId, LoopTuneState>,
    /// Best loop point per op for the *current* layout of that op.
    best_points: HashMap<OpId, (Point, f64)>,
    /// Candidate keys (`op:point`) banned after repeated failures.
    quarantine: HashSet<String>,
    /// Give-up count per candidate key (feeds the quarantine).
    fail_counts: HashMap<String, u64>,
    /// Run-level robustness counters (retries, quarantined, failures.*).
    registry: CounterRegistry,
    /// Committed joint-stage layout decisions, for checkpoint replay.
    committed: Vec<CommitSnap>,
    /// Budget counter value at the last checkpoint write.
    last_checkpoint: u64,
    /// Failure kind of the last `measure_with_retry` give-up, for the
    /// journal's `failed` records. `None` after a success.
    last_failure: Option<String>,
}

impl<'g> Tuner<'g> {
    /// Creates a tuner.
    pub fn new(graph: &'g Graph, profile: MachineProfile, cfg: TuneConfig) -> Self {
        let mut measurer = Measurer::with_telemetry(graph, profile, cfg.telemetry.clone());
        // One stream for search and faults: the injector interleaves its
        // draws with the tuner's, so "same seed, same fault config" means
        // the same run. With zero fault rate no injector is attached and
        // the measurement path is exactly the reliable one.
        let rng = SharedRng::seed_from_u64(cfg.seed);
        if let Some(fc) = &cfg.faults {
            if fc.total_rate() > 0.0 {
                measurer.set_injector(Some(FaultInjector::new(fc.clone(), rng.clone())));
            }
        }
        // The durable store becomes the memo cache's warm tier before
        // any measurement runs, so the store statistics cover the run.
        if let Some(store) = &cfg.store {
            measurer.attach_store(store.clone());
        }
        // Wall-clock timing: the handle's registry becomes the latency
        // sink of the memo cache (`memo.*_us`) and the store
        // (`store.*_us`), and the measurer opens a `simulate` phase per
        // cache probe. All of it is observation-only.
        if let Some(reg) = cfg.timing.registry() {
            measurer.sim_cache().attach_registry(reg.clone());
            if let Some(store) = &cfg.store {
                store.attach_registry(reg);
            }
            measurer.set_timing(cfg.timing.clone());
        }
        if cfg.progress {
            measurer.set_progress(crate::progress::Progress::enabled(
                cfg.joint_budget + cfg.loop_budget,
            ));
        }
        Self {
            graph,
            cfg,
            measurer,
            rng,
            loop_state: HashMap::new(),
            best_points: HashMap::new(),
            quarantine: HashSet::new(),
            fail_counts: HashMap::new(),
            registry: CounterRegistry::new("tuner"),
            committed: Vec::new(),
            last_checkpoint: 0,
            last_failure: None,
        }
    }

    /// Runs the full two-stage tuning and returns the result.
    pub fn tune(mut self) -> TuneResult {
        let mut plan = LayoutPlan::new(self.cfg.mode);
        let mut sched = base_schedule(self.graph);

        if let Some(fixed) = self.cfg.fixed_layout {
            apply_fixed_layout(self.graph, &mut plan, fixed, self.cfg.free_input_layouts);
        }

        // Task extraction: operators with identical signatures (kind +
        // shapes) share one tuning task, exactly like Ansor's task
        // deduplication — ResNet's repeated blocks and BERT's identical
        // layers are tuned once and the result is replicated.
        let complex = self.graph.complex_ops();
        let mut reps: Vec<OpId> = Vec::new();
        let mut clones_of: HashMap<OpId, Vec<OpId>> = HashMap::new();
        {
            let mut by_sig: HashMap<String, OpId> = HashMap::new();
            for &op in &complex {
                let sig = op_signature(self.graph, op);
                match by_sig.get(&sig) {
                    Some(&rep) => clones_of.entry(rep).or_default().push(op),
                    None => {
                        by_sig.insert(sig, op);
                        reps.push(op);
                        clones_of.entry(op).or_default();
                    }
                }
            }
        }
        let shares = budget_shares(self.graph, &reps);

        let telemetry = self.cfg.telemetry.clone();
        let joint_ran = self.cfg.fixed_layout.is_none() && self.cfg.joint_budget > 0;

        // ---- Warm start ----
        // With a store attached, a completed identical task (same graph,
        // machine and result-relevant configuration) short-circuits the
        // whole search: the stored winner's decisions are replayed —
        // template rebuild, point decode, plan application — exactly
        // like a checkpoint restore, consuming zero budget. Resumed runs
        // never warm-start: they continue their own transcript.
        let task_fp = crate::winner::task_fingerprint(
            self.graph,
            self.measurer.sim_cache().profile_fp(),
            &self.cfg,
        );
        if let (Some(store), Some(fp)) = (self.cfg.store.clone(), task_fp) {
            if self.cfg.resume.is_none() && self.cfg.halt_after.is_none() {
                let winner = store.get(alt_store::kind::WINNER, fp).and_then(|payload| {
                    crate::winner::decode_winner(&payload, fp, &graph_signature(self.graph))
                });
                if let Some(w) = winner {
                    return self.replay_winner(&w, plan, sched, &clones_of);
                }
            }
        }

        // ---- Resume ----
        // A checkpoint cuts at a joint-stage op boundary or a loop-stage
        // iteration. Restoring replays the committed layout decisions
        // (deterministic), restores flat state (schedules, datasets, RNG
        // words, budget counter) and then falls through into the normal
        // stage loops at the recorded cursor.
        let mut start_rep = 0usize;
        let mut start_loop_iter = 0u64;
        let mut joint_start = 0u64;
        let mut skip_joint = false;
        let mut critic_state: Option<CriticState> = None;
        let resumed = self.cfg.resume.is_some();
        if let Some(ck) = self.cfg.resume.take() {
            ck.validate(self.graph, self.cfg.seed)
                .expect("checkpoint does not match this run");
            self.restore_from(&ck, &mut plan, &mut sched, &clones_of);
            critic_state = ck.critic;
            joint_start = ck.joint_start;
            if ck.phase == "joint" {
                start_rep = ck.next_rep as usize;
            } else {
                skip_joint = true;
                start_loop_iter = ck.loop_iter;
            }
        }

        // The header is written once per journal: a resumed run appends
        // to the journal its interrupted predecessor started, which
        // already begins with this exact header.
        if !resumed {
            self.cfg.journal.emit(JournalRecord::Header(JournalHeader {
                version: JOURNAL_VERSION,
                seed: self.cfg.seed,
                profile_fp: self.measurer.sim_cache().profile_fp(),
                joint_budget: self.cfg.joint_budget,
                loop_budget: self.cfg.loop_budget,
            }));
        }

        // ---- Joint stage (Fig. 8) ----
        // Budget accounting is strict: the joint stage never spends more
        // than `joint_budget` in total (per-op shares are capped by what
        // is left), and anything it under-spends is handed to the
        // loop-only stage, so a run with at least one complex operator
        // consumes exactly `joint_budget + loop_budget` measurements.
        let mut halted = false;
        if joint_ran && !reps.is_empty() && !skip_joint {
            let span = Span::enter(&telemetry, "joint_stage");
            let _timing = self.cfg.timing.phase("joint_stage");
            self.measurer.ctx.stage = Stage::Joint;
            if start_rep == 0 {
                joint_start = self.measurer.used;
            }
            let critic = match (&critic_state, &self.cfg.pretrained) {
                (Some(cs), _) => SharedCritic::from_state(cs),
                (None, Some(w)) => SharedCritic::from_weights(w),
                (None, None) => SharedCritic::new(self.cfg.seed ^ 0x9e37),
            };
            for i in start_rep..reps.len() {
                let op = reps[i];
                if self.checkpoint_cut("joint", i as u64, 0, joint_start, &sched, Some(&critic)) {
                    halted = true;
                    break;
                }
                let joint_left = self
                    .cfg
                    .joint_budget
                    .saturating_sub(self.measurer.used - joint_start);
                if joint_left == 0 {
                    break;
                }
                let op_budget =
                    ((self.cfg.joint_budget as f64 * shares[i]).ceil() as u64).min(joint_left);
                let agent = match &self.cfg.pretrained {
                    Some(w) => PpoAgent::from_weights(w, critic.clone(), self.cfg.seed + i as u64),
                    None => PpoAgent::new(critic.clone(), self.cfg.seed + i as u64),
                };
                let best = self.joint_tune_op(op, op_budget, agent, &mut plan, &mut sched);
                // Replicate the winning layout and schedule to the task's
                // clones.
                if let Some((point, lsched)) = best {
                    self.committed.push(CommitSnap {
                        op: op.0,
                        point: point.clone(),
                    });
                    span.event(
                        "layout_committed",
                        &[
                            ("op", op_label(self.graph, op)),
                            ("point", format!("{point:?}")),
                        ],
                    );
                    for &clone in &clones_of[&op] {
                        if let Some(ct) = build_layout_template_ex(
                            self.graph,
                            clone,
                            self.cfg.levels,
                            self.cfg.advanced_layouts,
                        ) {
                            if let Ok(dec) = decode_layout_point(self.graph, &ct, &point) {
                                apply_layout_decision(
                                    self.graph,
                                    &mut plan,
                                    clone,
                                    &dec,
                                    self.cfg.free_input_layouts,
                                );
                                sched.set(clone, lsched.clone());
                            }
                        }
                    }
                }
            }
        }

        // ---- Loop-only stage ----
        // Tops the total up to exactly `joint_budget + loop_budget`
        // (or just `loop_budget` when the joint stage was disabled).
        let target = if joint_ran { self.cfg.joint_budget } else { 0 } + self.cfg.loop_budget;
        if !halted && !reps.is_empty() && self.measurer.used < target {
            let _span = Span::enter(&telemetry, "loop_stage");
            let _timing = self.cfg.timing.phase("loop_stage");
            self.measurer.ctx.stage = Stage::Loop;
            let mut i = start_loop_iter;
            while self.measurer.used < target {
                if self.checkpoint_cut("loop", 0, i, joint_start, &sched, None) {
                    halted = true;
                    break;
                }
                let op = reps[i as usize % reps.len()];
                let remaining = target - self.measurer.used;
                self.loop_tune_rounds(op, &plan, &mut sched, 1, remaining);
                for &clone in &clones_of[&op] {
                    sched.set(clone, sched.get(op));
                }
                i += 1;
                if i > 100_000 {
                    break;
                }
            }
        }

        // Graceful degradation: whatever faults or halts happened above,
        // the run always completes with the best healthy plan/schedule
        // found so far (worst case: the base schedule).
        let latency = self.measurer.measure_graph_free(&plan, &sched);
        // A halted run writes no summary — its resumed successor will,
        // so the halted and resumed journals concatenate into exactly
        // the journal an uninterrupted run would have written.
        if !halted {
            let has_store = self.cfg.store.is_some();
            let (sh, sm) = self.measurer.store_stats();
            self.cfg
                .journal
                .emit(JournalRecord::Summary(JournalSummary {
                    measurements: self.measurer.used,
                    best_latency_s: finite(latency),
                    store_hits: has_store.then_some(sh),
                    store_misses: has_store.then_some(sm),
                    warm_start: has_store.then_some(false),
                }));
            // A completed run publishes its winner for future identical
            // tasks; a halted run does not (its resumed successor will).
            // A failed publish degrades the store, never the run.
            if let (Some(store), Some(fp)) = (&self.cfg.store, task_fp) {
                let record = crate::winner::WinnerRecord {
                    version: crate::winner::WINNER_VERSION,
                    graph_sig: graph_signature(self.graph),
                    task_fp: fp,
                    seed: self.cfg.seed,
                    measurements: self.measurer.used,
                    committed: self.committed.clone(),
                    sched: (0..self.graph.nodes().len())
                        .map(|k| SchedSnap::of(&sched.get(OpId(k))))
                        .collect(),
                    latency_s: latency,
                };
                if let Ok(payload) = crate::winner::encode_winner(&record) {
                    let _ = store.put(alt_store::kind::WINNER, fp, &payload);
                }
            }
        }
        self.cfg.journal.flush();
        self.registry.flush_to(&telemetry);
        self.measurer.flush_counters();
        let (cache_hits, cache_misses) = self.measurer.cache_stats();
        let (store_hits, store_misses) = self.measurer.store_stats();
        TuneResult {
            plan,
            sched,
            latency,
            history: self.measurer.history.clone(),
            measurements: self.measurer.used,
            cache_hits,
            cache_misses,
            store_hits,
            store_misses,
            warm_start: false,
        }
    }

    /// Replays a stored winner: rebuilds the layout plan from its
    /// committed decisions (representatives *and* clones, exactly like a
    /// checkpoint restore), installs the schedule snapshots, and returns
    /// a zero-budget result. The replayed configuration re-measures
    /// (free) and cross-checks the stored latency — a mismatch is
    /// counted, not fatal: the replayed decisions are still this build's
    /// ground truth.
    fn replay_winner(
        self,
        w: &crate::winner::WinnerRecord,
        mut plan: LayoutPlan,
        mut sched: GraphSchedule,
        clones_of: &HashMap<OpId, Vec<OpId>>,
    ) -> TuneResult {
        for c in &w.committed {
            let op = OpId(c.op);
            let mut targets = vec![op];
            if let Some(clones) = clones_of.get(&op) {
                targets.extend(clones.iter().copied());
            }
            for t in targets {
                if let Some(tmpl) = build_layout_template_ex(
                    self.graph,
                    t,
                    self.cfg.levels,
                    self.cfg.advanced_layouts,
                ) {
                    if let Ok(dec) = decode_layout_point(self.graph, &tmpl, &c.point) {
                        apply_layout_decision(
                            self.graph,
                            &mut plan,
                            t,
                            &dec,
                            self.cfg.free_input_layouts,
                        );
                    }
                }
            }
        }
        for (k, snap) in w.sched.iter().enumerate() {
            sched.set(OpId(k), snap.to_sched());
        }
        let latency = self.measurer.measure_graph_free(&plan, &sched);
        if latency.to_bits() != w.latency_s.to_bits() {
            self.registry.add("store.winner_mismatch", 1.0);
        }
        // The journal still records the (trivial) run, so downstream
        // consumers always find a header and a summary.
        self.cfg.journal.emit(JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            seed: self.cfg.seed,
            profile_fp: self.measurer.sim_cache().profile_fp(),
            joint_budget: self.cfg.joint_budget,
            loop_budget: self.cfg.loop_budget,
        }));
        self.cfg
            .journal
            .emit(JournalRecord::Summary(JournalSummary {
                measurements: 0,
                best_latency_s: finite(latency),
                store_hits: Some(0),
                store_misses: Some(0),
                warm_start: Some(true),
            }));
        self.cfg.journal.flush();
        self.registry.flush_to(&self.cfg.telemetry);
        self.measurer.flush_counters();
        TuneResult {
            plan,
            sched,
            latency,
            history: Vec::new(),
            measurements: 0,
            cache_hits: 0,
            cache_misses: 0,
            store_hits: 0,
            store_misses: 0,
            warm_start: true,
        }
    }

    /// Restores flat tuner state from a checkpoint and replays committed
    /// layout decisions into `plan` / `sched`.
    fn restore_from(
        &mut self,
        ck: &TunerCheckpoint,
        plan: &mut LayoutPlan,
        sched: &mut GraphSchedule,
        clones_of: &HashMap<OpId, Vec<OpId>>,
    ) {
        let mut state = [0u64; 4];
        state.copy_from_slice(&ck.rng_state);
        self.rng.restore(state);
        self.measurer.used = ck.used;
        self.measurer.history = ck.history.clone();
        self.measurer.restore_best(&ck.best_by_op);
        // Replay the committed joint-stage decisions in commit order;
        // template construction and decoding are deterministic, so the
        // rebuilt plan is identical to the one the checkpoint cut from.
        for c in &ck.committed {
            let op = OpId(c.op);
            let mut targets = vec![op];
            if let Some(clones) = clones_of.get(&op) {
                targets.extend(clones.iter().copied());
            }
            for t in targets {
                if let Some(tmpl) = build_layout_template_ex(
                    self.graph,
                    t,
                    self.cfg.levels,
                    self.cfg.advanced_layouts,
                ) {
                    if let Ok(dec) = decode_layout_point(self.graph, &tmpl, &c.point) {
                        apply_layout_decision(
                            self.graph,
                            plan,
                            t,
                            &dec,
                            self.cfg.free_input_layouts,
                        );
                    }
                }
            }
            self.committed.push(c.clone());
        }
        for (k, snap) in ck.sched.iter().enumerate() {
            sched.set(OpId(k), snap.to_sched());
        }
        for ls in &ck.loop_state {
            let mut state = LoopTuneState::new();
            state.dataset_x = ls.dataset_x.clone();
            state.dataset_y = ls.dataset_y.clone();
            state.rounds = ls.rounds;
            state.trained_on = ls.trained_on;
            // The model is not serialized: GBT fitting is deterministic,
            // so refitting on the same training prefix reproduces it.
            let n = ls.trained_on as usize;
            if n >= 16 {
                state.model = GbtModel::fit(
                    &state.dataset_x[..n],
                    &state.dataset_y[..n],
                    GbtParams::default(),
                );
            }
            self.loop_state.insert(OpId(ls.op), state);
        }
        for bp in &ck.best_points {
            self.best_points
                .insert(OpId(bp.op), (bp.point.clone(), bp.latency_s));
        }
        self.quarantine = ck.quarantine.iter().cloned().collect();
        self.fail_counts = ck.fail_counts.clone();
        for (name, value) in &ck.counters {
            self.registry.add(name, *value);
        }
        // The memo table is not persisted (simulation is pure), but the
        // interrupted leg's accounted keys are: their re-simulations
        // must read as the cache hits the uninterrupted run recorded.
        self.measurer
            .sim_cache()
            .restore_accounted(&ck.accounted_keys);
        self.last_checkpoint = ck.used;
    }

    /// Snapshot of the whole tuner at a cut point.
    fn snapshot(
        &self,
        phase: &str,
        next_rep: u64,
        loop_iter: u64,
        joint_start: u64,
        sched: &GraphSchedule,
        critic: Option<CriticState>,
    ) -> TunerCheckpoint {
        let mut loop_state: Vec<LoopStateSnap> = self
            .loop_state
            .iter()
            .map(|(op, st)| LoopStateSnap {
                op: op.0,
                dataset_x: st.dataset_x.clone(),
                dataset_y: st.dataset_y.clone(),
                rounds: st.rounds,
                trained_on: st.trained_on,
            })
            .collect();
        loop_state.sort_by_key(|s| s.op);
        let mut best_points: Vec<BestPointSnap> = self
            .best_points
            .iter()
            .map(|(op, (p, l))| BestPointSnap {
                op: op.0,
                point: p.clone(),
                latency_s: *l,
            })
            .collect();
        best_points.sort_by_key(|b| b.op);
        let mut quarantine: Vec<String> = self.quarantine.iter().cloned().collect();
        quarantine.sort();
        TunerCheckpoint {
            version: CHECKPOINT_VERSION,
            seed: self.cfg.seed,
            graph_sig: graph_signature(self.graph),
            joint_budget: self.cfg.joint_budget,
            loop_budget: self.cfg.loop_budget,
            phase: phase.to_string(),
            next_rep,
            loop_iter,
            joint_start,
            used: self.measurer.used,
            history: self.measurer.history.clone(),
            best_by_op: self.measurer.best_snapshot(),
            rng_state: self.rng.state().to_vec(),
            committed: self.committed.clone(),
            sched: (0..self.graph.nodes().len())
                .map(|k| SchedSnap::of(&sched.get(OpId(k))))
                .collect(),
            loop_state,
            best_points,
            critic,
            quarantine,
            fail_counts: self.fail_counts.clone(),
            counters: self.registry.snapshot(),
            accounted_keys: self.measurer.sim_cache().accounted_keys(),
        }
    }

    /// Checkpoint cut point: writes a checkpoint if one is due and
    /// returns `true` when the run should stop here (`halt_after`).
    fn checkpoint_cut(
        &mut self,
        phase: &str,
        next_rep: u64,
        loop_iter: u64,
        joint_start: u64,
        sched: &GraphSchedule,
        critic: Option<&Rc<RefCell<SharedCritic>>>,
    ) -> bool {
        let halt = self.cfg.halt_after.is_some_and(|h| self.measurer.used >= h);
        let periodic = self.cfg.checkpoint_every > 0
            && self.measurer.used.saturating_sub(self.last_checkpoint) >= self.cfg.checkpoint_every;
        if !halt && !periodic {
            return false;
        }
        if let Some(path) = self.cfg.checkpoint_path.clone() {
            let _timing = self.cfg.timing.phase("checkpoint");
            let ck = self.snapshot(
                phase,
                next_rep,
                loop_iter,
                joint_start,
                sched,
                critic.map(|c| c.borrow().state()),
            );
            if let Err(e) = ck.save(&path) {
                // A failed checkpoint write must never kill the run it
                // exists to protect; the run continues uncheckpointed.
                eprintln!("warning: {e}");
            }
            self.last_checkpoint = self.measurer.used;
        }
        halt
    }

    /// Measures with bounded retry on transient faults. Every attempt
    /// consumes one budget unit (capped at `cap`); the exponential
    /// backoff between attempts is recorded in the trace, not slept
    /// (the simulator has no wall clock). Returns `None` when the
    /// candidate ultimately failed — after updating its failure count
    /// and, past the threshold, the quarantine set.
    fn measure_with_retry(
        &mut self,
        plan: &LayoutPlan,
        sched: &GraphSchedule,
        roots: &HashSet<OpId>,
        cap: u64,
    ) -> Option<f64> {
        let max_attempts = (1 + self.cfg.max_retries).min(cap.max(1));
        let mut attempt = 1u64;
        loop {
            self.measurer.ctx.attempt = attempt;
            self.measurer.ctx.backoff_us = if attempt <= 1 {
                0
            } else {
                100u64 << (attempt - 2).min(20)
            };
            // Re-attempts get their own wall-clock phase so fault/retry
            // cost shows up separately from first-try measurement.
            let attempt_result = if attempt > 1 {
                let _timing = self.cfg.timing.phase("retry");
                self.measurer.measure_ops(plan, sched, roots)
            } else {
                self.measurer.measure_ops(plan, sched, roots)
            };
            match attempt_result {
                Ok(lat) => {
                    self.measurer.ctx.attempt = 1;
                    self.measurer.ctx.backoff_us = 0;
                    self.last_failure = None;
                    return Some(lat);
                }
                Err(e) => {
                    self.registry.add(&format!("failures.{}", e.kind()), 1.0);
                    if e.is_transient() && attempt < max_attempts {
                        self.registry.add("retries", 1.0);
                        attempt += 1;
                        continue;
                    }
                    self.last_failure = Some(e.kind().to_string());
                    let key = format!("{}:{}", self.measurer.ctx.op, self.measurer.ctx.candidate);
                    let count = self.fail_counts.entry(key.clone()).or_insert(0);
                    *count += 1;
                    if *count >= self.cfg.quarantine_threshold && self.quarantine.insert(key) {
                        self.registry.add("quarantined", 1.0);
                    }
                    self.measurer.ctx.attempt = 1;
                    self.measurer.ctx.backoff_us = 0;
                    return None;
                }
            }
        }
    }

    /// Base candidate record capturing the measurement context (op,
    /// stage, round, budget counter); call sites fill outcome-specific
    /// fields before emitting.
    fn candidate_base(&self, origin: &str, point: &[usize], outcome: &str) -> CandidateRecord {
        CandidateRecord {
            op: self.measurer.ctx.op.clone(),
            stage: match self.measurer.ctx.stage {
                Stage::Joint => "joint",
                Stage::Loop => "loop",
            }
            .to_string(),
            round: self.measurer.ctx.round,
            provenance: origin.to_string(),
            point: point.iter().map(|&x| x as u64).collect(),
            outcome: outcome.to_string(),
            predicted: None,
            latency_s: None,
            vcode: None,
            error: None,
            attempts: 0,
            budget_end: self.measurer.used,
            program_fp: None,
            cache_key: None,
        }
    }

    /// Folds one candidate's set-engine counters into the run registry.
    /// Queries and recoveries are pure functions of the candidate and
    /// folded on the sequential merge path, so the totals (and thus the
    /// deterministic trace and checkpoints) stay jobs-invariant. The
    /// wall-clock emptiness time is *not* added here — workers observe
    /// it into the timing registry, which is exempt from determinism.
    fn add_verify_stats(&self, vs: &alt_verify::VerifyStats) {
        if vs.set_queries == 0 && vs.conservative_recovered == 0 {
            return;
        }
        self.registry
            .add("verify.set_queries", vs.set_queries as f64);
        self.registry.add(
            "verify.conservative_recovered",
            vs.conservative_recovered as f64,
        );
    }

    /// Journals a zero-budget terminal outcome (`skipped`,
    /// `quarantined`, `lower_failed`, `verify_rejected`).
    fn journal_dropped(&self, origin: &str, point: &[usize], outcome: &str, vcode: Option<String>) {
        if !self.cfg.journal.is_enabled() {
            return;
        }
        let mut rec = self.candidate_base(origin, point, outcome);
        rec.vcode = vcode;
        self.cfg.journal.emit(JournalRecord::Candidate(rec));
    }

    /// Journals the terminal outcome of a budgeted measurement:
    /// `measured` / `cache_hit` on success (with the cache-probe
    /// fingerprints), `failed` after retries gave up. `attempts` is the
    /// exact number of budget units the candidate consumed, including
    /// retries — the journal-side half of the budget conservation law.
    fn journal_attempted(
        &self,
        origin: &str,
        point: &[usize],
        predicted: Option<f64>,
        result: Option<f64>,
        used_before: u64,
    ) {
        if !self.cfg.journal.is_enabled() {
            return;
        }
        let mut rec = self.candidate_base(origin, point, outcome::FAILED);
        rec.predicted = predicted;
        rec.attempts = self.measurer.used - used_before;
        match result {
            Some(lat) => {
                rec.latency_s = finite(lat);
                let probe = self.measurer.last_probe;
                rec.outcome = if probe.is_some_and(|p| p.hit) {
                    outcome::CACHE_HIT
                } else {
                    outcome::MEASURED
                }
                .to_string();
                if let Some(p) = probe {
                    rec.program_fp = Some(p.program_fp);
                    rec.cache_key = Some(p.cache_key);
                }
            }
            None => rec.error = self.last_failure.clone(),
        }
        self.cfg.journal.emit(JournalRecord::Candidate(rec));
    }

    /// Journals one assessed layout candidate of the joint stage.
    fn journal_layout_visit(&self, op: OpId, origin: &str, point: &[usize], lat: f64) {
        if !self.cfg.journal.is_enabled() {
            return;
        }
        self.cfg
            .journal
            .emit(JournalRecord::LayoutVisit(LayoutVisitRecord {
                op: op_label(self.graph, op),
                provenance: origin.to_string(),
                point: point.iter().map(|&x| x as u64).collect(),
                latency_s: finite(lat),
            }));
    }

    /// Joint tuning of one complex operator: the cross-exploration loop.
    /// Returns the committed (layout point, schedule), if any.
    fn joint_tune_op(
        &mut self,
        op: OpId,
        budget: u64,
        mut agent: PpoAgent,
        plan: &mut LayoutPlan,
        sched: &mut GraphSchedule,
    ) -> Option<(Point, OpSchedule)> {
        let tmpl =
            build_layout_template_ex(self.graph, op, self.cfg.levels, self.cfg.advanced_layouts)?;
        // Not enough budget for even one layout episode: leave the op on
        // its default layout rather than burning budget on half-episodes.
        if budget < self.cfg.topk as u64 {
            return None;
        }
        let n_knobs = tmpl.space.knobs.len();
        let start = self.measurer.used;
        self.measurer.ctx.op = op_label(self.graph, op);
        // Reserve roughly a third of the op budget for re-assessing the
        // finalists; exploration gets the rest. Both phases are hard-capped
        // so the op never spends more than `budget` in total.
        let explore_budget = budget - budget / 3;
        let mut cur_point: Point = tmpl
            .space
            .knobs
            .iter()
            .map(|k| k.options.len() / 2)
            .collect();
        let mut best: Option<(f64, Point, OpSchedule)> = None;
        let mut finalists: Vec<(f64, Point)> = Vec::new();
        let mut ref_lat: Option<f64> = None;
        // The template space contains well-known layouts (channels-last is
        // the all-degenerate point, NeoCPU channel tiling is the
        // unit-spatial point); visit them first so the search starts from
        // the strongest fixed-layout baselines.
        let mut seeds = if self.cfg.seed_candidates {
            seed_points(self.graph, &tmpl)
        } else {
            Vec::new()
        };

        let mut iters = 0u64;
        while self.measurer.used - start < explore_budget {
            iters += 1;
            if iters > 100_000 {
                break;
            }
            let obs = pad_obs(tmpl.space.encode(&cur_point));
            let (point, acts, logp, origin) = if let Some(p) = seeds.pop() {
                (p, vec![], f32::NAN, provenance::SEED)
            } else {
                match self.cfg.layout_search {
                    LayoutSearch::Ppo => {
                        let (acts, logp) = agent.act(&obs);
                        (
                            tmpl.space.decode_actions(&acts[..n_knobs]),
                            acts,
                            logp,
                            provenance::PPO,
                        )
                    }
                    LayoutSearch::Random => {
                        let p = tmpl.space.random_point(&mut self.rng);
                        (p, vec![], f32::NAN, provenance::RANDOM)
                    }
                }
            };
            let Ok(decision) = decode_layout_point(self.graph, &tmpl, &point) else {
                continue;
            };
            // Assess the layout on a trial copy of the plan.
            let mut trial = plan.clone();
            apply_layout_decision(
                self.graph,
                &mut trial,
                op,
                &decision,
                self.cfg.free_input_layouts,
            );
            // Layout change invalidates the best loop point (the space is
            // reconstructed), but not the cost model.
            self.best_points.remove(&op);
            let remaining = explore_budget
                .saturating_sub(self.measurer.used - start)
                .max(1);
            let lat =
                self.loop_tune_rounds(op, &trial, sched, self.cfg.rounds_per_layout, remaining);
            self.journal_layout_visit(op, origin, &point, lat);
            // A fully-faulted assessment yields no latency; skip reward
            // bookkeeping (inf/inf would poison the PPO baseline) and
            // move on from this layout.
            if !lat.is_finite() {
                cur_point = point;
                continue;
            }
            let r0 = *ref_lat.get_or_insert(lat);
            let reward = 2.0 - (lat / r0) as f32;
            if self.cfg.layout_search == LayoutSearch::Ppo && logp.is_finite() {
                agent.store(obs, acts, logp, reward);
            }
            let lsched = sched.get(op);
            if best.as_ref().map(|b| lat < b.0).unwrap_or(true) {
                best = Some((lat, point.clone(), lsched));
            }
            finalists.push((lat, point.clone()));
            cur_point = point;
        }
        agent.update();
        if self.cfg.telemetry.is_enabled() {
            for (episode, s) in agent.take_update_log().into_iter().enumerate() {
                self.cfg.telemetry.emit(Record::PpoUpdate(PpoUpdateRecord {
                    op: op_label(self.graph, op),
                    episode: episode as u64 + 1,
                    transitions: s.transitions as u64,
                    reward_mean: s.reward_mean as f64,
                    policy_loss: s.policy_loss as f64,
                    value_loss: s.value_loss as f64,
                    entropy: s.entropy as f64,
                }));
            }
        }

        // Re-assess the finalists more deeply before committing: shallow
        // per-layout assessments are noisy, and a mis-commit cannot be
        // recovered in the loop-only stage. The re-assessment spends what
        // is left of the op budget, never more.
        finalists.sort_by(|a, b| a.0.total_cmp(&b.0));
        finalists.dedup_by(|a, b| a.1 == b.1);
        finalists.truncate(3);
        let finalist_cap = budget.saturating_sub(self.measurer.used - start);
        let finalist_start = self.measurer.used;
        for (_, point) in &finalists {
            if self.measurer.used - finalist_start >= finalist_cap {
                break;
            }
            let Ok(decision) = decode_layout_point(self.graph, &tmpl, point) else {
                continue;
            };
            let mut trial = plan.clone();
            apply_layout_decision(
                self.graph,
                &mut trial,
                op,
                &decision,
                self.cfg.free_input_layouts,
            );
            self.best_points.remove(&op);
            let rem = finalist_cap
                .saturating_sub(self.measurer.used - finalist_start)
                .max(1);
            let lat = self.loop_tune_rounds(op, &trial, sched, 3, rem);
            self.journal_layout_visit(op, provenance::FINALIST, point, lat);
            if lat.is_finite() && best.as_ref().map(|b| lat < b.0).unwrap_or(true) {
                best = Some((lat, point.clone(), sched.get(op)));
            }
        }

        // Commit the winning layout (and its schedule) for real.
        if let Some((lat, point, lsched)) = best {
            if let Ok(decision) = decode_layout_point(self.graph, &tmpl, &point) {
                apply_layout_decision(self.graph, plan, op, &decision, self.cfg.free_input_layouts);
                sched.set(op, lsched.clone());
                self.best_points.remove(&op);
                if self.cfg.journal.is_enabled() {
                    self.cfg
                        .journal
                        .emit(JournalRecord::LayoutCommit(LayoutCommitRecord {
                            op: op_label(self.graph, op),
                            point: point.iter().map(|&x| x as u64).collect(),
                            latency_s: finite(lat),
                        }));
                }
                return Some((point, lsched));
            }
        }
        None
    }

    /// The measurement neighbourhood of an operator: the op itself, the
    /// simple producers of its inputs (which absorb layout conversions),
    /// and the chain of simple consumers its output layout propagates to.
    /// Measuring the whole neighbourhood charges a layout's externalities
    /// — a layout that makes the downstream pool or ReLU slow is charged
    /// for it during assessment, not discovered at the end.
    fn neighborhood(&self, op: OpId) -> std::collections::HashSet<OpId> {
        let mut roots = std::collections::HashSet::new();
        roots.insert(op);
        let node = self.graph.node(op);
        for &t in &node.inputs {
            if let Some(p) = self.graph.tensor(t).producer {
                if !self.graph.node(p).tag.is_complex() {
                    roots.insert(p);
                }
            }
        }
        // Walk simple consumers (the propagation frontier).
        let mut queue = vec![node.output];
        let mut guard = 0;
        while let Some(t) = queue.pop() {
            guard += 1;
            if guard > 32 {
                break;
            }
            for &c in &self.graph.tensor(t).consumers {
                let cn = self.graph.node(c);
                if cn.tag.is_complex() || roots.contains(&c) {
                    continue;
                }
                roots.insert(c);
                if cn.tag == alt_tensor::OpTag::Elementwise {
                    queue.push(cn.output);
                }
            }
        }
        roots
    }

    /// Runs `rounds` of loop tuning for `op` under the given plan;
    /// returns the best latency seen and updates `sched` with the best
    /// schedule.
    fn loop_tune_rounds(
        &mut self,
        op: OpId,
        plan: &LayoutPlan,
        sched: &mut GraphSchedule,
        rounds: usize,
        budget_cap: u64,
    ) -> f64 {
        let space =
            crate::space::build_loop_space_ex(self.graph, plan, op, self.cfg.loop_levels >= 2);
        let start = self.measurer.used;
        self.measurer.ctx.op = op_label(self.graph, op);
        // Attribute the incumbent baseline (measured before the round
        // counter advances below) to this op's own round count — not to
        // whatever round another op left behind, and, on a resumed run,
        // not to zero: `state.rounds` is checkpointed, `ctx.round` is not.
        self.measurer.ctx.round = self.loop_state.get(&op).map_or(0, |st| st.rounds);
        let mut best = self
            .best_points
            .get(&op)
            .cloned()
            .map(|(p, l)| (l, p))
            .unwrap_or((f64::INFINITY, vec![]));
        if best.0.is_infinite() {
            self.measurer.ctx.candidate = "incumbent".to_string();
            self.measurer.ctx.predicted_cost = None;
            // The incumbent schedule may predate a layout change, in which
            // case its tilings no longer match the physical dims; reset it
            // before measuring the baseline.
            let node = self.graph.node(op);
            let phys = plan.layout_of(self.graph, node.output).physical_shape();
            let reduce_ext: Vec<i64> = node.compute.reduce_axes.iter().map(|a| a.extent).collect();
            if !sched.get(op).validate(phys.dims(), &reduce_ext) {
                sched.set(op, OpSchedule::default());
            }
            // Establish the incumbent schedule as the baseline so a round
            // of worse candidates can never overwrite a good schedule.
            let roots = self.neighborhood(op);
            // On total failure the incumbent stays at infinity; any healthy
            // candidate below will replace it.
            let used_before = self.measurer.used;
            let lat = {
                let _timing = self.cfg.timing.phase("measure");
                self.measure_with_retry(plan, sched, &roots, budget_cap)
            };
            self.journal_attempted(provenance::INCUMBENT, &[], None, lat, used_before);
            if let Some(lat) = lat {
                best.0 = lat;
            }
        }
        let roots = self.neighborhood(op);

        for _ in 0..rounds {
            if self.measurer.used - start >= budget_cap {
                break;
            }
            {
                let state = self.loop_state.entry(op).or_insert_with(LoopTuneState::new);
                state.rounds += 1;
                self.measurer.ctx.round = state.rounds;
            }
            // Candidate batch: random exploration plus walks around the
            // incumbent.
            let timing_gen = self.cfg.timing.phase("candidate_gen");
            let mut candidates: Vec<(Point, &'static str)> = Vec::with_capacity(self.cfg.batch);
            for b in 0..self.cfg.batch {
                if best.1.is_empty() || b % 3 == 0 {
                    candidates.push((space.random_point(&mut self.rng), provenance::RANDOM));
                } else {
                    candidates.push((space.neighbor(&best.1, &mut self.rng), provenance::NEIGHBOR));
                }
            }
            // Drop quarantined candidates *after* generation so the RNG
            // draw count — and thus every later draw — is unchanged by
            // the filter (zero-fault runs stay bit-identical).
            let op_tag = self.measurer.ctx.op.clone();
            candidates.retain(|(p, origin)| {
                if self.quarantine.contains(&format!("{op_tag}:{p:?}")) {
                    self.journal_dropped(origin, p, outcome::QUARANTINED, None);
                    false
                } else {
                    true
                }
            });
            // Rank by the cost model (higher prediction = faster). When
            // the model is untrained the ranking would be random anyway,
            // so skip lowering the whole batch and take a random subset.
            let state = self.loop_state.entry(op).or_insert_with(LoopTuneState::new);
            let model_trained = state.model.is_trained();
            // When the model is untrained the ranking would be random
            // anyway, so only a random subset is lowered at all.
            if !model_trained {
                let keep = self.cfg.topk.max(1).min(candidates.len());
                for (p, origin) in candidates.split_off(keep) {
                    self.journal_dropped(origin, &p, outcome::SKIPPED, None);
                }
            }
            drop(timing_gen);
            // Lower every candidate and extract its features across the
            // worker pool. This is the generation's pure, embarrassingly
            // parallel work: lowering and featurization depend only on
            // the (frozen) graph/plan/schedule, never on tuner state, so
            // results are bit-identical for any `jobs` and are merged
            // back in submission order.
            // Requested workers, clamped to the machine (oversubscribing
            // pure CPU-bound work only adds overhead; the clamp is
            // invisible to the run transcript).
            let jobs = crate::parallel::effective_jobs(self.cfg.jobs);
            // `Err(None)` = failed to lower, `Err(Some(d))` = statically
            // rejected by the verifier. Both are dropped before scoring
            // and consume zero budget; only the verifier rejections are
            // counted and traced (in the sequential merge below, so the
            // transcript stays jobs-invariant). Set-engine counters ride
            // along per candidate and are folded on the same sequential
            // path (they are pure functions of the candidate, so the
            // totals are jobs-invariant too).
            type LoweredCandidate = Result<
                (OpSchedule, Vec<f32>, alt_verify::VerifyStats),
                (Option<alt_verify::Diagnostic>, alt_verify::VerifyStats),
            >;
            let timing_lower = self.cfg.timing.phase("lower");
            let lowered: Vec<LoweredCandidate> = {
                let graph = self.graph;
                let sched_ref: &GraphSchedule = sched;
                let single: HashSet<OpId> = [op].into_iter().collect();
                let verify = self.cfg.verify;
                // Workers report per-candidate lowering latency into the
                // timing registry (thread-safe histograms), never the
                // phase tree — the tree stays on the accounting thread.
                let timing = self.cfg.timing.clone();
                ordered_map(&candidates, jobs, |_, (p, _)| {
                    let s = decode_loop_point(graph, plan, op, &space, p);
                    let mut trial_sched = sched_ref.clone();
                    trial_sched.set(op, s.clone());
                    let t0 = std::time::Instant::now();
                    let program = try_lower_filtered(graph, plan, &trial_sched, Some(&single));
                    timing.observe_us("candidate.lower_us", t0.elapsed().as_micros() as u64);
                    let program =
                        program.map_err(|_| (None, alt_verify::VerifyStats::default()))?;
                    let mut vstats = alt_verify::VerifyStats::default();
                    if verify {
                        // The verifier is pure and deterministic, so it can
                        // run on workers; only the first (smallest-code)
                        // finding is reported per candidate.
                        let (diags, vs) =
                            alt_verify::verify_program_with_stats(graph, plan, &program);
                        timing.observe_us("verify.set_emptiness_us", vs.set_emptiness_us);
                        vstats = vs;
                        if let Some(d) = diags.into_iter().next() {
                            return Err((Some(d), vstats));
                        }
                    }
                    Ok((s, extract_features(&program), vstats))
                })
            };
            drop(timing_lower);
            // Rank by the cost model (higher prediction = faster); the
            // GBT prediction itself stays on the tuning thread.
            let timing_score = self.cfg.timing.phase("gbt_score");
            let mut scored: Vec<(f64, Point, &'static str, OpSchedule, Vec<f32>)> = Vec::new();
            for ((p, origin), lf) in candidates.into_iter().zip(lowered) {
                let (s, feats) = match lf {
                    Ok((s, feats, vs)) => {
                        self.add_verify_stats(&vs);
                        (s, feats)
                    }
                    Err((None, _)) => {
                        self.journal_dropped(origin, &p, outcome::LOWER_FAILED, None);
                        continue;
                    }
                    Err((Some(d), vs)) => {
                        self.add_verify_stats(&vs);
                        self.registry.add("verify.rejected", 1.0);
                        if self.cfg.telemetry.is_enabled() {
                            self.cfg.telemetry.emit(Record::VerifyRejection(
                                VerifyRejectionRecord {
                                    op: self.measurer.ctx.op.clone(),
                                    stage: self.measurer.ctx.stage,
                                    round: self.measurer.ctx.round,
                                    candidate: format!("{p:?}"),
                                    code: d.code.to_string(),
                                    detail: format!("{}: {}", d.group, d.detail),
                                },
                            ));
                        }
                        self.journal_dropped(
                            origin,
                            &p,
                            outcome::VERIFY_REJECTED,
                            Some(d.code.to_string()),
                        );
                        continue;
                    }
                };
                let score = if model_trained {
                    self.loop_state[&op].model.predict(&feats) as f64
                } else {
                    0.0
                };
                scored.push((score, p, origin, s, feats));
            }
            if model_trained {
                scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            }
            drop(timing_score);
            // Measure the predicted top-k. `k` respects the remaining
            // budget cap strictly: when nothing is left, the round stops.
            let k = self
                .cfg
                .topk
                .min(scored.len())
                .min(budget_cap.saturating_sub(self.measurer.used - start) as usize);
            if k == 0 {
                for (_, p, origin, _, _) in &scored {
                    self.journal_dropped(origin, p, outcome::SKIPPED, None);
                }
                break;
            }
            // Prewarm the measurement cache for the k candidates about
            // to be measured: workers lower each candidate *with its
            // measurement neighborhood* (the exact program the loop
            // below measures) and simulate it into the shared memo
            // table. The sequential loop then consumes warm entries, so
            // its transcript — RNG draws, faults, budget, telemetry,
            // hit/miss counters — is byte-identical to an unwarmed run.
            // Skipped at effective `jobs <= 1` (sequential request or a
            // single-core machine), where inline prewarming would only
            // duplicate the lowering work.
            if jobs > 1 {
                let _timing = self.cfg.timing.phase("prewarm");
                let graph = self.graph;
                let sim = self.measurer.simulator();
                let cache = self.measurer.sim_cache();
                let sched_ref: &GraphSchedule = sched;
                ordered_map(&scored[..k], jobs, |_, (_, _, _, s, _)| {
                    let mut trial_sched = sched_ref.clone();
                    trial_sched.set(op, s.clone());
                    if let Ok(program) = try_lower_filtered(graph, plan, &trial_sched, Some(&roots))
                    {
                        cache.prewarm(sim, &program);
                    }
                });
            }
            let mut measured: Vec<(f64, f64)> = Vec::with_capacity(k);
            // Candidates ranked beyond the top-k are never measured;
            // journal them so every generated candidate has exactly one
            // terminal record.
            for (_, p, origin, _, _) in scored.split_off(k) {
                self.journal_dropped(origin, &p, outcome::SKIPPED, None);
            }
            let timing_measure = self.cfg.timing.phase("measure");
            for (score, p, origin, s, feats) in scored {
                let cap = budget_cap.saturating_sub(self.measurer.used - start);
                if cap == 0 {
                    // The cap cannot recover within a round, so every
                    // remaining selected candidate is journaled as
                    // skipped (`continue`, not `break`).
                    self.journal_dropped(origin, &p, outcome::SKIPPED, None);
                    continue;
                }
                let mut trial_sched = sched.clone();
                trial_sched.set(op, s.clone());
                self.measurer.ctx.candidate = format!("{p:?}");
                self.measurer.ctx.predicted_cost = if model_trained { Some(score) } else { None };
                let predicted = if model_trained { Some(score) } else { None };
                let used_before = self.measurer.used;
                let outcome_lat = self.measure_with_retry(plan, &trial_sched, &roots, cap);
                self.journal_attempted(origin, &p, predicted, outcome_lat, used_before);
                let Some(lat) = outcome_lat else {
                    continue;
                };
                if model_trained {
                    // Quality on the model's own scale (-ln latency), so
                    // the rank correlation below reads "+1 = perfect".
                    measured.push((score, -lat.max(1e-12).ln()));
                }
                let state = self.loop_state.get_mut(&op).expect("state exists");
                state.record(feats, lat);
                if lat < best.0 {
                    best = (lat, p);
                    sched.set(op, s);
                }
            }
            drop(timing_measure);
            self.measurer.ctx.predicted_cost = None;
            let state = self.loop_state.get_mut(&op).expect("state exists");
            if self.cfg.telemetry.is_enabled() && measured.len() >= 2 {
                let (pred, qual): (Vec<f64>, Vec<f64>) = measured.into_iter().unzip();
                self.cfg.telemetry.emit(Record::CostModel(CostModelRecord {
                    op: self.measurer.ctx.op.clone(),
                    stage: self.measurer.ctx.stage,
                    round: state.rounds,
                    measured: pred.len() as u64,
                    spearman: alt_telemetry::spearman(&pred, &qual),
                    train_size: state.trained_on,
                }));
            }
            state.retrain();
        }
        if !best.1.is_empty() {
            self.best_points.insert(op, (best.1.clone(), best.0));
        }
        best.0
    }
}

/// Human-readable operator tag used in trace records, e.g. `conv2d#3`.
pub fn op_label(graph: &Graph, op: OpId) -> String {
    format!("{}#{}", graph.node(op).compute.name, op.0)
}

/// Tuning-task signature: operators with the same kind and tensor shapes
/// share layouts and schedules.
fn op_signature(graph: &Graph, op: OpId) -> String {
    let node = graph.node(op);
    let mut s = format!("{:?}|{}", node.tag, node.compute.name);
    for &i in &node.inputs {
        s.push_str(&format!("|{}", graph.tensor(i).shape));
    }
    s.push_str(&format!("|{}", graph.tensor(node.output).shape));
    s
}

/// Index of the option closest to `target`.
fn closest_index(options: &[i64], target: i64) -> usize {
    options
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| (v - target).abs())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Heuristic starting points inside a layout template: the degenerate
/// channels-last point, the NeoCPU-style channel-tiled point, the
/// NCHW-equivalent point, and a moderate spatial-tiled point.
pub fn seed_points(graph: &Graph, tmpl: &crate::space::LayoutTemplate) -> Vec<Point> {
    use crate::space::TemplateKind;
    let knobs = &tmpl.space.knobs;
    let full: Point = knobs
        .iter()
        .map(|k| k.options.len().saturating_sub(1))
        .collect();
    let node = graph.node(tmpl.op);
    let _ = node;
    let mut seeds = match &tmpl.kind {
        TemplateKind::Conv { d, .. } | TemplateKind::TransposedConv { d } => {
            // Channels-last: every spatial tile = full extent, ot = O,
            // it = I (single tiles everywhere).
            let channels_last = full.clone();
            // NeoCPU channel tiling: unit spatial tiles, ot ~ 16.
            let mut chan_tiled: Point = vec![0; knobs.len()];
            chan_tiled[..*d].fill(0); // spatial tile 1
            chan_tiled[*d] = closest_index(&knobs[*d].options, 16);
            chan_tiled[*d + 1] = closest_index(&knobs[*d + 1].options, 8);
            if knobs.len() > *d + 3 {
                chan_tiled[*d + 2] = closest_index(&knobs[*d + 2].options, 8);
                chan_tiled[*d + 3] = closest_index(&knobs[*d + 3].options, 16);
            }
            // Moderate spatial tiling (the paper's searched family).
            let mut spatial: Point = vec![0; knobs.len()];
            for k in 0..*d {
                spatial[k] = closest_index(&knobs[k].options, 8);
            }
            spatial[*d] = closest_index(&knobs[*d].options, 16);
            spatial[*d + 1] = closest_index(&knobs[*d + 1].options, 8);
            if knobs.len() > *d + 3 {
                spatial[*d + 2] = closest_index(&knobs[*d + 2].options, 8);
                spatial[*d + 3] = closest_index(&knobs[*d + 3].options, 16);
            }
            // NCHW-equivalent: full spatial tiles with every channel
            // knob at 1 (input stays channels-first, weight stays OIKK).
            let mut identity_like = full.clone();
            for v in identity_like
                .iter_mut()
                .take((*d + 4).min(knobs.len()))
                .skip(*d)
            {
                *v = 0;
            }
            vec![spatial, chan_tiled, identity_like, channels_last]
        }
        TemplateKind::Gmm | TemplateKind::BatchGmm => {
            // KN (degenerate) and NKn with 16x16 tiles.
            let mut nkn: Point = vec![0; knobs.len()];
            for k in 0..3.min(knobs.len()) {
                nkn[k] = closest_index(&knobs[k].options, 16);
            }
            vec![nkn, full]
        }
    };
    // The well-known seed families are all plain tilings: pin the
    // trailing `xform` knob (advanced templates) to "none" so seeds keep
    // their intended meaning (e.g. "channels-last" is not Morton'd).
    if tmpl.advanced {
        for p in &mut seeds {
            if let Some(last) = p.last_mut() {
                *last = 0;
            }
        }
    }
    seeds
}

/// Convenience wrapper.
pub fn tune_graph(graph: &Graph, profile: MachineProfile, cfg: TuneConfig) -> TuneResult {
    Tuner::new(graph, profile, cfg).tune()
}

/// Base schedule: every elementwise operator requests fusion into its
/// producer; non-complex root groups get a sensible default (parallel +
/// vectorized innermost) so end-to-end numbers are not dominated by naive
/// auxiliary operators.
pub fn base_schedule(graph: &Graph) -> GraphSchedule {
    let mut sched = GraphSchedule::naive();
    for node in graph.nodes() {
        match node.tag {
            OpTag::Elementwise => {
                sched.set(
                    node.id,
                    OpSchedule {
                        fuse_into_producer: true,
                        vectorize: true,
                        parallel: true,
                        spatial: default_tiling(graph, node.id),
                        ..OpSchedule::default()
                    },
                );
            }
            // Complex operators the tuner never reaches (budget exhausted)
            // must still run with a sane schedule, not a naive serial
            // nest.
            OpTag::Complex(_) => {
                let reduce = node
                    .compute
                    .reduce_axes
                    .iter()
                    .map(|a| {
                        let t = largest_divisor_at_most(a.extent, 8);
                        if t > 1 {
                            alt_loopir::AxisTiling::one(t)
                        } else {
                            alt_loopir::AxisTiling::none()
                        }
                    })
                    .collect();
                sched.set(
                    node.id,
                    OpSchedule {
                        vectorize: true,
                        parallel: true,
                        unroll: true,
                        reduce,
                        spatial: default_tiling(graph, node.id),
                        ..OpSchedule::default()
                    },
                );
            }
            _ => {
                sched.set(
                    node.id,
                    OpSchedule {
                        vectorize: true,
                        parallel: true,
                        spatial: default_tiling(graph, node.id),
                        ..OpSchedule::default()
                    },
                );
            }
        }
    }
    sched
}

/// Default spatial tiling: tile the innermost dimension so it can be
/// vectorized.
fn default_tiling(graph: &Graph, op: OpId) -> Vec<alt_loopir::AxisTiling> {
    let node = graph.node(op);
    let shape = &graph.tensor(node.output).shape;
    let nd = shape.ndim();
    let mut out = vec![alt_loopir::AxisTiling::none(); nd];
    if nd > 0 {
        let last = shape.dim(nd - 1);
        let tile = crate::space::divisors(last)
            .into_iter()
            .rfind(|&d| d <= 64)
            .unwrap_or(1);
        if tile > 1 {
            out[nd - 1] = alt_loopir::AxisTiling::one(tile);
        }
    }
    out
}

/// Flops-proportional budget shares.
fn budget_shares(graph: &Graph, ops: &[OpId]) -> Vec<f64> {
    let flops: Vec<f64> = ops
        .iter()
        .map(|&op| graph.node(op).compute.total_flops() as f64)
        .collect();
    let total: f64 = flops.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / ops.len().max(1) as f64; ops.len()];
    }
    flops.iter().map(|f| f / total).collect()
}

/// Applies a fixed layout family to every complex operator (baselines).
pub fn apply_fixed_layout(
    graph: &Graph,
    plan: &mut LayoutPlan,
    fixed: FixedLayout,
    free_inputs: bool,
) {
    if fixed == FixedLayout::Identity {
        return;
    }
    // Padding and pooling operators keep the same layout family so no
    // implicit (strided) relayout pass appears between blocked operators
    // — this is how vendor libraries keep everything in `nChw16c`.
    for node in graph.nodes() {
        if !matches!(node.tag, OpTag::Padding | OpTag::Reduction) {
            continue;
        }
        let out_shape = graph.tensor(node.output).shape.clone();
        if out_shape.ndim() < 3 {
            continue;
        }
        let layout = match fixed {
            FixedLayout::Identity => None,
            FixedLayout::ChannelsLast => presets::channels_last(out_shape).ok(),
            FixedLayout::ChannelTiled(t) => {
                let c = out_shape.dim(1);
                let t = largest_divisor_at_most(c, t);
                if t > 1 {
                    presets::channel_tiled(out_shape, t).ok()
                } else {
                    None
                }
            }
        };
        if let Some(l) = layout {
            plan.set_layout(node.output, l);
        }
    }
    for op in graph.complex_ops() {
        let node = graph.node(op);
        let out_shape = graph.tensor(node.output).shape.clone();
        let out_layout: Option<Layout> = match fixed {
            FixedLayout::Identity => None,
            FixedLayout::ChannelsLast => presets::channels_last(out_shape).ok(),
            FixedLayout::ChannelTiled(t) => {
                let c = graph.tensor(node.output).shape.dim(1);
                let t = largest_divisor_at_most(c, t);
                if t > 1 {
                    presets::channel_tiled(out_shape, t).ok()
                } else {
                    None
                }
            }
        };
        if let Some(l) = out_layout {
            plan.assign_output_layout(graph, op, l);
        }
        // Input activations follow the same family where it applies.
        if matches!(
            node.tag,
            OpTag::Complex(alt_tensor::ComplexKind::Conv1d)
                | OpTag::Complex(alt_tensor::ComplexKind::Conv2d)
                | OpTag::Complex(alt_tensor::ComplexKind::Conv3d)
                | OpTag::Complex(alt_tensor::ComplexKind::TransposedConv2d)
                | OpTag::Complex(alt_tensor::ComplexKind::TransposedConv3d)
        ) {
            let x = node.inputs[0];
            let in_shape = graph.tensor(x).shape.clone();
            let in_layout = match fixed {
                FixedLayout::Identity => None,
                FixedLayout::ChannelsLast => presets::channels_last(in_shape).ok(),
                FixedLayout::ChannelTiled(t) => {
                    let c = graph.tensor(x).shape.dim(1);
                    let t = largest_divisor_at_most(c, t);
                    if t > 1 {
                        presets::channel_tiled(in_shape, t).ok()
                    } else {
                        None
                    }
                }
            };
            if let Some(l) = in_layout {
                let info = graph.tensor(x);
                if free_inputs && info.producer.is_none() {
                    plan.set_layout(x, l);
                } else {
                    plan.assign_input_layout(graph, op, x, l);
                }
            }
            // Weights: channels-last family stores output channels last
            // (HWIO-style); tiled family uses the NeoCPU weight layout.
            let w = node.inputs[1];
            let w_shape = graph.tensor(w).shape.clone();
            let w_layout = match fixed {
                FixedLayout::Identity => None,
                FixedLayout::ChannelsLast => {
                    let nd = w_shape.ndim();
                    let mut perm: Vec<usize> = (2..nd).collect();
                    perm.push(1);
                    perm.push(0);
                    presets::permuted(w_shape, &perm).ok()
                }
                FixedLayout::ChannelTiled(t) => {
                    let o = w_shape.dim(0);
                    let i = w_shape.dim(1);
                    let ot = largest_divisor_at_most(o, t);
                    let it = largest_divisor_at_most(i, t.min(8));
                    presets::conv_weight_tiled_nd(w_shape, it, ot).ok()
                }
            };
            if let Some(l) = w_layout {
                plan.assign_input_layout(graph, op, w, l);
            }
        }
    }
}

/// Largest divisor of `n` that is `<= cap`.
pub fn largest_divisor_at_most(n: i64, cap: i64) -> i64 {
    crate::space::divisors(n)
        .into_iter()
        .rfind(|&d| d <= cap)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_sim::intel_cpu;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn small_conv_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
        let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let b = g.add_param("b", Shape::new([32]));
        let ba = ops::bias_add(&mut g, c, b, 1);
        let _ = ops::relu(&mut g, ba);
        g
    }

    #[test]
    fn tuning_improves_over_naive() {
        let g = small_conv_graph();
        let cfg = TuneConfig {
            joint_budget: 24,
            loop_budget: 24,
            batch: 16,
            topk: 4,
            free_input_layouts: true,
            seed: 42,
            ..TuneConfig::default()
        };
        let result = tune_graph(&g, intel_cpu(), cfg);
        let naive_plan = LayoutPlan::new(PropagationMode::Full);
        let naive =
            Measurer::new(&g, intel_cpu()).measure_graph_free(&naive_plan, &GraphSchedule::naive());
        assert!(
            result.latency < naive,
            "tuned {} should beat naive {naive}",
            result.latency
        );
        assert!(result.measurements >= 40);
    }

    #[test]
    fn budget_is_respected() {
        let g = small_conv_graph();
        let cfg = TuneConfig {
            joint_budget: 16,
            loop_budget: 16,
            batch: 8,
            topk: 4,
            free_input_layouts: true,
            seed: 1,
            ..TuneConfig::default()
        };
        let result = tune_graph(&g, intel_cpu(), cfg);
        // Accounting is strict: the joint stage never exceeds its budget
        // and the loop stage tops the total up to exactly joint + loop.
        assert_eq!(result.measurements, 32, "used {}", result.measurements);
        assert!(!result.history.is_empty());
    }

    #[test]
    fn fixed_layout_skips_joint_stage() {
        let g = small_conv_graph();
        let cfg = TuneConfig {
            joint_budget: 100,
            loop_budget: 16,
            batch: 8,
            topk: 4,
            fixed_layout: Some(FixedLayout::ChannelsLast),
            free_input_layouts: true,
            seed: 2,
            ..TuneConfig::default()
        };
        let result = tune_graph(&g, intel_cpu(), cfg);
        // Joint budget unused: only the loop stage measures.
        assert_eq!(result.measurements, 16, "used {}", result.measurements);
        // The conv output layout is the fixed channels-last permutation.
        let conv = g.complex_ops()[0];
        let out = g.node(conv).output;
        assert!(!result.plan.layout_of(&g, out).is_identity());
    }

    #[test]
    fn trace_has_one_measurement_record_per_budget_unit() {
        let g = small_conv_graph();
        let (telemetry, sink) = Telemetry::memory();
        let cfg = TuneConfig {
            joint_budget: 20,
            loop_budget: 30,
            batch: 8,
            topk: 4,
            free_input_layouts: true,
            seed: 5,
            telemetry,
            ..TuneConfig::default()
        };
        let result = tune_graph(&g, intel_cpu(), cfg);
        assert_eq!(result.measurements, 50);
        let records = sink.records();
        let measurements: Vec<&alt_telemetry::MeasurementRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::Measurement(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(
            measurements.len() as u64,
            result.measurements,
            "exactly one trace record per consumed budget unit"
        );
        // seq is the budget counter itself.
        for (i, m) in measurements.iter().enumerate() {
            assert_eq!(m.seq, i as u64 + 1);
        }
        let joint = measurements
            .iter()
            .filter(|m| m.stage == Stage::Joint)
            .count() as u64;
        assert!(joint <= 20, "joint stage overspent: {joint}");
        assert_eq!(joint + (measurements.len() as u64 - joint), 50);
        // Both stage spans closed, and the dataset grew enough for the
        // cost model to rank rounds (spearman records).
        let span_names: Vec<&str> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s.name.as_str()),
                _ => None,
            })
            .collect();
        assert!(span_names.contains(&"joint_stage"), "{span_names:?}");
        assert!(span_names.contains(&"loop_stage"), "{span_names:?}");
        assert!(
            records.iter().any(|r| matches!(r, Record::CostModel(_))),
            "trained-model rounds must report rank correlation"
        );
        // The run-level simulator counter registry was flushed.
        assert!(records.iter().any(
            |r| matches!(r, Record::Counter(c) if c.scope == "sim" && c.name == "l1.accesses")
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_conv_graph();
        let cfg = TuneConfig {
            joint_budget: 12,
            loop_budget: 12,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 7,
            ..TuneConfig::default()
        };
        let a = tune_graph(&g, intel_cpu(), cfg.clone());
        let b = tune_graph(&g, intel_cpu(), cfg);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn tuning_log_serializes() {
        let g = small_conv_graph();
        let cfg = TuneConfig {
            joint_budget: 12,
            loop_budget: 12,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 7,
            ..TuneConfig::default()
        };
        let r = tune_graph(&g, intel_cpu(), cfg);
        let log = r.to_log(&g);
        assert!(log["measurements"].as_u64().unwrap() > 0);
        assert!(!log["best_so_far"].as_array().unwrap().is_empty());
        // Best-so-far curve is monotone non-increasing.
        let curve = log["best_so_far"].as_array().unwrap();
        let mut prev = f64::INFINITY;
        for p in curve {
            let v = p[1].as_f64().unwrap();
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn largest_divisor_helper() {
        assert_eq!(largest_divisor_at_most(64, 16), 16);
        assert_eq!(largest_divisor_at_most(60, 16), 15);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
    }

    fn tmp_ck(name: &str) -> String {
        let dir = std::env::temp_dir().join("alt-tuner-ck");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.json", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn faulted_run_completes_with_exact_accounting() {
        let g = small_conv_graph();
        let (telemetry, sink) = Telemetry::memory();
        let cfg = TuneConfig {
            joint_budget: 20,
            loop_budget: 30,
            batch: 8,
            topk: 4,
            free_input_layouts: true,
            seed: 9,
            telemetry,
            faults: Some(FaultConfig::uniform(0.2)),
            ..TuneConfig::default()
        };
        let result = tune_graph(&g, intel_cpu(), cfg);
        // Graceful degradation: the faulted run still completes and
        // returns a real plan with a real latency.
        assert!(result.latency.is_finite() && result.latency > 0.0);
        // Strict accounting survives faults: failed measurements consume
        // budget too, so the total is exactly joint + loop.
        assert_eq!(result.measurements, 50);
        let records = sink.records();
        let ok = records
            .iter()
            .filter(|r| matches!(r, Record::Measurement(_)))
            .count();
        let failed = records
            .iter()
            .filter(|r| matches!(r, Record::MeasurementFailure(_)))
            .count();
        assert!(failed > 0, "a 20% fault rate over 50 units must fault");
        assert_eq!(ok + failed, 50, "one trace record per budget unit");
        // seq is the budget counter: the union of success and failure
        // records covers 1..=50 exactly once.
        let mut seqs: Vec<u64> = records
            .iter()
            .filter_map(|r| match r {
                Record::Measurement(m) => Some(m.seq),
                Record::MeasurementFailure(f) => Some(f.seq),
                _ => None,
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=50).collect::<Vec<u64>>());
        for r in &records {
            if let Record::MeasurementFailure(f) = r {
                assert!(
                    matches!(f.kind.as_str(), "injected_compile" | "timeout"),
                    "unexpected failure kind {}",
                    f.kind
                );
                assert!(f.attempt >= 1);
            }
        }
        // Robustness counters flow through the run-level registry.
        assert!(records.iter().any(
            |r| matches!(r, Record::Counter(c) if c.scope == "tuner" && c.name.starts_with("failures."))
        ));
    }

    #[test]
    fn fault_runs_are_deterministic_given_seed() {
        let g = small_conv_graph();
        let mk = || TuneConfig {
            joint_budget: 16,
            loop_budget: 16,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 13,
            faults: Some(FaultConfig::uniform(0.2)),
            ..TuneConfig::default()
        };
        // The injector draws from the tuner's own stream, so the same
        // seed and fault config reproduce the whole run bit-for-bit.
        let a = tune_graph(&g, intel_cpu(), mk());
        let b = tune_graph(&g, intel_cpu(), mk());
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.measurements, b.measurements);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn resumed_run_matches_uninterrupted() {
        let g = small_conv_graph();
        let base = TuneConfig {
            joint_budget: 16,
            loop_budget: 16,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 21,
            ..TuneConfig::default()
        };
        let full = tune_graph(&g, intel_cpu(), base.clone());
        let path = tmp_ck("resume");
        let halted = tune_graph(
            &g,
            intel_cpu(),
            TuneConfig {
                checkpoint_path: Some(path.clone()),
                halt_after: Some(16),
                ..base.clone()
            },
        );
        assert!(
            halted.measurements < full.measurements,
            "halted at {} of {}",
            halted.measurements,
            full.measurements
        );
        let ck = TunerCheckpoint::load(&path).unwrap();
        let resumed = tune_graph(
            &g,
            intel_cpu(),
            TuneConfig {
                resume: Some(ck),
                ..base.clone()
            },
        );
        assert_eq!(resumed.latency, full.latency);
        assert_eq!(resumed.measurements, full.measurements);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resumed_faulted_run_matches_uninterrupted() {
        let g = small_conv_graph();
        let base = TuneConfig {
            joint_budget: 16,
            loop_budget: 16,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 23,
            faults: Some(FaultConfig::uniform(0.2)),
            ..TuneConfig::default()
        };
        let full = tune_graph(&g, intel_cpu(), base.clone());
        let path = tmp_ck("resume-faulted");
        tune_graph(
            &g,
            intel_cpu(),
            TuneConfig {
                checkpoint_path: Some(path.clone()),
                halt_after: Some(16),
                ..base.clone()
            },
        );
        let ck = TunerCheckpoint::load(&path).unwrap();
        let resumed = tune_graph(
            &g,
            intel_cpu(),
            TuneConfig {
                resume: Some(ck),
                ..base.clone()
            },
        );
        assert_eq!(resumed.latency, full.latency);
        assert_eq!(resumed.measurements, full.measurements);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_wrong_seed_or_graph() {
        let g = small_conv_graph();
        let path = tmp_ck("reject");
        tune_graph(
            &g,
            intel_cpu(),
            TuneConfig {
                joint_budget: 16,
                loop_budget: 16,
                batch: 8,
                topk: 2,
                free_input_layouts: true,
                seed: 31,
                checkpoint_path: Some(path.clone()),
                halt_after: Some(16),
                ..TuneConfig::default()
            },
        );
        let ck = TunerCheckpoint::load(&path).unwrap();
        assert!(ck.validate(&g, 32).is_err(), "wrong seed must be rejected");
        let mut other = Graph::new();
        let x = other.add_input("x", alt_tensor::Shape::new([1, 8, 18, 18]));
        let w = other.add_param("w", alt_tensor::Shape::new([8, 8, 3, 3]));
        let _ = alt_tensor::ops::conv2d(&mut other, x, w, ConvCfg::default());
        assert!(
            ck.validate(&other, 31).is_err(),
            "wrong graph must be rejected"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timing_and_progress_do_not_change_the_run() {
        let g = small_conv_graph();
        let cfg = |timing: Timing, progress: bool, telemetry: Telemetry| TuneConfig {
            joint_budget: 12,
            loop_budget: 18,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 9,
            telemetry,
            timing,
            progress,
            ..TuneConfig::default()
        };
        let (t_plain, sink_plain) = Telemetry::memory();
        let plain = tune_graph(&g, intel_cpu(), cfg(Timing::disabled(), false, t_plain));
        let (t_timed, sink_timed) = Telemetry::memory();
        let timing = Timing::enabled();
        let timed = tune_graph(&g, intel_cpu(), cfg(timing.clone(), true, t_timed));
        // Timing and progress are observation-only: winner, budget,
        // history and the full deterministic trace are bit-identical.
        assert_eq!(plain.latency.to_bits(), timed.latency.to_bits());
        assert_eq!(plain.measurements, timed.measurements);
        assert_eq!(plain.history, timed.history);
        for k in 0..g.nodes().len() {
            assert_eq!(
                format!("{:?}", plain.sched.get(OpId(k))),
                format!("{:?}", timed.sched.get(OpId(k))),
                "winner schedule of op {k} must be bit-identical"
            );
        }
        assert_eq!(
            sink_plain.records().len(),
            sink_timed.records().len(),
            "timing must not add records to the deterministic trace"
        );
        // ... while the timing handle itself accumulated a phase tree.
        let root = timing.snapshot().expect("timing enabled");
        assert!(root.find("loop_stage").is_some(), "{root:?}");
        assert!(root.is_conserved(), "{root:?}");
    }

    #[test]
    fn timing_phase_tree_names_the_pipeline_stages() {
        let g = small_conv_graph();
        let timing = Timing::enabled();
        let cfg = TuneConfig {
            joint_budget: 12,
            loop_budget: 18,
            batch: 8,
            topk: 2,
            free_input_layouts: true,
            seed: 9,
            timing: timing.clone(),
            ..TuneConfig::default()
        };
        let result = tune_graph(&g, intel_cpu(), cfg);
        let root = timing.snapshot().expect("timing enabled");
        assert!(root.is_conserved(), "{root:?}");
        let joint = root.find("joint_stage").expect("joint stage ran");
        let lp = root.find("loop_stage").expect("loop stage ran");
        // Every stage decomposes into the round phases; measure wraps
        // one `simulate` probe per consumed budget unit.
        for stage in [joint, lp] {
            assert!(stage.find("candidate_gen").is_some(), "{stage:?}");
            assert!(stage.find("lower").is_some(), "{stage:?}");
            assert!(stage.find("measure").is_some(), "{stage:?}");
        }
        let simulate_count: u64 = [joint, lp]
            .iter()
            .flat_map(|s| s.find("measure"))
            .filter_map(|m| m.find("simulate"))
            .map(|s| s.count)
            .sum();
        assert!(
            simulate_count <= result.measurements,
            "simulate probes ({simulate_count}) cannot exceed budget ({})",
            result.measurements
        );
        assert!(simulate_count > 0, "{root:?}");
        // The worker-side channel recorded per-candidate lowering times
        // into the wall registry.
        let hists = timing.registry().expect("enabled").histograms();
        assert!(
            hists.iter().any(|(n, _)| n == "candidate.lower_us"),
            "{hists:?}"
        );
        assert!(
            hists.iter().any(|(n, _)| n == "memo.lookup_us"),
            "{hists:?}"
        );
    }
}
