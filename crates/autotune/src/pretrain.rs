//! PPO pretraining (paper §6: the agent is pretrained by optimizing
//! several C2D and GMM workloads, then transferred to new tuning tasks —
//! Fig. 11's PPO-Pret).

use alt_sim::MachineProfile;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

use crate::measure::Measurer;
use crate::ppo::{pad_obs, PpoAgent, PpoWeights, SharedCritic};
use crate::space::{apply_layout_decision, build_layout_template, decode_layout_point};
use crate::tuner::{base_schedule, TuneConfig, Tuner};

/// Builds the pretraining workload set: a few C2D and GMM shapes.
fn workloads() -> Vec<Graph> {
    let mut out = Vec::new();
    for (i, o, hw, k) in [(16, 32, 18, 3), (32, 64, 16, 1), (8, 16, 34, 3)] {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, i, hw, hw]));
        let w = g.add_param("w", Shape::new([o, i, k, k]));
        let _ = ops::conv2d(&mut g, x, w, ConvCfg::default());
        out.push(g);
    }
    for (m, k, n) in [(64, 64, 64), (32, 128, 64)] {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([m, k]));
        let b = g.add_param("b", Shape::new([k, n]));
        let _ = ops::gmm(&mut g, a, b);
        out.push(g);
    }
    out
}

/// Pretrains a PPO agent by running layout tuning over the workload set
/// and returning the final actor/critic weights.
///
/// `episodes_per_workload` controls training length (the paper spends
/// half a day on a V100; a few hundred episodes on the simulator give
/// the same transfer effect).
pub fn pretrain_ppo(
    profile: MachineProfile,
    episodes_per_workload: usize,
    seed: u64,
) -> PpoWeights {
    let critic = SharedCritic::new(seed);
    let mut agent = PpoAgent::new(critic, seed + 1);
    for (wi, graph) in workloads().iter().enumerate() {
        let mut measurer = Measurer::new(graph, profile);
        let mut plan = alt_layout::LayoutPlan::new(alt_layout::PropagationMode::Full);
        let mut sched = base_schedule(graph);
        let op = graph.complex_ops()[0];
        let Some(tmpl) = build_layout_template(graph, op, 1) else {
            continue;
        };
        let n = tmpl.space.knobs.len();
        let mut cur: Vec<usize> = tmpl
            .space
            .knobs
            .iter()
            .map(|k| k.options.len() / 2)
            .collect();
        let mut ref_lat = None;
        for _ in 0..episodes_per_workload {
            let obs = pad_obs(tmpl.space.encode(&cur));
            let (acts, logp) = agent.act(&obs);
            let point = tmpl.space.decode_actions(&acts[..n]);
            let Ok(decision) = decode_layout_point(graph, &tmpl, &point) else {
                continue;
            };
            plan.reset();
            apply_layout_decision(graph, &mut plan, op, &decision, true);
            // One quick loop-tuning pass via the main tuner machinery
            // would be expensive here; a fixed vectorized/parallel
            // schedule is enough signal for layout pretraining.
            let mut s = sched.get(op);
            s.vectorize = true;
            s.parallel = true;
            s.unroll = true;
            sched.set(op, s);
            // Pretraining runs without fault injection, so measurement
            // only fails on a genuinely unlowerable point; skip those.
            let Ok(lat) = measurer.measure_op(&plan, &sched, op) else {
                continue;
            };
            let r0 = *ref_lat.get_or_insert(lat);
            let reward = 2.0 - (lat / r0) as f32;
            agent.store(obs, acts, logp, reward);
            cur = point;
        }
        agent.update();
        let _ = wi;
    }
    agent.weights()
}

/// Convenience: runs a tuning session with pretrained weights.
pub fn tune_with_pretraining(
    graph: &Graph,
    profile: MachineProfile,
    mut cfg: TuneConfig,
    pretrain_episodes: usize,
) -> crate::tuner::TuneResult {
    let weights = pretrain_ppo(profile, pretrain_episodes, cfg.seed ^ 0x5048);
    cfg.pretrained = Some(weights);
    Tuner::new(graph, profile, cfg).tune()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_sim::intel_cpu;

    #[test]
    fn pretraining_produces_weights() {
        let w = pretrain_ppo(intel_cpu(), 8, 11);
        let json = serde_json::to_string(&w).unwrap();
        assert!(json.len() > 1000);
    }
}
