//! Live tuning progress: a throttled stderr heartbeat.
//!
//! The heartbeat is strictly observational — it reads the budget counter
//! and cache/store statistics that the tuner maintains anyway, draws
//! nothing from the RNG, and writes only to stderr (never to the trace,
//! journal or timing sinks), so `--progress` cannot change a run.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Minimum wall-clock seconds between heartbeat lines.
const DEFAULT_INTERVAL_S: f64 = 1.0;

/// Width of the recent-rate window, in seconds. The candidate rate (and
/// hence the ETA) extrapolates from ticks inside this window rather than
/// the whole-run average: a warm store serving the first N candidates
/// instantly would otherwise inflate the average and make the ETA for
/// the remaining cold candidates wildly optimistic until the very end.
const RATE_WINDOW_S: f64 = 5.0;

/// A throttled stderr progress reporter. Disabled by default
/// ([`Progress::disabled`]): every tick is a no-op and costs no clock
/// read.
pub struct Progress {
    inner: Option<ProgressInner>,
}

struct ProgressInner {
    /// Total budget (joint + loop), for the fraction and the ETA.
    total: u64,
    t0: Instant,
    min_interval_s: f64,
    /// Mutex, not atomic: ticks are rare and the lock also serializes
    /// the stderr writes of concurrent measurers.
    state: Mutex<ProgressState>,
}

#[derive(Default)]
struct ProgressState {
    /// Elapsed seconds at the last printed line (`None` before the
    /// first).
    last_print_s: Option<f64>,
    /// Recent `(elapsed_s, used)` tick samples, oldest first, trimmed to
    /// [`RATE_WINDOW_S`].
    samples: VecDeque<(f64, u64)>,
}

impl Progress {
    /// The disabled reporter: no clock, no output.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled reporter for a run of `total` budget units, printing
    /// at most once a second.
    pub fn enabled(total: u64) -> Self {
        Self::with_interval(total, DEFAULT_INTERVAL_S)
    }

    /// An enabled reporter with a custom throttle interval (tests use
    /// `0.0` to capture every tick).
    pub fn with_interval(total: u64, min_interval_s: f64) -> Self {
        Self {
            inner: Some(ProgressInner {
                total,
                t0: Instant::now(),
                min_interval_s,
                state: Mutex::new(ProgressState::default()),
            }),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reports one consumed budget unit. Prints a heartbeat line to
    /// stderr when at least the throttle interval has passed since the
    /// last one (the first tick always prints).
    pub fn tick(&self, used: u64, cache: (u64, u64), store: (u64, u64)) {
        let Some(inner) = &self.inner else { return };
        let elapsed = inner.t0.elapsed().as_secs_f64();
        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.samples.push_back((elapsed, used));
        trim_window(&mut state.samples, elapsed);
        if let Some(prev) = state.last_print_s {
            if elapsed - prev < inner.min_interval_s {
                return;
            }
        }
        state.last_print_s = Some(elapsed);
        // Recent-window rate when the window spans enough ticks; the
        // whole-run average only as a fallback for the first ticks.
        let samples: Vec<(f64, u64)> = state.samples.iter().copied().collect();
        let rate = window_rate(&samples).unwrap_or(if elapsed > 0.0 {
            used as f64 / elapsed
        } else {
            0.0
        });
        eprintln!("{}", line(used, inner.total, rate, cache, store));
    }
}

/// Drops samples that fell out of the rate window, always retaining the
/// two most recent ones so a rate exists even when every candidate takes
/// longer than the window.
fn trim_window(samples: &mut VecDeque<(f64, u64)>, now: f64) {
    while samples.len() > 2 {
        match samples.front() {
            Some(&(t, _)) if t < now - RATE_WINDOW_S => {
                samples.pop_front();
            }
            _ => break,
        }
    }
}

/// Candidate rate over a span of `(elapsed_s, used)` tick samples:
/// consumed units between the oldest and newest sample divided by the
/// wall time between them. `None` when the span is degenerate (fewer
/// than two samples, or no time/progress between them).
pub fn window_rate(samples: &[(f64, u64)]) -> Option<f64> {
    let (t0, u0) = *samples.first()?;
    let (t1, u1) = *samples.last()?;
    if t1 > t0 && u1 > u0 {
        Some((u1 - u0) as f64 / (t1 - t0))
    } else {
        None
    }
}

/// Formats one heartbeat line (pure; the testable core of [`Progress`]).
///
/// `progress: 37/1000 (3.7%) | 123.4 cand/s | cache 45.0% | store 10.0% | eta 7.8s`
///
/// `rate` is the recent-window candidate rate ([`window_rate`]); the
/// store segment reads `store -` when no store has served anything, and
/// the ETA reads `eta -` until a rate exists to extrapolate from.
pub fn line(used: u64, total: u64, rate: f64, cache: (u64, u64), store: (u64, u64)) -> String {
    let pct = if total > 0 {
        used as f64 / total as f64 * 100.0
    } else {
        100.0
    };
    let cache_part = match cache.0 + cache.1 {
        0 => "cache -".to_string(),
        n => format!("cache {:.1}%", cache.0 as f64 / n as f64 * 100.0),
    };
    let store_part = match store.0 + store.1 {
        0 => "store -".to_string(),
        n => format!("store {:.1}%", store.0 as f64 / n as f64 * 100.0),
    };
    let eta_part = if total <= used {
        "eta 0.0s".to_string()
    } else if rate > 0.0 {
        format!("eta {:.1}s", (total - used) as f64 / rate)
    } else {
        "eta -".to_string()
    };
    format!(
        "progress: {used}/{total} ({pct:.1}%) | {rate:.1} cand/s | {cache_part} | {store_part} | {eta_part}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_formats_every_segment() {
        let s = line(37, 1000, 18.5, (45, 55), (10, 90));
        assert_eq!(
            s,
            "progress: 37/1000 (3.7%) | 18.5 cand/s | cache 45.0% | store 10.0% | eta 52.1s"
        );
    }

    #[test]
    fn empty_statistics_render_as_dashes() {
        let s = line(0, 100, 0.0, (0, 0), (0, 0));
        assert!(s.contains("cache -"), "{s}");
        assert!(s.contains("store -"), "{s}");
        assert!(s.contains("eta -"), "{s}");
    }

    #[test]
    fn finished_run_reports_zero_eta() {
        let s = line(100, 100, 20.0, (50, 50), (0, 0));
        assert!(s.contains("(100.0%)"), "{s}");
        assert!(s.contains("eta 0.0s"), "{s}");
    }

    #[test]
    fn disabled_progress_ticks_silently() {
        let p = Progress::disabled();
        assert!(!p.is_enabled());
        p.tick(1, (0, 0), (0, 0));
    }

    #[test]
    fn throttle_suppresses_rapid_ticks() {
        // With a huge interval only the first tick prints; the test
        // observes the throttle state rather than capturing stderr.
        let p = Progress::with_interval(10, 1e9);
        p.tick(1, (0, 0), (0, 0));
        let inner = p.inner.as_ref().expect("enabled");
        let first = inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last_print_s
            .expect("first tick prints");
        p.tick(2, (0, 0), (0, 0));
        let second = inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last_print_s
            .expect("state survives");
        assert_eq!(first.to_bits(), second.to_bits(), "second tick throttled");
    }

    #[test]
    fn window_rate_needs_a_real_span() {
        assert_eq!(window_rate(&[]), None);
        assert_eq!(window_rate(&[(1.0, 5)]), None);
        // No time between samples (instant warm burst): no rate.
        assert_eq!(window_rate(&[(1.0, 5), (1.0, 50)]), None);
        assert_eq!(window_rate(&[(0.0, 0), (2.0, 10)]), Some(5.0));
    }

    #[test]
    fn trim_drops_stale_samples_but_keeps_two() {
        let mut q: VecDeque<(f64, u64)> = [(0.0, 0), (0.1, 50), (6.0, 51), (7.0, 52)]
            .into_iter()
            .collect();
        trim_window(&mut q, 7.0);
        assert_eq!(Vec::from(q.clone()), vec![(6.0, 51), (7.0, 52)]);
        // Slow candidates (every tick older than the window): the two
        // newest samples survive so a rate always exists.
        let mut q: VecDeque<(f64, u64)> = [(0.0, 0), (30.0, 1), (60.0, 2)].into_iter().collect();
        trim_window(&mut q, 60.0);
        assert_eq!(Vec::from(q), vec![(30.0, 1), (60.0, 2)]);
    }

    #[test]
    fn warm_start_burst_does_not_deflate_the_cold_eta() {
        // Regression (warm-store ETA): a warm store serves the first 50
        // of 100 candidates in 0.1s, then cold candidates land once per
        // second. At t = 8s the whole-run average (58 used / 8s =
        // 7.25 cand/s) would promise the 42 remaining candidates in
        // ~5.8s; they actually need ~42s.
        let mut q: VecDeque<(f64, u64)> = VecDeque::new();
        q.push_back((0.0, 0));
        q.push_back((0.1, 50)); // warm burst
        for k in 1..=8u64 {
            q.push_back((0.1 + k as f64, 50 + k));
            trim_window(&mut q, 0.1 + k as f64);
        }
        let samples: Vec<(f64, u64)> = q.iter().copied().collect();
        let rate = window_rate(&samples).expect("rate exists");
        // The burst has aged out of the 5s window: only the ~1 cand/s
        // cold rate remains.
        assert!((0.8..=1.2).contains(&rate), "window rate {rate}");
        let eta = (100 - 58) as f64 / rate;
        assert!((35.0..=55.0).contains(&eta), "eta {eta}");
        // The whole-run average would have been wildly optimistic.
        let avg = 58.0 / 8.1;
        assert!((100 - 58) as f64 / avg < 7.0, "average eta not optimistic?");
        // And the rendered line carries the honest figure.
        let s = line(58, 100, rate, (0, 0), (50, 8));
        assert!(s.contains("eta 4") || s.contains("eta 5"), "{s}");
    }
}
