//! Live tuning progress: a throttled stderr heartbeat.
//!
//! The heartbeat is strictly observational — it reads the budget counter
//! and cache/store statistics that the tuner maintains anyway, draws
//! nothing from the RNG, and writes only to stderr (never to the trace,
//! journal or timing sinks), so `--progress` cannot change a run.

use std::sync::Mutex;
use std::time::Instant;

/// Minimum wall-clock seconds between heartbeat lines.
const DEFAULT_INTERVAL_S: f64 = 1.0;

/// A throttled stderr progress reporter. Disabled by default
/// ([`Progress::disabled`]): every tick is a no-op and costs no clock
/// read.
pub struct Progress {
    inner: Option<ProgressInner>,
}

struct ProgressInner {
    /// Total budget (joint + loop), for the fraction and the ETA.
    total: u64,
    t0: Instant,
    min_interval_s: f64,
    /// Elapsed seconds at the last printed line (`None` before the
    /// first). Mutex, not atomic: ticks are rare and the lock also
    /// serializes the stderr writes of concurrent measurers.
    last_print_s: Mutex<Option<f64>>,
}

impl Progress {
    /// The disabled reporter: no clock, no output.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled reporter for a run of `total` budget units, printing
    /// at most once a second.
    pub fn enabled(total: u64) -> Self {
        Self::with_interval(total, DEFAULT_INTERVAL_S)
    }

    /// An enabled reporter with a custom throttle interval (tests use
    /// `0.0` to capture every tick).
    pub fn with_interval(total: u64, min_interval_s: f64) -> Self {
        Self {
            inner: Some(ProgressInner {
                total,
                t0: Instant::now(),
                min_interval_s,
                last_print_s: Mutex::new(None),
            }),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reports one consumed budget unit. Prints a heartbeat line to
    /// stderr when at least the throttle interval has passed since the
    /// last one (the first tick always prints).
    pub fn tick(&self, used: u64, cache: (u64, u64), store: (u64, u64)) {
        let Some(inner) = &self.inner else { return };
        let elapsed = inner.t0.elapsed().as_secs_f64();
        let mut last = inner.last_print_s.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prev) = *last {
            if elapsed - prev < inner.min_interval_s {
                return;
            }
        }
        *last = Some(elapsed);
        eprintln!("{}", line(used, inner.total, elapsed, cache, store));
    }
}

/// Formats one heartbeat line (pure; the testable core of [`Progress`]).
///
/// `progress: 37/1000 (3.7%) | 123.4 cand/s | cache 45.0% | store 10.0% | eta 7.8s`
///
/// The store segment reads `store -` when no store has served anything,
/// and the ETA reads `eta -` until a rate exists to extrapolate from.
pub fn line(used: u64, total: u64, elapsed_s: f64, cache: (u64, u64), store: (u64, u64)) -> String {
    let pct = if total > 0 {
        used as f64 / total as f64 * 100.0
    } else {
        100.0
    };
    let rate = if elapsed_s > 0.0 {
        used as f64 / elapsed_s
    } else {
        0.0
    };
    let cache_part = match cache.0 + cache.1 {
        0 => "cache -".to_string(),
        n => format!("cache {:.1}%", cache.0 as f64 / n as f64 * 100.0),
    };
    let store_part = match store.0 + store.1 {
        0 => "store -".to_string(),
        n => format!("store {:.1}%", store.0 as f64 / n as f64 * 100.0),
    };
    let eta_part = if rate > 0.0 && total > used {
        format!("eta {:.1}s", (total - used) as f64 / rate)
    } else if total <= used {
        "eta 0.0s".to_string()
    } else {
        "eta -".to_string()
    };
    format!(
        "progress: {used}/{total} ({pct:.1}%) | {rate:.1} cand/s | {cache_part} | {store_part} | {eta_part}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_formats_every_segment() {
        let s = line(37, 1000, 2.0, (45, 55), (10, 90));
        assert_eq!(
            s,
            "progress: 37/1000 (3.7%) | 18.5 cand/s | cache 45.0% | store 10.0% | eta 52.1s"
        );
    }

    #[test]
    fn empty_statistics_render_as_dashes() {
        let s = line(0, 100, 0.0, (0, 0), (0, 0));
        assert!(s.contains("cache -"), "{s}");
        assert!(s.contains("store -"), "{s}");
        assert!(s.contains("eta -"), "{s}");
    }

    #[test]
    fn finished_run_reports_zero_eta() {
        let s = line(100, 100, 5.0, (50, 50), (0, 0));
        assert!(s.contains("(100.0%)"), "{s}");
        assert!(s.contains("eta 0.0s"), "{s}");
    }

    #[test]
    fn disabled_progress_ticks_silently() {
        let p = Progress::disabled();
        assert!(!p.is_enabled());
        p.tick(1, (0, 0), (0, 0));
    }

    #[test]
    fn throttle_suppresses_rapid_ticks() {
        // With a huge interval only the first tick prints; the test
        // observes the throttle state rather than capturing stderr.
        let p = Progress::with_interval(10, 1e9);
        p.tick(1, (0, 0), (0, 0));
        let inner = p.inner.as_ref().expect("enabled");
        let first = inner
            .last_print_s
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .expect("first tick prints");
        p.tick(2, (0, 0), (0, 0));
        let second = inner
            .last_print_s
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .expect("state survives");
        assert_eq!(first.to_bits(), second.to_bits(), "second tick throttled");
    }
}
