//! Deterministic fan-out: an order-preserving parallel map over scoped
//! worker threads (PR 4).
//!
//! The tuner's hot path — lowering candidate schedules and simulating
//! them — is pure, so it can run on worker threads while everything
//! stateful (RNG draws, fault injection, budget accounting, telemetry)
//! stays on the measurement thread. [`ordered_map`] is the only
//! parallel primitive the tuner uses: items are claimed by an atomic
//! work-stealing counter, but results are merged back **in submission
//! order**, so the caller observes exactly the sequence a sequential
//! loop would produce. With `jobs <= 1` the closure runs inline on the
//! caller's thread, guaranteeing `--jobs 1` and `--jobs N` execute the
//! same closure on the same items in the same logical order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Clamps a requested worker count to the machine's available
/// parallelism.
///
/// Oversubscribing a small machine can only add scheduling overhead:
/// the parallel workers do pure, CPU-bound work, so extra threads never
/// help. On a single-core machine every `--jobs N` degrades to the
/// inline sequential path — which is safe precisely because the jobs
/// knob is transcript-invisible: results, traces, and accounting are
/// bit-identical at any worker count, so the clamp can vary freely
/// across machines.
pub fn effective_jobs(requested: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.min(cores).max(1)
}

/// Applies `f` to every item and returns the results in input order.
///
/// `f` must be pure with respect to observable tuner state: it may not
/// draw from the tuner RNG, touch the budget, or emit telemetry. The
/// function is called exactly once per item (no retries), and a worker
/// panic propagates to the caller.
pub fn ordered_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for w in workers {
            for (i, r) in w.join().expect("measurement worker panicked") {
                debug_assert!(slots[i].is_none(), "item {i} produced twice");
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every item is claimed exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 8, 64] {
            let out = ordered_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_do_not_change_the_result() {
        let items: Vec<u64> = (0..37).map(|i| i * 7 + 1).collect();
        let slow_square = |_: usize, &x: &u64| {
            // Jitter completion order so the merge actually reorders.
            std::thread::sleep(std::time::Duration::from_micros(x % 5));
            x * x
        };
        let seq = ordered_map(&items, 1, slow_square);
        for jobs in [2, 3, 8] {
            assert_eq!(ordered_map(&items, jobs, slow_square), seq);
        }
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let none: Vec<u32> = vec![];
        assert!(ordered_map(&none, 8, |_, x| *x).is_empty());
        assert_eq!(ordered_map(&[41u32], 8, |_, x| x + 1), vec![42]);
    }
}
