//! Seeded fault injection for measurement robustness testing.
//!
//! Real tuning backends are flaky: candidate kernels fail to compile,
//! on-device runs hang, and measured latencies are occasionally polluted
//! by co-located load. The simulator is perfectly reliable, so the
//! [`FaultInjector`] re-introduces those failure modes at configurable
//! rates — deterministically, because it draws from the tuner's own
//! [`SharedRng`] stream. A run is reproduced exactly by its seed and
//! fault configuration.
//!
//! The durable tuning store gets its own injector, [`IoFaultInjector`]:
//! rate-based torn writes, ENOSPC and partial reads against the store's
//! filesystem path (PR 7). It deliberately does *not* share the tuner's
//! [`SharedRng`] — that stream is single-threaded (`Rc<RefCell<..>>`)
//! and, more importantly, store I/O must never consume a search draw:
//! attaching a store, healthy or failing, cannot change which candidates
//! a run explores. The injector carries its own seeded SplitMix64 stream
//! behind a mutex instead.

use std::sync::atomic::{AtomicU64, Ordering};

use alt_error::AltError;
use rand::Rng;

use crate::rng::SharedRng;

/// Fault rates for the measurement path. All rates are probabilities per
/// measurement; their sum must be `<= 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a candidate fails to "compile".
    pub compile_failure_rate: f64,
    /// Probability a measurement "times out".
    pub timeout_rate: f64,
    /// Probability a measurement is polluted by an outlier slowdown.
    pub noise_rate: f64,
    /// Outlier slowdown factor range (multiplies the true latency).
    pub noise_min: f64,
    /// Upper end of the slowdown factor range.
    pub noise_max: f64,
}

impl FaultConfig {
    /// Splits one overall fault `rate` across the three fault modes:
    /// half compile failures, a quarter timeouts, a quarter noise —
    /// e.g. `uniform(0.2)` gives rates `0.1 / 0.05 / 0.05`.
    pub fn uniform(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultConfig {
            compile_failure_rate: rate / 2.0,
            timeout_rate: rate / 4.0,
            noise_rate: rate / 4.0,
            noise_min: 1.5,
            noise_max: 4.0,
        }
    }

    /// Total probability that a measurement is affected at all.
    pub fn total_rate(&self) -> f64 {
        self.compile_failure_rate + self.timeout_rate + self.noise_rate
    }
}

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The candidate failed to compile; no latency exists.
    CompileFail,
    /// The measurement timed out; no latency exists.
    Timeout,
    /// The measurement completed but the latency is multiplied by this
    /// outlier factor (`> 1`).
    Noise(f64),
}

/// Draws faults from the shared tuning stream at configured rates.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SharedRng,
}

impl FaultInjector {
    /// An injector drawing from the tuner's shared stream.
    pub fn new(cfg: FaultConfig, rng: SharedRng) -> Self {
        FaultInjector { cfg, rng }
    }

    /// Decides the fate of one measurement. Consumes one draw from the
    /// shared stream (two when the outcome is noise), regardless of
    /// telemetry being on or off.
    pub fn draw(&mut self) -> Option<Fault> {
        let u: f64 = self.rng.gen();
        let c = self.cfg.compile_failure_rate;
        let t = c + self.cfg.timeout_rate;
        let n = t + self.cfg.noise_rate;
        if u < c {
            Some(Fault::CompileFail)
        } else if u < t {
            Some(Fault::Timeout)
        } else if u < n {
            let factor = self.rng.gen_range(self.cfg.noise_min..self.cfg.noise_max);
            Some(Fault::Noise(factor))
        } else {
            None
        }
    }

    /// The error a candidate-less fault maps to.
    pub fn error_for(fault: Fault, candidate: &str) -> Option<AltError> {
        match fault {
            Fault::CompileFail => Some(AltError::InjectedCompileFailure {
                candidate: candidate.to_string(),
            }),
            Fault::Timeout => Some(AltError::MeasureTimeout {
                candidate: candidate.to_string(),
            }),
            Fault::Noise(_) => None,
        }
    }

    /// Total variant of [`FaultInjector::error_for`]: every fault maps to
    /// a typed error. A fault with no dedicated mapping (today only
    /// [`Fault::Noise`], which the measurement path is supposed to
    /// intercept before reaching the error path) degrades into
    /// [`AltError::Injector`] so an internal inconsistency fails one
    /// measurement instead of panicking away a long tuning run.
    pub fn error_for_total(fault: Fault, candidate: &str) -> AltError {
        Self::error_for(fault, candidate).unwrap_or_else(|| AltError::Injector {
            detail: format!("unmapped injector outcome {fault:?} for candidate {candidate}"),
        })
    }
}

/// Fault rates for the durable store's filesystem I/O. All rates are
/// probabilities per operation.
#[derive(Clone, Debug, PartialEq)]
pub struct IoFaultConfig {
    /// Probability an append is torn mid-frame (a random prefix of the
    /// frame reaches the file).
    pub torn_write_rate: f64,
    /// Probability an append fails with no bytes written (disk full).
    pub enospc_rate: f64,
    /// Probability the open-time segment read observes a truncated view
    /// of the file.
    pub partial_read_rate: f64,
    /// Seed of the injector's private stream.
    pub seed: u64,
}

impl IoFaultConfig {
    /// Splits one overall I/O fault `rate` evenly across the three
    /// modes.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        IoFaultConfig {
            torn_write_rate: rate / 3.0,
            enospc_rate: rate / 3.0,
            partial_read_rate: rate / 3.0,
            seed,
        }
    }

    /// Total probability that an append is affected at all.
    pub fn total_rate(&self) -> f64 {
        self.torn_write_rate + self.enospc_rate + self.partial_read_rate
    }
}

/// Rate-based store I/O fault injector (see the module docs for why it
/// does not draw from [`SharedRng`]). Thread-safe: the store may be
/// appended to from any thread holding its handle.
#[derive(Debug)]
pub struct IoFaultInjector {
    cfg: IoFaultConfig,
    state: AtomicU64,
}

impl IoFaultInjector {
    /// An injector with its own private SplitMix64 stream.
    pub fn new(cfg: IoFaultConfig) -> Self {
        let state = AtomicU64::new(cfg.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
        IoFaultInjector { cfg, state }
    }

    /// One SplitMix64 step (uniform u64).
    fn next_u64(&self) -> u64 {
        let mut z = self
            .state
            .fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl alt_store::faults::IoFaultHook for IoFaultInjector {
    fn on_append(&self, _seq: u64, len: usize) -> Option<alt_store::faults::IoFault> {
        let u = self.next_f64();
        if u < self.cfg.torn_write_rate {
            let keep = (self.next_u64() as usize) % len.max(1);
            Some(alt_store::faults::IoFault::Torn { keep })
        } else if u < self.cfg.torn_write_rate + self.cfg.enospc_rate {
            Some(alt_store::faults::IoFault::Enospc)
        } else {
            None
        }
    }

    fn on_read(&self, len: usize) -> Option<usize> {
        if self.next_f64() < self.cfg.partial_read_rate {
            Some((self.next_u64() as usize) % len.max(1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_store::faults::{IoFault, IoFaultHook};

    #[test]
    fn uniform_splits_the_rate() {
        let cfg = FaultConfig::uniform(0.2);
        assert_eq!(cfg.compile_failure_rate, 0.1);
        assert_eq!(cfg.timeout_rate, 0.05);
        assert_eq!(cfg.noise_rate, 0.05);
        assert!((cfg.total_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn draws_are_deterministic_given_seed() {
        let a: Vec<Option<Fault>> = {
            let mut inj =
                FaultInjector::new(FaultConfig::uniform(0.5), SharedRng::seed_from_u64(7));
            (0..64).map(|_| inj.draw()).collect()
        };
        let b: Vec<Option<Fault>> = {
            let mut inj =
                FaultInjector::new(FaultConfig::uniform(0.5), SharedRng::seed_from_u64(7));
            (0..64).map(|_| inj.draw()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(0.4), SharedRng::seed_from_u64(1));
        let n = 4000;
        let faults = (0..n).filter(|_| inj.draw().is_some()).count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.05, "observed fault rate {rate}");
    }

    #[test]
    fn noise_factors_stay_in_range() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                compile_failure_rate: 0.0,
                timeout_rate: 0.0,
                noise_rate: 1.0,
                noise_min: 1.5,
                noise_max: 4.0,
            },
            SharedRng::seed_from_u64(2),
        );
        for _ in 0..100 {
            match inj.draw() {
                Some(Fault::Noise(f)) => assert!((1.5..4.0).contains(&f), "{f}"),
                other => panic!("expected noise, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_fault_maps_to_a_typed_error() {
        // The latency-bearing faults keep their dedicated errors...
        let e = FaultInjector::error_for_total(Fault::CompileFail, "[1]");
        assert_eq!(e.kind(), "injected_compile");
        assert!(e.is_transient());
        let e = FaultInjector::error_for_total(Fault::Timeout, "[1]");
        assert_eq!(e.kind(), "timeout");
        assert!(e.is_transient());
        // ...while an outcome with no mapping (`Noise` reaching the
        // error path) degrades into a typed, non-transient error rather
        // than the panic this used to be.
        let e = FaultInjector::error_for_total(Fault::Noise(2.0), "[1, 2]");
        assert_eq!(e.kind(), "injector");
        assert!(!e.is_transient());
        assert!(e.to_string().contains("[1, 2]"), "{e}");
    }

    #[test]
    fn zero_rate_never_faults() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(0.0), SharedRng::seed_from_u64(3));
        assert!((0..256).all(|_| inj.draw().is_none()));
    }

    #[test]
    fn io_injector_respects_rates_and_bounds() {
        let inj = IoFaultInjector::new(IoFaultConfig::uniform(0.3, 42));
        let n = 4000;
        let mut torn = 0;
        let mut enospc = 0;
        for seq in 0..n {
            match inj.on_append(seq, 64) {
                Some(IoFault::Torn { keep }) => {
                    assert!(keep < 64, "torn prefix within the frame: {keep}");
                    torn += 1;
                }
                Some(IoFault::Enospc) => enospc += 1,
                None => {}
            }
        }
        let rate = (torn + enospc) as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.05, "append fault rate {rate}");
        let reads = (0..n).filter(|_| inj.on_read(1024).is_some()).count();
        let rate = reads as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.05, "partial read rate {rate}");
    }

    #[test]
    fn io_injector_with_zero_rate_is_a_noop() {
        let inj = IoFaultInjector::new(IoFaultConfig::uniform(0.0, 9));
        assert!((0..256).all(|seq| inj.on_append(seq, 64).is_none()));
        assert!((0..256).all(|_| inj.on_read(64).is_none()));
    }
}
