//! Program feature extraction for the learned cost model.
//!
//! Features are deliberately coarser than the full performance model: the
//! cost model (like Ansor's XGBoost) sees loop structure, annotation and
//! stride summaries, not the simulator's cache analysis — so ranking
//! candidates with it is genuinely approximate and top-k measurement
//! remains necessary.

use alt_tensor::expr::Env;

use alt_loopir::tir::{LoopKind, Program, Stmt, TirNode};

/// Fixed feature vector width.
pub const N_FEATURES: usize = 16;

#[derive(Default)]
struct Accum {
    iters: f64,
    flops: f64,
    loads: f64,
    vec_iters: f64,
    unrolled_iters: f64,
    par_extent_max: f64,
    innermost_extent_sum: f64,
    innermost_count: f64,
    unit_stride_loads: f64,
    broadcast_loads: f64,
    strided_loads: f64,
    store_unit: f64,
    touched_bytes: f64,
    n_stmts: f64,
    depth_sum: f64,
}

fn walk(
    program: &Program,
    nodes: &[TirNode],
    stack: &mut Vec<(alt_tensor::Var, i64, LoopKind)>,
    acc: &mut Accum,
) {
    for node in nodes {
        match node {
            TirNode::Loop {
                var,
                extent,
                kind,
                body,
            } => {
                stack.push((var.clone(), *extent, *kind));
                walk(program, body, stack, acc);
                stack.pop();
            }
            TirNode::Stmt(s) => stmt_features(program, s, stack, acc),
        }
    }
}

fn stmt_features(
    program: &Program,
    stmt: &Stmt,
    stack: &[(alt_tensor::Var, i64, LoopKind)],
    acc: &mut Accum,
) {
    let iters: f64 = stack.iter().map(|(_, e, _)| *e as f64).product();
    acc.n_stmts += 1.0;
    acc.depth_sum += stack.len() as f64;
    acc.iters += iters;
    acc.flops += iters * stmt.value.flops() as f64;

    let vectorized = stack.iter().any(|(_, _, k)| *k == LoopKind::Vectorized);
    let unrolled = stack.iter().any(|(_, _, k)| *k == LoopKind::Unrolled);
    if vectorized {
        acc.vec_iters += iters;
    }
    if unrolled {
        acc.unrolled_iters += iters;
    }
    let par: f64 = stack
        .iter()
        .filter(|(_, _, k)| *k == LoopKind::Parallel)
        .map(|(_, e, _)| *e as f64)
        .product();
    acc.par_extent_max = acc.par_extent_max.max(par);
    if let Some((_, e, _)) = stack.last() {
        acc.innermost_extent_sum += *e as f64;
        acc.innermost_count += 1.0;
    }

    // Stride classes with respect to the innermost loop.
    let mut env = Env::new();
    for (v, _, _) in stack {
        env.bind(v, 0);
    }
    let innermost = stack.last().map(|(v, _, _)| v.clone());
    let stride_of = |indices: &[alt_tensor::Expr], strides: &[i64]| -> f64 {
        let Some(v) = &innermost else { return 0.0 };
        let base: f64 = indices
            .iter()
            .zip(strides)
            .map(|(e, &s)| e.eval(&env) as f64 * s as f64)
            .sum();
        let mut env2 = env.clone();
        env2.bind(v, 1);
        let moved: f64 = indices
            .iter()
            .zip(strides)
            .map(|(e, &s)| e.eval(&env2) as f64 * s as f64)
            .sum();
        (moved - base).abs()
    };
    stmt.value.visit_loads(&mut |buf, idx| {
        acc.loads += iters;
        let s = stride_of(idx, &program.buffer(buf).shape.strides());
        if s == 0.0 {
            acc.broadcast_loads += iters;
        } else if s <= 1.0 {
            acc.unit_stride_loads += iters;
        } else {
            acc.strided_loads += iters;
        }
    });
    let ss = stride_of(&stmt.indices, &program.buffer(stmt.buf).shape.strides());
    if (ss - 1.0).abs() < 1e-6 {
        acc.store_unit += iters;
    }
    acc.touched_bytes += program.buffer(stmt.buf).shape.numel() as f64 * 4.0;
}

/// Extracts the feature vector for a lowered program.
pub fn extract_features(program: &Program) -> Vec<f32> {
    let mut acc = Accum::default();
    for g in &program.groups {
        let mut stack = Vec::new();
        walk(program, &g.nodes, &mut stack, &mut acc);
    }
    let ln = |v: f64| (v.max(1.0)).ln() as f32;
    let frac = |a: f64, b: f64| if b > 0.0 { (a / b) as f32 } else { 0.0 };
    vec![
        ln(acc.iters),
        ln(acc.flops),
        ln(acc.loads),
        frac(acc.vec_iters, acc.iters),
        frac(acc.unrolled_iters, acc.iters),
        ln(acc.par_extent_max),
        frac(acc.innermost_extent_sum, acc.innermost_count.max(1.0)) / 64.0,
        frac(acc.unit_stride_loads, acc.loads),
        frac(acc.broadcast_loads, acc.loads),
        frac(acc.strided_loads, acc.loads),
        frac(acc.store_unit, acc.iters),
        ln(acc.touched_bytes),
        acc.n_stmts as f32 / 8.0,
        frac(acc.depth_sum, acc.n_stmts.max(1.0)) / 8.0,
        program.groups.len() as f32 / 8.0,
        ln(acc.iters / acc.n_stmts.max(1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_layout::{LayoutPlan, PropagationMode};
    use alt_loopir::{lower, AxisTiling, GraphSchedule, OpSchedule};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, Shape};

    fn programs() -> (Program, Program) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 16, 18, 18]));
        let w = g.add_param("w", Shape::new([16, 16, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let op = g.tensor(y).producer.unwrap();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let naive = lower(&g, &plan, &GraphSchedule::naive());
        let mut sched = GraphSchedule::naive();
        sched.set(
            op,
            OpSchedule {
                spatial: vec![
                    AxisTiling::none(),
                    AxisTiling::one(8),
                    AxisTiling::one(4),
                    AxisTiling::one(16),
                ],
                reduce: vec![AxisTiling::one(4), AxisTiling::none(), AxisTiling::none()],
                vectorize: true,
                unroll: true,
                parallel: true,
                fuse_into_producer: false,
            },
        );
        let tiled = lower(&g, &plan, &sched);
        (naive, tiled)
    }

    #[test]
    fn feature_vector_has_fixed_width() {
        let (a, b) = programs();
        assert_eq!(extract_features(&a).len(), N_FEATURES);
        assert_eq!(extract_features(&b).len(), N_FEATURES);
    }

    #[test]
    fn features_distinguish_schedules() {
        let (a, b) = programs();
        let fa = extract_features(&a);
        let fb = extract_features(&b);
        assert_ne!(fa, fb);
        // The tiled schedule is vectorized and parallel.
        assert_eq!(fa[3], 0.0);
        assert!(fb[3] > 0.5);
        assert!(fb[5] > fa[5]);
    }

    #[test]
    fn features_are_finite() {
        let (a, _) = programs();
        assert!(extract_features(&a).iter().all(|v| v.is_finite()));
    }
}
