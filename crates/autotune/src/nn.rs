//! Minimal neural-network substrate: dense layers with tanh activations,
//! manual reverse-mode gradients, and an Adam optimizer.
//!
//! This is the substrate for the PPO actor/critic networks (paper §5.2).
//! It is deliberately small: two hidden layers cover the paper's agents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense layer `y = W x + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Row-major `[out x in]` weights.
    pub w: Vec<f32>,
    /// Biases, length `out`.
    pub b: Vec<f32>,
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
}

impl Dense {
    /// Xavier-initialized layer.
    pub fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / (n_in + n_out) as f32).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for o in 0..self.n_out {
            let mut acc = self.b[o];
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    /// Backward pass: given dL/dy, accumulates parameter grads and returns
    /// dL/dx.
    fn backward(&self, x: &[f32], dy: &[f32], gw: &mut [f32], gb: &mut [f32]) -> Vec<f32> {
        let mut dx = vec![0.0; self.n_in];
        for o in 0..self.n_out {
            gb[o] += dy[o];
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let grow = &mut gw[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                grow[i] += dy[o] * x[i];
                dx[i] += row[i] * dy[o];
            }
        }
        dx
    }
}

/// A two-hidden-layer MLP with tanh activations and linear output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// First hidden layer.
    pub l1: Dense,
    /// Second hidden layer.
    pub l2: Dense,
    /// Output layer.
    pub l3: Dense,
}

/// Cached activations for one forward pass.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    x: Vec<f32>,
    h1: Vec<f32>,
    a1: Vec<f32>,
    h2: Vec<f32>,
    a2: Vec<f32>,
}

/// Gradient accumulator matching an [`Mlp`].
#[derive(Clone, Debug)]
pub struct MlpGrad {
    gw1: Vec<f32>,
    gb1: Vec<f32>,
    gw2: Vec<f32>,
    gb2: Vec<f32>,
    gw3: Vec<f32>,
    gb3: Vec<f32>,
}

impl Mlp {
    /// Builds an MLP `n_in -> hidden -> hidden -> n_out`.
    pub fn new(n_in: usize, hidden: usize, n_out: usize, rng: &mut StdRng) -> Self {
        Self {
            l1: Dense::new(n_in, hidden, rng),
            l2: Dense::new(hidden, hidden, rng),
            l3: Dense::new(hidden, n_out, rng),
        }
    }

    /// Forward pass, returning the output and caching activations.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Trace) {
        let mut t = Trace {
            x: x.to_vec(),
            ..Trace::default()
        };
        self.l1.forward(x, &mut t.h1);
        t.a1 = t.h1.iter().map(|v| v.tanh()).collect();
        self.l2.forward(&t.a1, &mut t.h2);
        t.a2 = t.h2.iter().map(|v| v.tanh()).collect();
        let mut out = Vec::new();
        self.l3.forward(&t.a2, &mut out);
        (out, t)
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        self.forward(x).0
    }

    /// Fresh zeroed gradient accumulator.
    pub fn zero_grad(&self) -> MlpGrad {
        MlpGrad {
            gw1: vec![0.0; self.l1.w.len()],
            gb1: vec![0.0; self.l1.b.len()],
            gw2: vec![0.0; self.l2.w.len()],
            gb2: vec![0.0; self.l2.b.len()],
            gw3: vec![0.0; self.l3.w.len()],
            gb3: vec![0.0; self.l3.b.len()],
        }
    }

    /// Accumulates gradients for one sample given dL/d(output).
    pub fn backward(&self, t: &Trace, dout: &[f32], g: &mut MlpGrad) {
        let da2 = self.l3.backward(&t.a2, dout, &mut g.gw3, &mut g.gb3);
        let dh2: Vec<f32> = da2
            .iter()
            .zip(&t.a2)
            .map(|(d, a)| d * (1.0 - a * a))
            .collect();
        let da1 = self.l2.backward(&t.a1, &dh2, &mut g.gw2, &mut g.gb2);
        let dh1: Vec<f32> = da1
            .iter()
            .zip(&t.a1)
            .map(|(d, a)| d * (1.0 - a * a))
            .collect();
        let _ = self.l1.backward(&t.x, &dh1, &mut g.gw1, &mut g.gb1);
    }
}

/// Adam optimizer state for one [`Mlp`]. Serializable so checkpoints
/// can freeze and resume mid-run training (moment estimates included).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an optimizer for `mlp` with learning rate `lr`.
    pub fn new(mlp: &Mlp, lr: f32) -> Self {
        let sizes = [
            mlp.l1.w.len(),
            mlp.l1.b.len(),
            mlp.l2.w.len(),
            mlp.l2.b.len(),
            mlp.l3.w.len(),
            mlp.l3.b.len(),
        ];
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Applies accumulated gradients (scaled by `1/batch`) to the model.
    pub fn step(&mut self, mlp: &mut Mlp, g: &MlpGrad, batch: f32) {
        self.t += 1;
        let params: [(&mut [f32], &[f32]); 6] = [
            (&mut mlp.l1.w, &g.gw1),
            (&mut mlp.l1.b, &g.gb1),
            (&mut mlp.l2.w, &g.gw2),
            (&mut mlp.l2.b, &g.gb2),
            (&mut mlp.l3.w, &g.gw3),
            (&mut mlp.l3.b, &g.gb3),
        ];
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (k, (p, grad)) in params.into_iter().enumerate() {
            let m = &mut self.m[k];
            let v = &mut self.v[k];
            for i in 0..p.len() {
                let gi = grad[i] / batch;
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Convenience: deterministic RNG for network initialization.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(0);
        let mlp = Mlp::new(4, 8, 2, &mut rng);
        let (out, _) = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = seeded_rng(1);
        let mut mlp = Mlp::new(3, 5, 1, &mut rng);
        let x = [0.3, -0.2, 0.7];
        // Loss = 0.5 * out^2; dL/dout = out.
        let (out, trace) = mlp.forward(&x);
        let mut g = mlp.zero_grad();
        mlp.backward(&trace, &[out[0]], &mut g);
        // Finite difference on one weight.
        let eps = 1e-3;
        let orig = mlp.l1.w[2];
        mlp.l1.w[2] = orig + eps;
        let lp = 0.5 * mlp.infer(&x)[0].powi(2);
        mlp.l1.w[2] = orig - eps;
        let lm = 0.5 * mlp.infer(&x)[0].powi(2);
        mlp.l1.w[2] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - g.gw1[2]).abs() < 1e-3,
            "finite diff {fd} vs backprop {}",
            g.gw1[2]
        );
    }

    #[test]
    fn adam_reduces_regression_loss() {
        let mut rng = seeded_rng(2);
        let mut mlp = Mlp::new(2, 16, 1, &mut rng);
        let mut opt = Adam::new(&mlp, 1e-2);
        // Fit y = x0 + 2*x1 on a fixed dataset.
        let data: Vec<([f32; 2], f32)> = (0..32)
            .map(|i| {
                let x0 = (i % 8) as f32 / 8.0;
                let x1 = (i / 8) as f32 / 4.0;
                ([x0, x1], x0 + 2.0 * x1)
            })
            .collect();
        let loss = |mlp: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| (mlp.infer(x)[0] - y).powi(2))
                .sum::<f32>()
                / data.len() as f32
        };
        let before = loss(&mlp);
        for _ in 0..300 {
            let mut g = mlp.zero_grad();
            for (x, y) in &data {
                let (out, t) = mlp.forward(x);
                mlp.backward(&t, &[2.0 * (out[0] - y)], &mut g);
            }
            opt.step(&mut mlp, &g, data.len() as f32);
        }
        let after = loss(&mlp);
        assert!(
            after < before * 0.05,
            "loss did not drop: {before} -> {after}"
        );
    }
}
