//! Proximal Policy Optimization for space exploration (paper §5.2).
//!
//! The paper uses PPO actors to propose layout split factors (continuous
//! actions in `(0, 1)`, Eq. 2) and loop random-walk directions, with one
//! *shared critic* judging all actors. Actor and critic dimensions are
//! fixed (`OBS_DIM`/`ACT_DIM`, padded/truncated per space) so pretrained
//! weights transfer across operators — the mechanism behind Fig. 11's
//! PPO-Pret curve.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::nn::{Adam, Mlp};

/// Fixed observation width (states are padded/truncated).
pub const OBS_DIM: usize = 32;
/// Fixed action width (spaces use a prefix).
pub const ACT_DIM: usize = 16;
const HIDDEN: usize = 64;

/// Pads or truncates a state vector to [`OBS_DIM`].
pub fn pad_obs(mut v: Vec<f32>) -> Vec<f32> {
    v.resize(OBS_DIM, 0.0);
    v
}

/// Serializable actor/critic weights (pretraining artifact).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PpoWeights {
    /// Actor network.
    pub actor: Mlp,
    /// Critic network.
    pub critic: Mlp,
}

/// Full serializable critic state: network weights *and* optimizer
/// moments, so a checkpointed tuning run resumes critic training exactly
/// where it stopped (restarting Adam's moments would change every
/// subsequent update).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CriticState {
    /// Value network.
    pub net: Mlp,
    /// Optimizer state (step count and moment estimates).
    pub opt: Adam,
}

/// The shared critic: one value network serving every actor of a tuning
/// session (paper §5.2.2: "a global shared critic network for all
/// actors").
#[derive(Debug)]
pub struct SharedCritic {
    net: Mlp,
    opt: Adam,
}

impl SharedCritic {
    /// Fresh critic.
    pub fn new(seed: u64) -> Rc<RefCell<SharedCritic>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(OBS_DIM, HIDDEN, 1, &mut rng);
        let opt = Adam::new(&net, 3e-3);
        Rc::new(RefCell::new(SharedCritic { net, opt }))
    }

    /// From pretrained weights.
    pub fn from_weights(w: &PpoWeights) -> Rc<RefCell<SharedCritic>> {
        let net = w.critic.clone();
        let opt = Adam::new(&net, 3e-3);
        Rc::new(RefCell::new(SharedCritic { net, opt }))
    }

    /// Snapshot of the full training state (for checkpoints).
    pub fn state(&self) -> CriticState {
        CriticState {
            net: self.net.clone(),
            opt: self.opt.clone(),
        }
    }

    /// Rebuilds a critic mid-training from a checkpointed state.
    pub fn from_state(s: &CriticState) -> Rc<RefCell<SharedCritic>> {
        Rc::new(RefCell::new(SharedCritic {
            net: s.net.clone(),
            opt: s.opt.clone(),
        }))
    }

    fn value(&self, obs: &[f32]) -> f32 {
        self.net.infer(obs)[0]
    }

    fn train(&mut self, batch: &[(Vec<f32>, f32)]) {
        for _ in 0..4 {
            let mut g = self.net.zero_grad();
            for (obs, ret) in batch {
                let (out, t) = self.net.forward(obs);
                self.net.backward(&t, &[2.0 * (out[0] - ret)], &mut g);
            }
            self.opt.step(&mut self.net, &g, batch.len() as f32);
        }
    }
}

/// One stored transition (bandit-style one-step episode).
#[derive(Clone, Debug)]
struct Transition {
    obs: Vec<f32>,
    act: Vec<f32>,
    logp: f32,
    reward: f32,
}

/// Summary of one PPO update, surfaced for telemetry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PpoUpdateStats {
    /// Transitions consumed by the update.
    pub transitions: usize,
    /// Mean reward over those transitions.
    pub reward_mean: f32,
    /// Mean clipped surrogate loss after the update epochs (the quantity
    /// the policy gradient descends).
    pub policy_loss: f32,
    /// Critic mean squared error before the critic update.
    pub value_loss: f32,
    /// Gaussian policy entropy in nats (fixed exploration std).
    pub entropy: f32,
}

/// A PPO actor with Gaussian exploration and clipped policy updates.
pub struct PpoAgent {
    actor: Mlp,
    opt: Adam,
    critic: Rc<RefCell<SharedCritic>>,
    std: f32,
    buffer: Vec<Transition>,
    rng: StdRng,
    /// Update after this many stored transitions.
    pub batch_size: usize,
    /// Stats of updates performed since the last [`PpoAgent::take_update_log`].
    update_log: Vec<PpoUpdateStats>,
}

impl PpoAgent {
    /// Fresh agent sharing `critic`.
    pub fn new(critic: Rc<RefCell<SharedCritic>>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(OBS_DIM, HIDDEN, ACT_DIM, &mut rng);
        let opt = Adam::new(&actor, 1e-3);
        Self {
            actor,
            opt,
            critic,
            std: 0.15,
            buffer: Vec::new(),
            rng,
            batch_size: 16,
            update_log: Vec::new(),
        }
    }

    /// Agent initialized from pretrained weights.
    pub fn from_weights(w: &PpoWeights, critic: Rc<RefCell<SharedCritic>>, seed: u64) -> Self {
        let mut agent = Self::new(critic, seed);
        agent.actor = w.actor.clone();
        agent.opt = Adam::new(&agent.actor, 1e-3);
        agent
    }

    /// Snapshots the current weights (for pretraining artifacts).
    pub fn weights(&self) -> PpoWeights {
        PpoWeights {
            actor: self.actor.clone(),
            critic: self.critic.borrow().net.clone(),
        }
    }

    fn mean(&self, obs: &[f32]) -> Vec<f32> {
        self.actor
            .infer(obs)
            .iter()
            .map(|v| 1.0 / (1.0 + (-v).exp()))
            .collect()
    }

    /// Samples actions in `(0, 1)` for a padded observation; returns the
    /// actions and their log-probability.
    pub fn act(&mut self, obs: &[f32]) -> (Vec<f32>, f32) {
        let mu = self.mean(obs);
        let mut acts = Vec::with_capacity(ACT_DIM);
        let mut logp = 0.0;
        for m in &mu {
            // Box-Muller Gaussian sample.
            let u1: f32 = self.rng.gen_range(1e-6..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            let a = (m + self.std * z).clamp(0.0, 1.0);
            logp += -((a - m) * (a - m)) / (2.0 * self.std * self.std);
            acts.push(a);
        }
        (acts, logp)
    }

    /// Greedy (mean) actions, for evaluation.
    pub fn act_greedy(&self, obs: &[f32]) -> Vec<f32> {
        self.mean(obs)
    }

    /// Stores a one-step transition.
    pub fn store(&mut self, obs: Vec<f32>, act: Vec<f32>, logp: f32, reward: f32) {
        self.buffer.push(Transition {
            obs,
            act,
            logp,
            reward,
        });
        if self.buffer.len() >= self.batch_size {
            self.update();
        }
    }

    /// Drains the accumulated per-update statistics (telemetry hook).
    /// Covers updates triggered implicitly by [`PpoAgent::store`] as well
    /// as explicit [`PpoAgent::update`] calls.
    pub fn take_update_log(&mut self) -> Vec<PpoUpdateStats> {
        std::mem::take(&mut self.update_log)
    }

    /// PPO-clip update over the buffered transitions.
    pub fn update(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buffer);
        let reward_mean = batch.iter().map(|t| t.reward).sum::<f32>() / batch.len() as f32;
        let value_loss = batch
            .iter()
            .map(|t| {
                let v = self.critic.borrow().value(&t.obs);
                (v - t.reward) * (v - t.reward)
            })
            .sum::<f32>()
            / batch.len() as f32;
        // Advantages from the shared critic.
        let mut advs: Vec<f32> = batch
            .iter()
            .map(|t| t.reward - self.critic.borrow().value(&t.obs))
            .collect();
        let mean = advs.iter().sum::<f32>() / advs.len() as f32;
        let var = advs.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / advs.len() as f32;
        let std = var.sqrt().max(1e-4);
        for a in &mut advs {
            *a = (*a - mean) / std;
        }

        let clip = 0.2f32;
        for _ in 0..4 {
            let mut g = self.actor.zero_grad();
            for (t, &adv) in batch.iter().zip(&advs) {
                let (raw, trace) = self.actor.forward(&t.obs);
                let mu: Vec<f32> = raw.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect();
                let logp: f32 = t
                    .act
                    .iter()
                    .zip(&mu)
                    .map(|(a, m)| -((a - m) * (a - m)) / (2.0 * self.std * self.std))
                    .sum();
                let ratio = (logp - t.logp).exp().clamp(0.0, 10.0);
                let clipped = ratio.clamp(1.0 - clip, 1.0 + clip);
                // PPO-clip objective: maximize min(r*A, clip(r)*A). The
                // gradient flows only through the unclipped branch when it
                // is the active one.
                let use_unclipped = (ratio * adv) <= (clipped * adv);
                if !use_unclipped {
                    continue;
                }
                // dL/d(logp) for L = -ratio * adv.
                let dlogp = -ratio * adv;
                // d(logp)/d(raw_k) = ((a_k - mu_k)/std^2) * sigmoid'(raw_k).
                let dout: Vec<f32> = raw
                    .iter()
                    .zip(t.act.iter().zip(&mu))
                    .map(|(r, (a, m))| {
                        let sig_d = {
                            let s = 1.0 / (1.0 + (-r).exp());
                            s * (1.0 - s)
                        };
                        dlogp * ((a - m) / (self.std * self.std)) * sig_d
                    })
                    .collect();
                self.actor.backward(&trace, &dout, &mut g);
            }
            self.opt.step(&mut self.actor, &g, batch.len() as f32);
        }
        // Post-update surrogate loss: how far the new policy moved on
        // this batch (the quantity the clipped objective descends).
        let clip = 0.2f32;
        let policy_loss = batch
            .iter()
            .zip(&advs)
            .map(|(t, &adv)| {
                let mu = self.mean(&t.obs);
                let logp: f32 = t
                    .act
                    .iter()
                    .zip(&mu)
                    .map(|(a, m)| -((a - m) * (a - m)) / (2.0 * self.std * self.std))
                    .sum();
                let ratio = (logp - t.logp).exp().clamp(0.0, 10.0);
                let clipped = ratio.clamp(1.0 - clip, 1.0 + clip);
                -(ratio * adv).min(clipped * adv)
            })
            .sum::<f32>()
            / batch.len() as f32;
        // Entropy of an isotropic Gaussian with fixed std, per batch (the
        // policy never changes its exploration width, so this is a
        // constant trace of the exploration level).
        let entropy = ACT_DIM as f32
            * 0.5
            * (2.0 * std::f32::consts::PI * std::f32::consts::E * self.std * self.std).ln();
        self.update_log.push(PpoUpdateStats {
            transitions: batch.len(),
            reward_mean,
            policy_loss,
            value_loss,
            entropy,
        });
        // Shared critic regression toward observed rewards.
        let critic_batch: Vec<(Vec<f32>, f32)> =
            batch.iter().map(|t| (t.obs.clone(), t.reward)).collect();
        self.critic.borrow_mut().train(&critic_batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_in_unit_interval() {
        let critic = SharedCritic::new(0);
        let mut agent = PpoAgent::new(critic, 1);
        let obs = pad_obs(vec![0.5; 8]);
        for _ in 0..50 {
            let (a, _) = agent.act(&obs);
            assert_eq!(a.len(), ACT_DIM);
            assert!(a.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn learns_a_bandit_target() {
        // Reward peaks when action[0] is near 0.8; PPO should shift the
        // policy mean toward it.
        let critic = SharedCritic::new(2);
        let mut agent = PpoAgent::new(critic, 3);
        agent.batch_size = 32;
        let obs = pad_obs(vec![0.3; 4]);
        let reward = |a: f32| 1.0 - (a - 0.8).abs() * 4.0;
        let before = agent.act_greedy(&obs)[0];
        for _ in 0..40 {
            for _ in 0..32 {
                let (a, logp) = agent.act(&obs);
                let r = reward(a[0]);
                agent.store(obs.clone(), a, logp, r);
            }
        }
        let after = agent.act_greedy(&obs)[0];
        assert!(
            (after - 0.8).abs() < (before - 0.8).abs() + 0.05,
            "policy did not move toward optimum: {before} -> {after}"
        );
        assert!((after - 0.8).abs() < 0.25, "after = {after}");
    }

    #[test]
    fn update_stats_are_logged() {
        let critic = SharedCritic::new(10);
        let mut agent = PpoAgent::new(critic, 11);
        agent.batch_size = 8;
        let obs = pad_obs(vec![0.2; 4]);
        for _ in 0..8 {
            let (a, logp) = agent.act(&obs);
            agent.store(obs.clone(), a, logp, 1.0);
        }
        let log = agent.take_update_log();
        assert_eq!(log.len(), 1, "store() at batch_size triggers one update");
        assert_eq!(log[0].transitions, 8);
        assert!((log[0].reward_mean - 1.0).abs() < 1e-6);
        assert!(log[0].value_loss >= 0.0);
        assert!(log[0].entropy.is_finite());
        assert!(agent.take_update_log().is_empty(), "log drains");
    }

    #[test]
    fn weights_roundtrip_through_serde() {
        let critic = SharedCritic::new(4);
        let agent = PpoAgent::new(critic, 5);
        let w = agent.weights();
        let json = serde_json::to_string(&w).unwrap();
        let back: PpoWeights = serde_json::from_str(&json).unwrap();
        let critic2 = SharedCritic::from_weights(&back);
        let agent2 = PpoAgent::from_weights(&back, critic2, 6);
        let obs = pad_obs(vec![0.1; 4]);
        assert_eq!(agent.act_greedy(&obs), agent2.act_greedy(&obs));
    }

    #[test]
    fn shared_critic_is_shared() {
        let critic = SharedCritic::new(7);
        let a1 = PpoAgent::new(critic.clone(), 8);
        let _a2 = PpoAgent::new(critic.clone(), 9);
        let obs = pad_obs(vec![0.0; 4]);
        let v1 = critic.borrow().value(&obs);
        // Training through one agent's buffer changes the value both see.
        let mut a1 = a1;
        a1.batch_size = 4;
        for _ in 0..4 {
            let (a, logp) = a1.act(&obs);
            a1.store(obs.clone(), a, logp, 5.0);
        }
        let v2 = critic.borrow().value(&obs);
        assert_ne!(v1, v2);
    }
}
