//! Winner records for the durable tuning store (PR 7): the finished
//! result of one tuning *task*, keyed by a task fingerprint covering
//! everything that determines the outcome.
//!
//! Like checkpoints, a winner stores **decisions, not compiler
//! objects**: the committed joint-stage layout points and the flat
//! per-operator schedule snapshots. A warm-started run replays them
//! against a fresh graph — templates are rebuilt and points re-decoded
//! deterministically — so the stored bytes stay small, version-stable,
//! and provably equivalent to re-running the search: the replayed
//! plan/schedule measures bit-identically to the stored `latency_s`.
//!
//! The task fingerprint hashes the graph signature, the machine profile
//! fingerprint, and every `TuneConfig` field that can change the tuning
//! *result*. Deliberately excluded: `jobs` (bit-identical by the
//! parallel-measurement contract), telemetry/journal sinks and
//! checkpoint plumbing (observability only), and the store itself.
//! A run with pretrained PPO weights has no fingerprint at all — the
//! weights are not faithfully hashable, and a wrong warm-start is worse
//! than none.

use alt_error::AltError;
use alt_loopir::hash::Fnv1a;
use alt_tensor::Graph;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{graph_signature, CommitSnap, SchedSnap};
use crate::tuner::{FixedLayout, LayoutSearch, TuneConfig};

/// Current winner record format version.
pub const WINNER_VERSION: u64 = 1;

/// The stored outcome of one completed tuning task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WinnerRecord {
    /// Format version (see [`WINNER_VERSION`]).
    pub version: u64,
    /// Signature of the tuned graph (replay validates it).
    pub graph_sig: String,
    /// The task fingerprint this record was stored under (self-describing
    /// for `altc store export`; replay validates it).
    pub task_fp: u64,
    /// The run's RNG seed (provenance).
    pub seed: u64,
    /// Budget the winning run consumed (provenance).
    pub measurements: u64,
    /// Committed joint-stage layout decisions, in commit order.
    pub committed: Vec<CommitSnap>,
    /// Flat schedule snapshot per operator, indexed by operator id.
    pub sched: Vec<SchedSnap>,
    /// The winner's end-to-end latency as measured by the winning run;
    /// replay cross-checks its own measurement against this bit pattern.
    pub latency_s: f64,
}

/// Fingerprint of one tuning task: graph × machine × every result-
/// relevant configuration field. `None` when the configuration cannot be
/// fingerprinted faithfully (pretrained PPO weights), which disables
/// both warm-start lookup and winner publication for the run.
pub fn task_fingerprint(graph: &Graph, profile_fp: u64, cfg: &TuneConfig) -> Option<u64> {
    if cfg.pretrained.is_some() {
        return None;
    }
    let mut h = Fnv1a::new();
    h.tag(0x57); // 'W'
    h.str(&graph_signature(graph));
    h.u64(profile_fp);
    h.u64(cfg.joint_budget);
    h.u64(cfg.loop_budget);
    h.u64(cfg.batch as u64);
    h.u64(cfg.topk as u64);
    h.u64(cfg.rounds_per_layout as u64);
    h.u64(cfg.levels as u64);
    h.u64(cfg.loop_levels as u64);
    h.tag(match cfg.mode {
        alt_layout::PropagationMode::Full => 0,
        alt_layout::PropagationMode::WithoutFusionAlign => 1,
        alt_layout::PropagationMode::None => 2,
    });
    h.tag(cfg.free_input_layouts as u8);
    h.u64(cfg.seed);
    h.tag(match cfg.layout_search {
        LayoutSearch::Ppo => 0,
        LayoutSearch::Random => 1,
    });
    match cfg.fixed_layout {
        None => h.tag(0),
        Some(FixedLayout::Identity) => h.tag(1),
        Some(FixedLayout::ChannelsLast) => h.tag(2),
        Some(FixedLayout::ChannelTiled(ct)) => {
            h.tag(3);
            h.i64(ct);
        }
    }
    h.tag(cfg.seed_candidates as u8);
    match &cfg.faults {
        None => h.tag(0),
        Some(fc) => {
            h.tag(1);
            h.f64(fc.compile_failure_rate);
            h.f64(fc.timeout_rate);
            h.f64(fc.noise_rate);
            h.f64(fc.noise_min);
            h.f64(fc.noise_max);
        }
    }
    h.u64(cfg.max_retries);
    h.u64(cfg.quarantine_threshold);
    h.tag(cfg.verify as u8);
    h.tag(cfg.advanced_layouts as u8);
    Some(h.finish())
}

/// Encodes a winner record for the store (JSON; field order is fixed by
/// the struct, so identical runs produce identical bytes).
pub fn encode_winner(w: &WinnerRecord) -> Result<Vec<u8>, AltError> {
    serde_json::to_string(w)
        .map(String::into_bytes)
        .map_err(|e| AltError::Store {
            detail: format!("serializing winner record: {}", e.0),
        })
}

/// Decodes a stored winner payload, validating version, task fingerprint
/// and graph signature against the looked-up task. Any mismatch returns
/// `None` — a foreign or incompatible record reads as a store miss, so a
/// warm start can never replay the wrong winner.
pub fn decode_winner(bytes: &[u8], task_fp: u64, graph_sig: &str) -> Option<WinnerRecord> {
    let text = std::str::from_utf8(bytes).ok()?;
    let w: WinnerRecord = serde_json::from_str(text).ok()?;
    if w.version != WINNER_VERSION || w.task_fp != task_fp || w.graph_sig != graph_sig {
        return None;
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        g
    }

    fn sample(g: &Graph, task_fp: u64) -> WinnerRecord {
        WinnerRecord {
            version: WINNER_VERSION,
            graph_sig: graph_signature(g),
            task_fp,
            seed: 7,
            measurements: 40,
            committed: vec![CommitSnap {
                op: 2,
                point: vec![0, 1],
            }],
            sched: vec![SchedSnap {
                spatial: vec![vec![4]],
                reduce: vec![],
                vectorize: true,
                unroll: false,
                parallel: false,
                fuse: false,
            }],
            latency_s: 1.25e-3,
        }
    }

    #[test]
    fn codec_roundtrips_and_rejects_mismatches() {
        let g = graph();
        let cfg = TuneConfig::default();
        let fp = task_fingerprint(&g, 11, &cfg).unwrap();
        let w = sample(&g, fp);
        let bytes = encode_winner(&w).unwrap();
        let back = decode_winner(&bytes, fp, &w.graph_sig).unwrap();
        assert_eq!(back.committed, w.committed);
        assert_eq!(back.sched, w.sched);
        assert_eq!(back.latency_s.to_bits(), w.latency_s.to_bits());
        // Wrong task, wrong graph, torn payload: all read as misses.
        assert!(decode_winner(&bytes, fp ^ 1, &w.graph_sig).is_none());
        assert!(decode_winner(&bytes, fp, "0000:0ops").is_none());
        assert!(decode_winner(&bytes[..bytes.len() / 2], fp, &w.graph_sig).is_none());
        let mut vbad = w.clone();
        vbad.version = WINNER_VERSION + 1;
        let bytes = encode_winner(&vbad).unwrap();
        assert!(decode_winner(&bytes, fp, &w.graph_sig).is_none());
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = graph();
        let w = sample(&g, 5);
        assert_eq!(encode_winner(&w).unwrap(), encode_winner(&w).unwrap());
    }

    #[test]
    fn fingerprint_covers_result_relevant_config() {
        let g = graph();
        let base = TuneConfig::default();
        let fp = task_fingerprint(&g, 11, &base).unwrap();
        // Same config, same fingerprint.
        assert_eq!(task_fingerprint(&g, 11, &base.clone()), Some(fp));
        // Observability plumbing does not move it...
        let mut t = base.clone();
        t.jobs = 8;
        t.checkpoint_every = 100;
        t.halt_after = Some(10);
        assert_eq!(task_fingerprint(&g, 11, &t), Some(fp));
        // ...while anything result-relevant does.
        let mut t = base.clone();
        t.seed = 1;
        assert_ne!(task_fingerprint(&g, 11, &t), Some(fp));
        let mut t = base.clone();
        t.loop_budget += 1;
        assert_ne!(task_fingerprint(&g, 11, &t), Some(fp));
        let mut t = base.clone();
        t.verify = false;
        assert_ne!(task_fingerprint(&g, 11, &t), Some(fp));
        let mut t = base.clone();
        t.advanced_layouts = true;
        assert_ne!(task_fingerprint(&g, 11, &t), Some(fp));
        let mut t = base.clone();
        t.faults = Some(crate::fault::FaultConfig::uniform(0.1));
        assert_ne!(task_fingerprint(&g, 11, &t), Some(fp));
        let mut t = base.clone();
        t.fixed_layout = Some(FixedLayout::ChannelTiled(8));
        assert_ne!(task_fingerprint(&g, 11, &t), Some(fp));
        // A different machine moves it too.
        assert_ne!(task_fingerprint(&g, 12, &base), Some(fp));
        // Pretrained weights disable fingerprinting entirely.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut t = base.clone();
        t.pretrained = Some(crate::ppo::PpoWeights {
            actor: crate::nn::Mlp::new(4, 4, 4, &mut rng),
            critic: crate::nn::Mlp::new(4, 4, 1, &mut rng),
        });
        assert_eq!(task_fingerprint(&g, 11, &t), None);
    }
}
