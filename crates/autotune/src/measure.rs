//! "On-device" measurement against the hardware model, with the paper's
//! budget accounting (one measurement = one budget unit).
//!
//! `measure_program` is the single point where budget is consumed, so it
//! is also where telemetry is emitted: with an enabled sink, every budget
//! unit produces exactly one [`MeasurementRecord`] carrying the simulator
//! counters of the measured program, and a `sim`-scoped
//! [`alt_telemetry::CounterRegistry`] accumulates cache/prefetch totals
//! across the whole run.

use std::collections::{HashMap, HashSet};

use alt_layout::LayoutPlan;
use alt_loopir::{lower, lower_filtered, GraphSchedule, Program};
use alt_sim::{MachineProfile, Simulator};
use alt_telemetry::{CounterRegistry, MeasurementRecord, Record, SimCounters, Stage, Telemetry};
use alt_tensor::{Graph, OpId};

/// Labels attached to the next measurement (who is measuring and why).
/// The tuner updates this as it moves between ops, stages and candidates.
#[derive(Clone, Debug)]
pub struct MeasureCtx {
    /// Operator tag, e.g. `conv2d#3`.
    pub op: String,
    /// Tuning stage spending the budget.
    pub stage: Stage,
    /// Tuning round within the stage.
    pub round: u64,
    /// Candidate point summary.
    pub candidate: String,
    /// Cost-model prediction for the candidate, when ranked.
    pub predicted_cost: Option<f64>,
}

impl Default for MeasureCtx {
    fn default() -> Self {
        Self {
            op: "graph".to_string(),
            stage: Stage::Joint,
            round: 0,
            candidate: String::new(),
            predicted_cost: None,
        }
    }
}

/// Converts simulator counters into the telemetry schema.
fn convert_counters(c: &alt_sim::Counters) -> SimCounters {
    SimCounters {
        instructions: c.instructions,
        flops: c.flops,
        l1_loads: c.l1_loads,
        l1_stores: c.l1_stores,
        l1_misses: c.l1_misses,
        l2_misses: c.l2_misses,
        prefetch_issued: c.prefetch_issued,
        prefetch_useful: c.prefetch_useful,
        simd_utilization: c.simd_utilization(),
    }
}

/// Measurement driver: lowers programs and queries the performance model,
/// counting every measurement against the search budget.
pub struct Measurer<'g> {
    graph: &'g Graph,
    sim: Simulator,
    telemetry: Telemetry,
    registry: CounterRegistry,
    best_by_op: HashMap<String, f64>,
    /// Budget units consumed so far.
    pub used: u64,
    /// History of (budget used, latency measured) pairs, for efficiency
    /// curves like Fig. 11.
    pub history: Vec<(u64, f64)>,
    /// Labels for the next measurement's trace record.
    pub ctx: MeasureCtx,
}

impl<'g> Measurer<'g> {
    /// Creates a measurer for a graph on a machine (telemetry disabled).
    pub fn new(graph: &'g Graph, profile: MachineProfile) -> Self {
        Self::with_telemetry(graph, profile, Telemetry::noop())
    }

    /// Creates a measurer that emits one trace record per budget unit.
    pub fn with_telemetry(graph: &'g Graph, profile: MachineProfile, telemetry: Telemetry) -> Self {
        Self {
            graph,
            sim: Simulator::new(profile),
            telemetry,
            registry: CounterRegistry::new("sim"),
            best_by_op: HashMap::new(),
            used: 0,
            history: Vec::new(),
            ctx: MeasureCtx::default(),
        }
    }

    /// The telemetry handle measurements are emitted through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The underlying simulator (for profiling runs that should not count
    /// against the budget).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Lowers only `op`'s fusion group (plus its conversion groups).
    pub fn lower_op(&self, plan: &LayoutPlan, sched: &GraphSchedule, op: OpId) -> Program {
        let mut roots = HashSet::new();
        roots.insert(op);
        lower_filtered(self.graph, plan, sched, Some(&roots))
    }

    /// Measures one operator's group; consumes one budget unit.
    pub fn measure_op(&mut self, plan: &LayoutPlan, sched: &GraphSchedule, op: OpId) -> f64 {
        let program = self.lower_op(plan, sched, op);
        self.measure_program(&program)
    }

    /// Measures the groups rooted at a set of operators; one budget unit.
    pub fn measure_ops(
        &mut self,
        plan: &LayoutPlan,
        sched: &GraphSchedule,
        roots: &HashSet<OpId>,
    ) -> f64 {
        let program = lower_filtered(self.graph, plan, sched, Some(roots));
        self.measure_program(&program)
    }

    /// Measures an already-lowered program; consumes one budget unit and
    /// (with an enabled sink) emits exactly one measurement record.
    pub fn measure_program(&mut self, program: &Program) -> f64 {
        self.used += 1;
        let lat = if self.telemetry.is_enabled() {
            let c = self.sim.profile_counters(program);
            let lat = c.latency_s;
            let best = self
                .best_by_op
                .entry(self.ctx.op.clone())
                .or_insert(f64::INFINITY);
            if lat < *best {
                *best = lat;
            }
            let best = *best;
            self.registry.add("l1.accesses", c.l1_loads + c.l1_stores);
            self.registry.add("l1.misses", c.l1_misses);
            self.registry.add("l2.misses", c.l2_misses);
            self.registry.add("prefetch.issued", c.prefetch_issued);
            self.registry.add("prefetch.useful", c.prefetch_useful);
            self.registry
                .observe("simd.utilization", c.simd_utilization());
            self.registry.observe("latency_us", lat * 1e6);
            self.telemetry.emit(Record::Measurement(MeasurementRecord {
                seq: self.used,
                op: self.ctx.op.clone(),
                stage: self.ctx.stage,
                round: self.ctx.round,
                candidate: self.ctx.candidate.clone(),
                predicted_cost: self.ctx.predicted_cost,
                latency_s: lat,
                best_so_far_s: best,
                counters: convert_counters(&c),
            }));
            lat
        } else {
            self.sim.measure(program)
        };
        self.history.push((self.used, lat));
        lat
    }

    /// Flushes the run-level simulator counter registry to the sink.
    /// Call once at the end of a tuning run.
    pub fn flush_counters(&self) {
        self.registry.flush_to(&self.telemetry);
    }

    /// Measures the whole graph (does not count against the budget; used
    /// for final reporting).
    pub fn measure_graph_free(&self, plan: &LayoutPlan, sched: &GraphSchedule) -> f64 {
        let program = lower(self.graph, plan, sched);
        self.sim.measure(&program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_layout::PropagationMode;
    use alt_sim::intel_cpu;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        g
    }

    #[test]
    fn budget_accounting_counts_measurements() {
        let g = graph();
        let mut m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        assert_eq!(m.used, 0);
        let a = m.measure_op(&plan, &sched, op);
        let b = m.measure_op(&plan, &sched, op);
        assert_eq!(m.used, 2);
        assert_eq!(a, b, "same program must measure identically");
        assert_eq!(m.history.len(), 2);
        // Whole-graph measurement is free (reporting only).
        let full = m.measure_graph_free(&plan, &sched);
        assert_eq!(m.used, 2);
        assert!(full >= a, "graph includes the conv group and more");
    }

    #[test]
    fn telemetry_emits_one_record_per_budget_unit() {
        let g = graph();
        let (t, sink) = Telemetry::memory();
        let mut m = Measurer::with_telemetry(&g, intel_cpu(), t);
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        m.ctx.op = "conv2d#0".to_string();
        for _ in 0..3 {
            m.measure_op(&plan, &sched, op);
        }
        m.flush_counters();
        let records = sink.records();
        let measurements: Vec<&MeasurementRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::Measurement(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(measurements.len(), 3, "one record per budget unit");
        for (i, rec) in measurements.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.op, "conv2d#0");
            assert!(rec.counters.flops > 0.0);
            assert!(rec.best_so_far_s <= rec.latency_s);
        }
        // The run-level registry flushed cache/prefetch totals.
        let counters: Vec<&str> = records
            .iter()
            .filter_map(|r| match r {
                Record::Counter(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert!(counters.contains(&"l1.accesses"), "{counters:?}");
        assert!(counters.contains(&"prefetch.useful"), "{counters:?}");
        assert!(counters.contains(&"simd.utilization.mean"), "{counters:?}");
    }

    #[test]
    fn disabled_telemetry_measures_identically() {
        let g = graph();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let mut plain = Measurer::new(&g, intel_cpu());
        let (t, _sink) = Telemetry::memory();
        let mut traced = Measurer::with_telemetry(&g, intel_cpu(), t);
        assert_eq!(
            plain.measure_op(&plan, &sched, op),
            traced.measure_op(&plan, &sched, op),
            "tracing must not perturb the measurement"
        );
    }

    #[test]
    fn filtered_lowering_contains_only_requested_group() {
        let g = graph();
        let m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let program = m.lower_op(&plan, &sched, op);
        assert_eq!(program.groups.len(), 1);
        assert_eq!(program.groups[0].root, op);
    }
}
