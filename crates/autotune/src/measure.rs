//! "On-device" measurement against the hardware model, with the paper's
//! budget accounting (one measurement = one budget unit).
//!
//! `measure_program` is the single point where budget is consumed, so it
//! is also where telemetry is emitted: with an enabled sink, every budget
//! unit produces exactly one [`MeasurementRecord`] carrying the simulator
//! counters of the measured program, and a `sim`-scoped
//! [`alt_telemetry::CounterRegistry`] accumulates cache/prefetch totals
//! across the whole run.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use alt_error::AltError;
use alt_layout::LayoutPlan;
use alt_loopir::{lower, try_lower_filtered, GraphSchedule, Program};
use alt_sim::{MachineProfile, SimCache, Simulator};
use alt_telemetry::{
    CounterRegistry, MeasurementFailureRecord, MeasurementRecord, Record, SimCounters, Stage,
    Telemetry, Timing,
};
use alt_tensor::{Graph, OpId};

use crate::fault::{Fault, FaultInjector};
use crate::progress::Progress;

/// Labels attached to the next measurement (who is measuring and why).
/// The tuner updates this as it moves between ops, stages and candidates.
#[derive(Clone, Debug)]
pub struct MeasureCtx {
    /// Operator tag, e.g. `conv2d#3`.
    pub op: String,
    /// Tuning stage spending the budget.
    pub stage: Stage,
    /// Tuning round within the stage.
    pub round: u64,
    /// Candidate point summary.
    pub candidate: String,
    /// Cost-model prediction for the candidate, when ranked.
    pub predicted_cost: Option<f64>,
    /// Which attempt at this candidate this is (1 = first try).
    pub attempt: u64,
    /// Virtual backoff waited before this attempt, in microseconds
    /// (recorded, never slept — the simulator has no wall clock).
    pub backoff_us: u64,
}

impl Default for MeasureCtx {
    fn default() -> Self {
        Self {
            op: "graph".to_string(),
            stage: Stage::Joint,
            round: 0,
            candidate: String::new(),
            predicted_cost: None,
            attempt: 1,
            backoff_us: 0,
        }
    }
}

/// What the memo cache saw for the most recent successful measurement:
/// the journal's fingerprint key material.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Canonical fingerprint of the measured lowered program.
    pub program_fp: u64,
    /// Memo-cache key (profile fingerprint + program fingerprint).
    pub cache_key: u64,
    /// Whether the measurement repeated an earlier budgeted one.
    pub hit: bool,
}

/// Converts simulator counters into the telemetry schema.
fn convert_counters(c: &alt_sim::Counters) -> SimCounters {
    SimCounters {
        instructions: c.instructions,
        flops: c.flops,
        l1_loads: c.l1_loads,
        l1_stores: c.l1_stores,
        l1_misses: c.l1_misses,
        l2_misses: c.l2_misses,
        prefetch_issued: c.prefetch_issued,
        prefetch_useful: c.prefetch_useful,
        simd_utilization: c.simd_utilization(),
    }
}

/// Measurement driver: lowers programs and queries the performance model,
/// counting every measurement against the search budget.
pub struct Measurer<'g> {
    graph: &'g Graph,
    sim: Simulator,
    /// Memoized simulations keyed by canonical program fingerprint.
    /// Worker threads prewarm it; only `measure_program` reads it with
    /// statistics, so the hit/miss transcript is jobs-invariant.
    cache: Arc<SimCache>,
    telemetry: Telemetry,
    registry: CounterRegistry,
    /// Wall-clock self-profile (disabled by default). Observation-only:
    /// it has its own sink and registry, so enabling it cannot change
    /// the measurement transcript.
    timing: Timing,
    /// Live stderr heartbeat (disabled by default), ticked once per
    /// consumed budget unit.
    progress: Progress,
    injector: Option<FaultInjector>,
    best_by_op: HashMap<String, f64>,
    /// Budget units consumed so far.
    pub used: u64,
    /// History of (budget used, latency measured) pairs, for efficiency
    /// curves like Fig. 11.
    pub history: Vec<(u64, f64)>,
    /// Labels for the next measurement's trace record.
    pub ctx: MeasureCtx,
    /// Cache-probe details of the last *successful* `measure_program`
    /// call (`None` after a failure): journal emission reads this to
    /// attach fingerprints and the hit/miss verdict to candidates.
    pub last_probe: Option<ProbeInfo>,
}

impl<'g> Measurer<'g> {
    /// Creates a measurer for a graph on a machine (telemetry disabled).
    pub fn new(graph: &'g Graph, profile: MachineProfile) -> Self {
        Self::with_telemetry(graph, profile, Telemetry::noop())
    }

    /// Creates a measurer that emits one trace record per budget unit.
    pub fn with_telemetry(graph: &'g Graph, profile: MachineProfile, telemetry: Telemetry) -> Self {
        Self {
            graph,
            sim: Simulator::new(profile),
            cache: Arc::new(SimCache::new(&profile)),
            telemetry,
            registry: CounterRegistry::new("sim"),
            timing: Timing::disabled(),
            progress: Progress::disabled(),
            injector: None,
            best_by_op: HashMap::new(),
            used: 0,
            history: Vec::new(),
            ctx: MeasureCtx::default(),
            last_probe: None,
        }
    }

    /// The telemetry handle measurements are emitted through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches (or removes) a fault injector. With `None` — the default
    /// — the measurement path is byte-for-byte the reliable one.
    pub fn set_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// Attaches the wall-clock self-profile: `measure_program` opens a
    /// `simulate` phase around each cache probe. Timing writes to its
    /// own sink, so attaching it cannot change the run.
    pub fn set_timing(&mut self, timing: Timing) {
        self.timing = timing;
    }

    /// Attaches the live progress heartbeat, ticked once per consumed
    /// budget unit.
    pub fn set_progress(&mut self, progress: Progress) {
        self.progress = progress;
    }

    /// Per-op best-so-far latencies (for checkpointing).
    pub fn best_snapshot(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .best_by_op
            .iter()
            .map(|(k, &l)| (k.clone(), l))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Restores per-op best-so-far latencies from a checkpoint.
    pub fn restore_best(&mut self, entries: &[(String, f64)]) {
        self.best_by_op = entries.iter().cloned().collect();
    }

    /// The underlying simulator (for profiling runs that should not count
    /// against the budget).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The shared measurement memo cache (for worker-thread prewarming).
    pub fn sim_cache(&self) -> &SimCache {
        &self.cache
    }

    /// Attaches the durable result store as the memo cache's warm tier:
    /// stored measurements skip the simulation, fresh ones are published
    /// back. Call before the first measurement (the tuner does this at
    /// construction time) so the store statistics cover the whole run.
    pub fn attach_store(&self, store: Arc<alt_store::Store>) {
        self.cache.attach_store(store);
    }

    /// `(hits, misses)` of the measurement cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// `(hits, misses)` of the durable store so far (zeros when no store
    /// is attached).
    pub fn store_stats(&self) -> (u64, u64) {
        (self.cache.store_hits(), self.cache.store_misses())
    }

    /// Lowers only `op`'s fusion group (plus its conversion groups).
    /// Fallible variant: an invalid candidate reports instead of
    /// panicking, and costs nothing (no budget is consumed).
    pub fn try_lower_op(
        &self,
        plan: &LayoutPlan,
        sched: &GraphSchedule,
        op: OpId,
    ) -> Result<Program, AltError> {
        let mut roots = HashSet::new();
        roots.insert(op);
        try_lower_filtered(self.graph, plan, sched, Some(&roots))
    }

    /// Lowers only `op`'s fusion group (plus its conversion groups).
    pub fn lower_op(&self, plan: &LayoutPlan, sched: &GraphSchedule, op: OpId) -> Program {
        self.try_lower_op(plan, sched, op).expect("lowering failed")
    }

    /// Measures one operator's group; consumes one budget unit.
    pub fn measure_op(
        &mut self,
        plan: &LayoutPlan,
        sched: &GraphSchedule,
        op: OpId,
    ) -> Result<f64, AltError> {
        let mut roots = HashSet::new();
        roots.insert(op);
        self.measure_ops(plan, sched, &roots)
    }

    /// Measures the groups rooted at a set of operators; one budget unit.
    /// A candidate that fails to lower still consumes its unit — on real
    /// hardware the compile attempt was paid for — and is reported as a
    /// failure record rather than a panic.
    pub fn measure_ops(
        &mut self,
        plan: &LayoutPlan,
        sched: &GraphSchedule,
        roots: &HashSet<OpId>,
    ) -> Result<f64, AltError> {
        match try_lower_filtered(self.graph, plan, sched, Some(roots)) {
            Ok(program) => self.measure_program(&program),
            Err(e) => {
                self.used += 1;
                self.tick_progress();
                self.last_probe = None;
                self.record_failure(&e);
                Err(e)
            }
        }
    }

    /// Measures an already-lowered program; consumes one budget unit and
    /// (with an enabled sink) emits exactly one trace record — a
    /// measurement record on success, a failure record when the fault
    /// injector strikes or the simulator rejects the program. The fault
    /// draw happens exactly once per call, identically with telemetry on
    /// or off, so tracing never perturbs a run.
    pub fn measure_program(&mut self, program: &Program) -> Result<f64, AltError> {
        self.used += 1;
        self.tick_progress();
        self.last_probe = None;
        let mut noise = 1.0;
        if let Some(inj) = self.injector.as_mut() {
            match inj.draw() {
                Some(Fault::Noise(factor)) => noise = factor,
                Some(fault) => {
                    // Total mapping: an injector outcome that has no
                    // dedicated error (a bug, not a tuning event) degrades
                    // into a typed `AltError` instead of aborting the run.
                    let err = FaultInjector::error_for_total(fault, &self.ctx.candidate);
                    self.record_failure(&err);
                    return Err(err);
                }
                None => {}
            }
        }
        // One memoized simulation serves traced and plain runs alike:
        // `try_measure` is exactly `try_profile_counters(..).latency_s`,
        // so a cached `Counters` entry reproduces either bit-for-bit. A
        // hit still consumed this call's budget unit above and still
        // emits its one trace record below.
        // The cache probe (memo hit, store serve, or cold simulation) is
        // the unit of `simulate` wall-clock attribution; the memo cache's
        // attached registry breaks the same interval down by path.
        let probe = {
            let _simulate = self.timing.phase("simulate");
            self.cache.try_profile(&self.sim, program)
        };
        let (c, hit) = match probe {
            Ok(v) => v,
            Err(e) => {
                self.record_failure(&e);
                return Err(e);
            }
        };
        self.registry
            .add(if hit { "cache.hits" } else { "cache.misses" }, 1.0);
        let program_fp = alt_loopir::program_fingerprint(program);
        self.last_probe = Some(ProbeInfo {
            program_fp,
            cache_key: alt_sim::compose_cache_key(self.cache.profile_fp(), program_fp),
            hit,
        });
        let lat = c.latency_s * noise;
        if self.telemetry.is_enabled() {
            let best = self
                .best_by_op
                .entry(self.ctx.op.clone())
                .or_insert(f64::INFINITY);
            if lat < *best {
                *best = lat;
            }
            let best = *best;
            self.registry.add("l1.accesses", c.l1_loads + c.l1_stores);
            self.registry.add("l1.misses", c.l1_misses);
            self.registry.add("l2.misses", c.l2_misses);
            self.registry.add("prefetch.issued", c.prefetch_issued);
            self.registry.add("prefetch.useful", c.prefetch_useful);
            self.registry
                .observe("simd.utilization", c.simd_utilization());
            self.registry.observe("latency_us", lat * 1e6);
            self.telemetry.emit(Record::Measurement(MeasurementRecord {
                seq: self.used,
                op: self.ctx.op.clone(),
                stage: self.ctx.stage,
                round: self.ctx.round,
                candidate: self.ctx.candidate.clone(),
                predicted_cost: self.ctx.predicted_cost,
                latency_s: lat,
                best_so_far_s: best,
                counters: convert_counters(&c),
            }));
        }
        self.history.push((self.used, lat));
        Ok(lat)
    }

    /// One progress heartbeat per consumed budget unit (no-op unless
    /// `--progress` attached a reporter).
    fn tick_progress(&self) {
        self.progress
            .tick(self.used, self.cache_stats(), self.store_stats());
    }

    /// Emits the failure record for the budget unit just consumed.
    /// Failed measurements are absent from `history` (no latency exists)
    /// but their `seq` keeps counting: one trace record per unit, always.
    fn record_failure(&mut self, err: &AltError) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .emit(Record::MeasurementFailure(MeasurementFailureRecord {
                    seq: self.used,
                    op: self.ctx.op.clone(),
                    stage: self.ctx.stage,
                    round: self.ctx.round,
                    candidate: self.ctx.candidate.clone(),
                    kind: err.kind().to_string(),
                    error: err.to_string(),
                    attempt: self.ctx.attempt,
                    backoff_us: self.ctx.backoff_us,
                }));
        }
    }

    /// Flushes the run-level simulator counter registry to the sink.
    /// Call once at the end of a tuning run.
    pub fn flush_counters(&self) {
        if self.cache.has_store() {
            self.registry
                .add("store.hits", self.cache.store_hits() as f64);
            self.registry
                .add("store.misses", self.cache.store_misses() as f64);
        }
        self.registry.flush_to(&self.telemetry);
    }

    /// Measures the whole graph (does not count against the budget; used
    /// for final reporting).
    pub fn measure_graph_free(&self, plan: &LayoutPlan, sched: &GraphSchedule) -> f64 {
        let program = lower(self.graph, plan, sched);
        self.sim.measure(&program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_layout::PropagationMode;
    use alt_sim::intel_cpu;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        g
    }

    #[test]
    fn budget_accounting_counts_measurements() {
        let g = graph();
        let mut m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        assert_eq!(m.used, 0);
        let a = m.measure_op(&plan, &sched, op).unwrap();
        let b = m.measure_op(&plan, &sched, op).unwrap();
        assert_eq!(m.used, 2);
        assert_eq!(a, b, "same program must measure identically");
        assert_eq!(m.history.len(), 2);
        // Whole-graph measurement is free (reporting only).
        let full = m.measure_graph_free(&plan, &sched);
        assert_eq!(m.used, 2);
        assert!(full >= a, "graph includes the conv group and more");
    }

    #[test]
    fn telemetry_emits_one_record_per_budget_unit() {
        let g = graph();
        let (t, sink) = Telemetry::memory();
        let mut m = Measurer::with_telemetry(&g, intel_cpu(), t);
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        m.ctx.op = "conv2d#0".to_string();
        for _ in 0..3 {
            m.measure_op(&plan, &sched, op).unwrap();
        }
        m.flush_counters();
        let records = sink.records();
        let measurements: Vec<&MeasurementRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::Measurement(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(measurements.len(), 3, "one record per budget unit");
        for (i, rec) in measurements.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.op, "conv2d#0");
            assert!(rec.counters.flops > 0.0);
            assert!(rec.best_so_far_s <= rec.latency_s);
        }
        // The run-level registry flushed cache/prefetch totals.
        let counters: Vec<&str> = records
            .iter()
            .filter_map(|r| match r {
                Record::Counter(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert!(counters.contains(&"l1.accesses"), "{counters:?}");
        assert!(counters.contains(&"prefetch.useful"), "{counters:?}");
        assert!(counters.contains(&"simd.utilization.mean"), "{counters:?}");
    }

    #[test]
    fn repeat_measurements_are_cache_hits_with_identical_accounting() {
        let g = graph();
        let (t, sink) = Telemetry::memory();
        let mut m = Measurer::with_telemetry(&g, intel_cpu(), t);
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let a = m.measure_op(&plan, &sched, op).unwrap();
        let b = m.measure_op(&plan, &sched, op).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "cache must be bit-faithful");
        assert_eq!(m.cache_stats(), (1, 1), "second measurement is a hit");
        assert_eq!(m.used, 2, "a hit still consumes its budget unit");
        m.flush_counters();
        let records = sink.records();
        let measurements = records
            .iter()
            .filter(|r| matches!(r, Record::Measurement(_)))
            .count();
        assert_eq!(measurements, 2, "a hit still emits its trace record");
        let counter = |name: &str| {
            records
                .iter()
                .find_map(|r| match r {
                    Record::Counter(c) if c.name == name => Some(c.value),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(counter("cache.hits"), 1.0);
        assert_eq!(counter("cache.misses"), 1.0);
    }

    #[test]
    fn prewarming_changes_no_measurement_and_no_statistic() {
        let g = graph();
        let mut m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let program = m.lower_op(&plan, &sched, op);
        m.sim_cache().prewarm(m.simulator(), &program);
        assert_eq!(m.cache_stats(), (0, 0), "prewarm is stat-silent");
        // First budgeted measurement of a prewarmed program records the
        // same (miss) transcript an unwarmed run would.
        let lat = m.measure_op(&plan, &sched, op).unwrap();
        assert_eq!(m.cache_stats(), (0, 1));
        assert_eq!(lat.to_bits(), m.simulator().measure(&program).to_bits());
        let again = m.measure_op(&plan, &sched, op).unwrap();
        assert_eq!(m.cache_stats(), (1, 1));
        assert_eq!(lat.to_bits(), again.to_bits());
    }

    #[test]
    fn disabled_telemetry_measures_identically() {
        let g = graph();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let mut plain = Measurer::new(&g, intel_cpu());
        let (t, _sink) = Telemetry::memory();
        let mut traced = Measurer::with_telemetry(&g, intel_cpu(), t);
        assert_eq!(
            plain.measure_op(&plan, &sched, op).unwrap(),
            traced.measure_op(&plan, &sched, op).unwrap(),
            "tracing must not perturb the measurement"
        );
    }

    #[test]
    fn filtered_lowering_contains_only_requested_group() {
        let g = graph();
        let m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let program = m.lower_op(&plan, &sched, op);
        assert_eq!(program.groups.len(), 1);
        assert_eq!(program.groups[0].root, op);
    }

    #[test]
    fn injected_faults_consume_budget_and_emit_failure_records() {
        use crate::fault::{FaultConfig, FaultInjector};
        use crate::rng::SharedRng;
        let g = graph();
        let (t, sink) = Telemetry::memory();
        let mut m = Measurer::with_telemetry(&g, intel_cpu(), t);
        // Every measurement fails to compile.
        m.set_injector(Some(FaultInjector::new(
            FaultConfig {
                compile_failure_rate: 1.0,
                timeout_rate: 0.0,
                noise_rate: 0.0,
                noise_min: 1.5,
                noise_max: 4.0,
            },
            SharedRng::seed_from_u64(0),
        )));
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        m.ctx.op = "conv2d#0".to_string();
        m.ctx.candidate = "[1, 2]".to_string();
        for _ in 0..3 {
            let err = m.measure_op(&plan, &sched, op).unwrap_err();
            assert_eq!(err.kind(), "injected_compile");
            assert!(err.is_transient());
        }
        assert_eq!(m.used, 3, "failures still consume budget");
        assert!(m.history.is_empty(), "failures have no latency");
        let records = sink.records();
        let failures: Vec<&MeasurementFailureRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::MeasurementFailure(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(failures.len(), 3, "one failure record per unit");
        for (i, f) in failures.iter().enumerate() {
            assert_eq!(f.seq, i as u64 + 1);
            assert_eq!(f.kind, "injected_compile");
            assert_eq!(f.candidate, "[1, 2]");
        }
    }

    #[test]
    fn noise_faults_inflate_latency_identically_with_and_without_tracing() {
        use crate::fault::{FaultConfig, FaultInjector};
        use crate::rng::SharedRng;
        let g = graph();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let noisy_cfg = FaultConfig {
            compile_failure_rate: 0.0,
            timeout_rate: 0.0,
            noise_rate: 1.0,
            noise_min: 2.0,
            noise_max: 3.0,
        };
        let mut clean = Measurer::new(&g, intel_cpu());
        let true_lat = clean.measure_op(&plan, &sched, op).unwrap();
        let mut plain = Measurer::new(&g, intel_cpu());
        plain.set_injector(Some(FaultInjector::new(
            noisy_cfg.clone(),
            SharedRng::seed_from_u64(11),
        )));
        let (t, _sink) = Telemetry::memory();
        let mut traced = Measurer::with_telemetry(&g, intel_cpu(), t);
        traced.set_injector(Some(FaultInjector::new(
            noisy_cfg,
            SharedRng::seed_from_u64(11),
        )));
        let a = plain.measure_op(&plan, &sched, op).unwrap();
        let b = traced.measure_op(&plan, &sched, op).unwrap();
        assert_eq!(a, b, "same seed, same noise, tracing on or off");
        assert!(
            a > true_lat * 1.5,
            "outlier must inflate: {a} vs {true_lat}"
        );
    }
}
