//! "On-device" measurement against the hardware model, with the paper's
//! budget accounting (one measurement = one budget unit).

use std::collections::HashSet;

use alt_layout::LayoutPlan;
use alt_loopir::{lower, lower_filtered, GraphSchedule, Program};
use alt_sim::{MachineProfile, Simulator};
use alt_tensor::{Graph, OpId};

/// Measurement driver: lowers programs and queries the performance model,
/// counting every measurement against the search budget.
pub struct Measurer<'g> {
    graph: &'g Graph,
    sim: Simulator,
    /// Budget units consumed so far.
    pub used: u64,
    /// History of (budget used, latency measured) pairs, for efficiency
    /// curves like Fig. 11.
    pub history: Vec<(u64, f64)>,
}

impl<'g> Measurer<'g> {
    /// Creates a measurer for a graph on a machine.
    pub fn new(graph: &'g Graph, profile: MachineProfile) -> Self {
        Self {
            graph,
            sim: Simulator::new(profile),
            used: 0,
            history: Vec::new(),
        }
    }

    /// The underlying simulator (for profiling runs that should not count
    /// against the budget).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Lowers only `op`'s fusion group (plus its conversion groups).
    pub fn lower_op(&self, plan: &LayoutPlan, sched: &GraphSchedule, op: OpId) -> Program {
        let mut roots = HashSet::new();
        roots.insert(op);
        lower_filtered(self.graph, plan, sched, Some(&roots))
    }

    /// Measures one operator's group; consumes one budget unit.
    pub fn measure_op(&mut self, plan: &LayoutPlan, sched: &GraphSchedule, op: OpId) -> f64 {
        let program = self.lower_op(plan, sched, op);
        self.measure_program(&program)
    }

    /// Measures the groups rooted at a set of operators; one budget unit.
    pub fn measure_ops(
        &mut self,
        plan: &LayoutPlan,
        sched: &GraphSchedule,
        roots: &HashSet<OpId>,
    ) -> f64 {
        let program = lower_filtered(self.graph, plan, sched, Some(roots));
        self.measure_program(&program)
    }

    /// Measures an already-lowered program; consumes one budget unit.
    pub fn measure_program(&mut self, program: &Program) -> f64 {
        let lat = self.sim.measure(program);
        self.used += 1;
        self.history.push((self.used, lat));
        lat
    }

    /// Measures the whole graph (does not count against the budget; used
    /// for final reporting).
    pub fn measure_graph_free(&self, plan: &LayoutPlan, sched: &GraphSchedule) -> f64 {
        let program = lower(self.graph, plan, sched);
        self.sim.measure(&program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_layout::PropagationMode;
    use alt_sim::intel_cpu;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        g
    }

    #[test]
    fn budget_accounting_counts_measurements() {
        let g = graph();
        let mut m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        assert_eq!(m.used, 0);
        let a = m.measure_op(&plan, &sched, op);
        let b = m.measure_op(&plan, &sched, op);
        assert_eq!(m.used, 2);
        assert_eq!(a, b, "same program must measure identically");
        assert_eq!(m.history.len(), 2);
        // Whole-graph measurement is free (reporting only).
        let full = m.measure_graph_free(&plan, &sched);
        assert_eq!(m.used, 2);
        assert!(full >= a, "graph includes the conv group and more");
    }

    #[test]
    fn filtered_lowering_contains_only_requested_group() {
        let g = graph();
        let m = Measurer::new(&g, intel_cpu());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let op = g.complex_ops()[0];
        let program = m.lower_op(&plan, &sched, op);
        assert_eq!(program.groups.len(), 1);
        assert_eq!(program.groups[0].root, op);
    }
}
