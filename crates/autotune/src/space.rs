//! Tuning spaces (paper §5.1).
//!
//! A [`Space`] is a list of integer-valued knobs; a point is one choice
//! per knob. Layout spaces are pruned by the paper's tiling templates:
//! only complex operators get a layout space, and each template exposes a
//! handful of split factors (six for C2D, three for GMM). Loop spaces
//! expose one tile factor per physical output dimension, one per
//! reduction axis, and the vectorize/unroll/parallel annotations.

use alt_layout::{presets, Layout, LayoutPlan, LayoutPrim};
use alt_loopir::{AxisTiling, OpSchedule};
use alt_tensor::{ComplexKind, Graph, OpId, OpTag, Shape, TensorId};
use rand::Rng;

/// Greatest common divisor.
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.max(1), b.max(1));
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// All positive divisors of `n`, ascending.
pub fn divisors(n: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut k = 1;
    while k * k <= n {
        if n % k == 0 {
            out.push(k);
            if k != n / k {
                out.push(n / k);
            }
        }
        k += 1;
    }
    out.sort_unstable();
    out
}

/// One tunable knob: a named list of integer options.
#[derive(Clone, Debug)]
pub struct Knob {
    /// Display name (for logs).
    pub name: String,
    /// The options; a point stores an index into this list.
    pub options: Vec<i64>,
}

impl Knob {
    /// A divisor knob for a dimension of size `n`.
    pub fn divisor(name: impl Into<String>, n: i64) -> Knob {
        Knob {
            name: name.into(),
            options: divisors(n),
        }
    }

    /// A boolean knob.
    pub fn boolean(name: impl Into<String>) -> Knob {
        Knob {
            name: name.into(),
            options: vec![0, 1],
        }
    }
}

/// A tuning space: the cartesian product of its knobs.
#[derive(Clone, Debug, Default)]
pub struct Space {
    /// The knobs.
    pub knobs: Vec<Knob>,
}

/// One point in a [`Space`]: an option index per knob.
pub type Point = Vec<usize>;

impl Space {
    /// Number of points in the space.
    pub fn size(&self) -> f64 {
        self.knobs.iter().map(|k| k.options.len() as f64).product()
    }

    /// Uniform random point.
    pub fn random_point(&self, rng: &mut impl Rng) -> Point {
        self.knobs
            .iter()
            .map(|k| rng.gen_range(0..k.options.len()))
            .collect()
    }

    /// A neighbour of `p`: one to two knobs stepped or re-rolled
    /// (random-walk move).
    pub fn neighbor(&self, p: &Point, rng: &mut impl Rng) -> Point {
        let mut q = p.clone();
        if self.knobs.is_empty() {
            return q;
        }
        let n_changes = 1 + rng.gen_range(0..2);
        for _ in 0..n_changes {
            let k = rng.gen_range(0..self.knobs.len());
            let n = self.knobs[k].options.len();
            if n <= 1 {
                continue;
            }
            if rng.gen_bool(0.5) {
                // Step +-1.
                let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                q[k] = (q[k] as i64 + delta).clamp(0, n as i64 - 1) as usize;
            } else {
                q[k] = rng.gen_range(0..n);
            }
        }
        q
    }

    /// Applies per-knob directions in `{-1, 0, +1}` (RL walk move).
    pub fn step(&self, p: &Point, directions: &[i64]) -> Point {
        p.iter()
            .zip(self.knobs.iter())
            .zip(directions.iter().chain(std::iter::repeat(&0)))
            .map(|((&i, k), &d)| (i as i64 + d).clamp(0, k.options.len() as i64 - 1) as usize)
            .collect()
    }

    /// Option values selected by a point.
    pub fn values(&self, p: &Point) -> Vec<i64> {
        p.iter()
            .zip(self.knobs.iter())
            .map(|(&i, k)| k.options[i])
            .collect()
    }

    /// Normalized encoding of a point in `[0, 1]` per knob (RL state).
    pub fn encode(&self, p: &Point) -> Vec<f32> {
        p.iter()
            .zip(self.knobs.iter())
            .map(|(&i, k)| {
                if k.options.len() <= 1 {
                    0.0
                } else {
                    i as f32 / (k.options.len() - 1) as f32
                }
            })
            .collect()
    }

    /// Maps continuous actions in `(0, 1)` to a point (the paper's
    /// `F = R(D * a)` rounding, realized as an index into the feasible
    /// divisor list).
    pub fn decode_actions(&self, actions: &[f32]) -> Point {
        self.knobs
            .iter()
            .zip(actions.iter().chain(std::iter::repeat(&0.0)))
            .map(|(k, &a)| {
                let n = k.options.len();
                let a = a.clamp(0.0, 1.0);
                ((a * (n as f32 - 1.0)).round() as usize).min(n - 1)
            })
            .collect()
    }
}

/// Which template a complex operator uses.
#[derive(Clone, Debug)]
pub enum TemplateKind {
    /// Direct convolutions: tunable spatial tiles + `ot` for the output,
    /// `it` for the (unfolded) input, `it'`/`ot'` for the weight.
    Conv {
        /// Spatial rank (1, 2 or 3).
        d: usize,
        /// Per-dimension convolution strides.
        strides: Vec<i64>,
        /// Dilated window extents per spatial dim.
        windows: Vec<i64>,
    },
    /// Transposed convolutions: output template + weight tiling (input
    /// unfold does not apply to the scatter access pattern).
    TransposedConv {
        /// Spatial rank.
        d: usize,
    },
    /// GMM: `mt, nt, kt` (the `NKn` family).
    Gmm,
    /// Batched GMM: `mt, nt, kt` with the batch dimension untouched.
    BatchGmm,
}

/// The pruned per-operator layout space (paper §5.1 templates).
#[derive(Clone, Debug)]
pub struct LayoutTemplate {
    /// The operator this template tunes.
    pub op: OpId,
    /// Template family.
    pub kind: TemplateKind,
    /// The knob space (see `kind` for knob meanings).
    pub space: Space,
    /// Tiling levels (1 = the default one-level templates; 2 adds a
    /// second-level split per knob, Fig. 13).
    pub levels: u8,
    /// Whether the template carries the trailing `xform` knob (advanced
    /// physical transforms: XOR swizzle, block-diagonal remap, Morton).
    pub advanced: bool,
}

/// `xform` knob values (the trailing knob of advanced templates).
///
/// Each value selects one post-tiling physical transform; values that are
/// illegal for the decoded physical shape degrade to a no-op so every
/// point still decodes (mirroring how degenerate tile points are kept).
pub const XFORM_NONE: i64 = 0;
/// XOR-swizzle the innermost weight tile against the neighbouring tile
/// dimension, 1 low bit.
pub const XFORM_SWIZZLE1: i64 = 1;
/// XOR-swizzle, 2 low bits.
pub const XFORM_SWIZZLE2: i64 = 2;
/// Block-diagonal (cyclic) remap of the innermost weight tile.
pub const XFORM_BLOCKDIAG: i64 = 3;
/// Morton (Z-order) interleave of the first adjacent equal power-of-two
/// pair of output dimensions.
pub const XFORM_MORTON: i64 = 4;

/// Builds the layout template for a complex operator, or `None` for
/// non-complex operators.
pub fn build_layout_template(graph: &Graph, op: OpId, levels: u8) -> Option<LayoutTemplate> {
    build_layout_template_ex(graph, op, levels, false)
}

/// [`build_layout_template`] with the opt-in advanced-primitive knob:
/// when `advanced` is set the template gains one trailing `xform` knob
/// whose options select a post-tiling physical transform (see the
/// `XFORM_*` constants). Off by default so the pruned template sizes of
/// paper §5.1 (and seeded tuning baselines) are unchanged.
pub fn build_layout_template_ex(
    graph: &Graph,
    op: OpId,
    levels: u8,
    advanced: bool,
) -> Option<LayoutTemplate> {
    let node = graph.node(op);
    let OpTag::Complex(kind) = node.tag else {
        return None;
    };
    let out_shape = &graph.tensor(node.output).shape;
    let mut knobs = Vec::new();
    let template_kind = match kind {
        ComplexKind::Conv1d | ComplexKind::Conv2d | ComplexKind::Conv3d => {
            let d = out_shape.ndim() - 2;
            let in_shape = &graph.tensor(node.inputs[0]).shape;
            let w_shape = &graph.tensor(node.inputs[1]).shape;
            // Recover stride/dilation from the compute: out = (in - win)/s + 1.
            // The reduce axes after the channel axis carry kernel extents.
            let k_ext: Vec<i64> = (0..d).map(|k| w_shape.dim(2 + k)).collect();
            let (strides, windows) = infer_conv_geometry(in_shape, out_shape, &k_ext);
            for k in 0..d {
                knobs.push(Knob::divisor(format!("t{k}"), out_shape.dim(2 + k)));
            }
            knobs.push(Knob::divisor("ot", out_shape.dim(1)));
            knobs.push(Knob::divisor("it", in_shape.dim(1)));
            knobs.push(Knob::divisor("w_it", w_shape.dim(1)));
            knobs.push(Knob::divisor("w_ot", w_shape.dim(0)));
            TemplateKind::Conv {
                d,
                strides,
                windows,
            }
        }
        ComplexKind::TransposedConv2d | ComplexKind::TransposedConv3d => {
            let d = out_shape.ndim() - 2;
            let in_shape = &graph.tensor(node.inputs[0]).shape;
            let w_shape = &graph.tensor(node.inputs[1]).shape;
            for k in 0..d {
                knobs.push(Knob::divisor(format!("t{k}"), out_shape.dim(2 + k)));
            }
            knobs.push(Knob::divisor("ot", out_shape.dim(1)));
            knobs.push(Knob::divisor("it", in_shape.dim(1)));
            knobs.push(Knob::divisor("w_it", w_shape.dim(0)));
            knobs.push(Knob::divisor("w_ot", w_shape.dim(1)));
            TemplateKind::TransposedConv { d }
        }
        ComplexKind::Gmm => {
            let a_shape = &graph.tensor(node.inputs[0]).shape;
            knobs.push(Knob::divisor("mt", out_shape.dim(0)));
            knobs.push(Knob::divisor("nt", out_shape.dim(1)));
            knobs.push(Knob::divisor("kt", a_shape.dim(1)));
            TemplateKind::Gmm
        }
        ComplexKind::BatchGmm => {
            let a_shape = &graph.tensor(node.inputs[0]).shape;
            knobs.push(Knob::divisor("mt", out_shape.dim(1)));
            knobs.push(Knob::divisor("nt", out_shape.dim(2)));
            knobs.push(Knob::divisor("kt", a_shape.dim(2)));
            TemplateKind::BatchGmm
        }
    };
    if levels >= 2 {
        // Second-level factors (Fig. 13's two-level templates): the
        // spatial tiles and `ot` each gain a companion knob that further
        // splits the first-level tile. The effective inner factor is
        // `gcd(first, second)` so every point decodes to a valid layout.
        let n_two_level = match template_kind {
            TemplateKind::Conv { d, .. } | TemplateKind::TransposedConv { d } => d + 1,
            TemplateKind::Gmm | TemplateKind::BatchGmm => 2,
        };
        let firsts: Vec<Knob> = knobs[..n_two_level].to_vec();
        for k in firsts {
            let max = k.options.last().copied().unwrap_or(1);
            knobs.push(Knob::divisor(format!("{}2", k.name), max));
        }
    }
    if advanced {
        knobs.push(Knob {
            name: "xform".into(),
            options: vec![
                XFORM_NONE,
                XFORM_SWIZZLE1,
                XFORM_SWIZZLE2,
                XFORM_BLOCKDIAG,
                XFORM_MORTON,
            ],
        });
    }
    Some(LayoutTemplate {
        op,
        kind: template_kind,
        space: Space { knobs },
        levels,
        advanced,
    })
}

/// Infers (per-dimension strides, dilated windows) from conv
/// input/output shapes and kernel extents: `out = (in - win)/stride + 1`.
fn infer_conv_geometry(in_shape: &Shape, out_shape: &Shape, k_ext: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let d = k_ext.len();
    // Try dilations 1..=4 (uniform) with per-dimension strides 1..=4.
    for dil in 1..=4i64 {
        let windows: Vec<i64> = (0..d).map(|k| (k_ext[k] - 1) * dil + 1).collect();
        let mut strides = Vec::with_capacity(d);
        let mut ok = true;
        for (k, &win) in windows.iter().enumerate() {
            let (i, o) = (in_shape.dim(2 + k), out_shape.dim(2 + k));
            match (1..=4i64).find(|s| o == (i - win) / s + 1 && (i - win) % s == 0) {
                Some(s) => strides.push(s),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return (strides, windows);
        }
    }
    (vec![1; d], k_ext.to_vec())
}

/// The decoded layouts of one template point.
#[derive(Clone, Debug)]
pub struct LayoutDecision {
    /// Output tensor layout.
    pub output: Layout,
    /// Input (data) tensor layout.
    pub input: Option<Layout>,
    /// Weight tensor layout.
    pub weight: Option<Layout>,
}

/// Decodes a template point into concrete layouts.
///
/// Degenerate points (tile == full extent everywhere with `ot == O`)
/// decode to non-identity but semantically equivalent layouts; the tuner
/// treats them like any other point.
pub fn decode_layout_point(
    graph: &Graph,
    tmpl: &LayoutTemplate,
    point: &Point,
) -> Result<LayoutDecision, alt_layout::LayoutError> {
    let node = graph.node(tmpl.op);
    let out_shape = graph.tensor(node.output).shape.clone();
    let mut vals = tmpl.space.values(point);
    let xform = if tmpl.advanced {
        vals.pop().unwrap_or(XFORM_NONE)
    } else {
        XFORM_NONE
    };
    let decision = match &tmpl.kind {
        TemplateKind::Conv {
            d,
            strides,
            windows,
        } => {
            let in_shape = graph.tensor(node.inputs[0]).shape.clone();
            let w_shape = graph.tensor(node.inputs[1]).shape.clone();
            let tiles = &vals[..*d];
            let (ot, it, w_it, w_ot) = (vals[*d], vals[*d + 1], vals[*d + 2], vals[*d + 3]);
            let output = if tmpl.levels >= 2 {
                // Inner factors come from the companion knobs; `gcd` keeps
                // them dividing the first-level tiles.
                let seconds = &vals[*d + 4..];
                let inner: Vec<i64> = tiles
                    .iter()
                    .zip(seconds.iter())
                    .map(|(&a, &b)| gcd(a, b))
                    .collect();
                let mid: Vec<i64> = tiles.iter().zip(&inner).map(|(&a, &i)| a / i).collect();
                let o_in = gcd(ot, seconds[*d]);
                let o_mid = ot / o_in;
                presets::conv_output_tiled2_nd(out_shape, &mid, &inner, o_mid, o_in)?
            } else {
                presets::conv_output_tiled_nd(out_shape, tiles, ot)?
            };
            let input = presets::conv_input_tiled_nd(in_shape, it, tiles, strides, windows)?;
            let weight = presets::conv_weight_tiled_nd(w_shape, w_it, w_ot)?;
            Ok(LayoutDecision {
                output,
                input: Some(input),
                weight: Some(weight),
            })
        }
        TemplateKind::TransposedConv { d } => {
            let in_shape = graph.tensor(node.inputs[0]).shape.clone();
            let w_shape = graph.tensor(node.inputs[1]).shape.clone();
            let tiles = &vals[..*d];
            let (ot, it, w_it, w_ot) = (vals[*d], vals[*d + 1], vals[*d + 2], vals[*d + 3]);
            let output = presets::conv_output_tiled_nd(out_shape, tiles, ot)?;
            let input = presets::channel_tiled(in_shape, it)?;
            let weight = presets::tconv_weight_tiled_nd(w_shape, w_it, w_ot)?;
            Ok(LayoutDecision {
                output,
                input: Some(input),
                weight: Some(weight),
            })
        }
        TemplateKind::Gmm => {
            let a_shape = graph.tensor(node.inputs[0]).shape.clone();
            let b_shape = graph.tensor(node.inputs[1]).shape.clone();
            let (mt, nt, kt) = (vals[0], vals[1], vals[2]);
            Ok(LayoutDecision {
                output: presets::gmm_tiled(out_shape, mt, nt)?,
                input: Some(presets::gmm_tiled(a_shape, mt, kt)?),
                weight: Some(presets::gmm_tiled(b_shape, kt, nt)?),
            })
        }
        TemplateKind::BatchGmm => {
            let a_shape = graph.tensor(node.inputs[0]).shape.clone();
            let b_shape = graph.tensor(node.inputs[1]).shape.clone();
            let (mt, nt, kt) = (vals[0], vals[1], vals[2]);
            Ok(LayoutDecision {
                output: presets::batch_gmm_tiled(out_shape, mt, nt)?,
                input: Some(presets::batch_gmm_tiled(a_shape, mt, kt)?),
                weight: Some(presets::batch_gmm_tiled(b_shape, kt, nt)?),
            })
        }
    }?;
    Ok(apply_xform(decision, xform))
}

/// Applies `prim` when legal for the layout's physical shape; returns the
/// layout unchanged otherwise, so an inapplicable `xform` choice degrades
/// to a no-op instead of invalidating the point.
fn try_with(layout: Layout, prim: LayoutPrim) -> Layout {
    if prim.check(layout.physical_shape().dims()).is_ok() {
        match layout.clone().with(prim) {
            Ok(l) => l,
            Err(_) => layout,
        }
    } else {
        layout
    }
}

/// Applies the `xform` knob to a decoded decision.
///
/// Swizzle and block-diag target the weight tensor's two innermost
/// physical dimensions (the packed tiles, where bank conflicts live);
/// Morton targets the first adjacent equal power-of-two pair of output
/// dimensions. Every transform is validated by [`LayoutPrim::check`] and
/// skipped when the shape does not qualify.
fn apply_xform(mut decision: LayoutDecision, xform: i64) -> LayoutDecision {
    match xform {
        XFORM_SWIZZLE1 | XFORM_SWIZZLE2 => {
            if let Some(w) = decision.weight.take() {
                let nd = w.physical_shape().ndim();
                let prim = LayoutPrim::Swizzle {
                    dim: nd.saturating_sub(1),
                    src: nd.saturating_sub(2),
                    bits: xform as u32,
                };
                decision.weight = Some(try_with(w, prim));
            }
        }
        XFORM_BLOCKDIAG => {
            if let Some(w) = decision.weight.take() {
                let phys = w.physical_shape();
                let nd = phys.ndim();
                if nd >= 2 {
                    let block = (phys.dim(nd - 1) / 2).max(1);
                    let prim = LayoutPrim::BlockDiag {
                        dim: nd - 1,
                        src: nd - 2,
                        block,
                    };
                    decision.weight = Some(try_with(w, prim));
                } else {
                    decision.weight = Some(w);
                }
            }
        }
        XFORM_MORTON => {
            let phys = decision.output.physical_shape();
            let candidate = (0..phys.ndim().saturating_sub(1))
                .find(|&d| LayoutPrim::Morton { dim: d }.check(phys.dims()).is_ok());
            if let Some(d) = candidate {
                decision.output = try_with(decision.output, LayoutPrim::Morton { dim: d });
            }
        }
        _ => {}
    }
    decision
}

/// Applies a decoded layout decision to the plan.
///
/// `free_inputs` treats graph-input tensors like parameters (offline
/// packing) — the single-operator benchmark setting, where the harness
/// feeds data already in the tuned layout.
pub fn apply_layout_decision(
    graph: &Graph,
    plan: &mut LayoutPlan,
    op: OpId,
    decision: &LayoutDecision,
    free_inputs: bool,
) {
    let node = graph.node(op);
    plan.assign_output_layout(graph, op, decision.output.clone());
    let assign_in = |plan: &mut LayoutPlan, tensor: TensorId, layout: Layout| {
        let info = graph.tensor(tensor);
        if free_inputs && info.producer.is_none() {
            plan.set_layout(tensor, layout);
        } else {
            plan.assign_input_layout(graph, op, tensor, layout);
        }
    };
    if let Some(l) = &decision.input {
        assign_in(plan, node.inputs[0], l.clone());
    }
    if let Some(l) = &decision.weight {
        assign_in(plan, node.inputs[1], l.clone());
    }
}

/// Builds the loop space for an operator given its current output layout.
///
/// This is rebuilt whenever the layout changes — the space-reconstruction
/// problem the paper's two-stage design addresses.
pub fn build_loop_space(graph: &Graph, plan: &LayoutPlan, op: OpId) -> Space {
    build_loop_space_ex(graph, plan, op, false)
}

/// [`build_loop_space`] with optional two-level spatial tiling: each
/// spatial dimension gains a second tile knob (the effective inner
/// factor is `gcd(first, second)`), deepening the space the way larger
/// TVM sketches do.
pub fn build_loop_space_ex(graph: &Graph, plan: &LayoutPlan, op: OpId, two_level: bool) -> Space {
    let node = graph.node(op);
    let phys = plan.layout_of(graph, node.output).physical_shape();
    let mut knobs = Vec::new();
    for k in 0..phys.ndim() {
        if phys.dim(k) > 1 {
            knobs.push(Knob::divisor(format!("s{k}"), phys.dim(k)));
        } else {
            knobs.push(Knob {
                name: format!("s{k}"),
                options: vec![1],
            });
        }
    }
    if two_level {
        for k in 0..phys.ndim() {
            if phys.dim(k) > 1 {
                knobs.push(Knob::divisor(format!("s{k}b"), phys.dim(k)));
            } else {
                knobs.push(Knob {
                    name: format!("s{k}b"),
                    options: vec![1],
                });
            }
        }
    }
    for (k, ax) in node.compute.reduce_axes.iter().enumerate() {
        knobs.push(Knob::divisor(format!("r{k}"), ax.extent));
    }
    knobs.push(Knob::boolean("vectorize"));
    knobs.push(Knob::boolean("unroll"));
    knobs.push(Knob::boolean("parallel"));
    Space { knobs }
}

/// Decodes a loop-space point into an [`OpSchedule`].
pub fn decode_loop_point(
    graph: &Graph,
    plan: &LayoutPlan,
    op: OpId,
    space: &Space,
    p: &Point,
) -> OpSchedule {
    let node = graph.node(op);
    let phys = plan.layout_of(graph, node.output).physical_shape();
    let vals = space.values(p);
    let nd = phys.ndim();
    let nr = node.compute.reduce_axes.len();
    // One- vs two-level spaces are distinguished by knob count.
    let two_level = space.knobs.len() == 2 * nd + nr + 3;
    let spatial: Vec<AxisTiling> = (0..nd)
        .map(|k| {
            let t = vals[k];
            if two_level {
                let inner = gcd(t, vals[nd + k]);
                let mid = t / inner;
                if mid > 1 && inner > 1 {
                    return AxisTiling::two(mid, inner);
                }
            }
            if t <= 1 {
                AxisTiling::none()
            } else {
                AxisTiling::one(t)
            }
        })
        .collect();
    let base = if two_level { 2 * nd } else { nd };
    let reduce: Vec<AxisTiling> = (0..nr)
        .map(|k| {
            let t = vals[base + k];
            if t <= 1 {
                AxisTiling::none()
            } else {
                AxisTiling::one(t)
            }
        })
        .collect();
    OpSchedule {
        spatial,
        reduce,
        vectorize: vals[base + nr] != 0,
        unroll: vals[base + nr + 1] != 0,
        parallel: vals[base + nr + 2] != 0,
        fuse_into_producer: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_layout::PropagationMode;
    use alt_tensor::ops::{self, ConvCfg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(7), vec![1, 7]);
    }

    fn conv_graph() -> (Graph, OpId) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 16, 18, 18]));
        let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let op = g.tensor(y).producer.unwrap();
        (g, op)
    }

    #[test]
    fn conv_template_has_six_knobs() {
        let (g, op) = conv_graph();
        let tmpl = build_layout_template(&g, op, 1).unwrap();
        // ht, wt, ot, it, w_it, w_ot (paper: six tunables for C2D).
        assert_eq!(tmpl.space.knobs.len(), 6);
        assert!(
            matches!(&tmpl.kind, TemplateKind::Conv { d: 2, strides, .. } if strides == &vec![1, 1])
        );
    }

    #[test]
    fn two_level_template_doubles_knobs() {
        let (g, op) = conv_graph();
        let tmpl = build_layout_template(&g, op, 2).unwrap();
        // Six one-level knobs plus second-level companions for ht, wt, ot.
        assert_eq!(tmpl.space.knobs.len(), 9);
    }

    #[test]
    fn decode_and_apply_roundtrip() {
        let (g, op) = conv_graph();
        let tmpl = build_layout_template(&g, op, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = tmpl.space.random_point(&mut rng);
            let dec = decode_layout_point(&g, &tmpl, &p).expect("decodable");
            let mut plan = LayoutPlan::new(PropagationMode::Full);
            apply_layout_decision(&g, &mut plan, op, &dec, true);
            // Physical shapes must preserve element counts for the output
            // (no advanced primitives in the output template).
            let out = g.node(op).output;
            assert_eq!(
                plan.layout_of(&g, out).physical_shape().numel(),
                g.tensor(out).shape.numel()
            );
        }
    }

    #[test]
    fn stride_inference_detects_strided_conv() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 3, 23, 23]));
        let w = g.add_param("w", Shape::new([8, 3, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::strided(2));
        let op = g.tensor(y).producer.unwrap();
        let tmpl = build_layout_template(&g, op, 1).unwrap();
        match &tmpl.kind {
            TemplateKind::Conv { strides, .. } => assert_eq!(strides, &vec![2, 2]),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn loop_space_decodes_valid_schedules() {
        let (g, op) = conv_graph();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let space = build_loop_space(&g, &plan, op);
        let mut rng = StdRng::seed_from_u64(5);
        let node = g.node(op);
        let phys = plan.layout_of(&g, node.output).physical_shape();
        let spatial_extents: Vec<i64> = phys.dims().to_vec();
        let reduce_extents: Vec<i64> = node.compute.reduce_axes.iter().map(|a| a.extent).collect();
        for _ in 0..50 {
            let p = space.random_point(&mut rng);
            let sched = decode_loop_point(&g, &plan, op, &space, &p);
            assert!(sched.validate(&spatial_extents, &reduce_extents));
        }
    }

    #[test]
    fn space_walk_stays_in_bounds() {
        let (g, op) = conv_graph();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let space = build_loop_space(&g, &plan, op);
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = space.random_point(&mut rng);
        for _ in 0..100 {
            p = space.neighbor(&p, &mut rng);
            for (i, k) in p.iter().zip(space.knobs.iter()) {
                assert!(*i < k.options.len());
            }
        }
        let dirs = vec![1i64; space.knobs.len()];
        let q = space.step(&p, &dirs);
        for (i, k) in q.iter().zip(space.knobs.iter()) {
            assert!(*i < k.options.len());
        }
    }

    /// Builds a point selecting the named option values (first option for
    /// any knob not named).
    fn point_with(space: &Space, choose: &[(&str, i64)]) -> Point {
        space
            .knobs
            .iter()
            .map(|k| {
                choose
                    .iter()
                    .find(|(n, _)| *n == k.name)
                    .and_then(|(_, v)| k.options.iter().position(|o| o == v))
                    .unwrap_or(0)
            })
            .collect()
    }

    #[test]
    fn advanced_template_appends_one_xform_knob() {
        let (g, op) = conv_graph();
        let base = build_layout_template(&g, op, 1).unwrap();
        assert!(!base.advanced);
        let adv = build_layout_template_ex(&g, op, 1, true).unwrap();
        assert!(adv.advanced);
        assert_eq!(adv.space.knobs.len(), base.space.knobs.len() + 1);
        let last = adv.space.knobs.last().unwrap();
        assert_eq!(last.name, "xform");
        assert_eq!(last.options.len(), 5);
    }

    #[test]
    fn xform_knob_decodes_to_advanced_primitives() {
        let (g, op) = conv_graph();
        let tmpl = build_layout_template_ex(&g, op, 1, true).unwrap();
        // Weight [32, 16, 3, 3] with w_ot = 8: the packed tile dims
        // qualify for both swizzle (8 % 4 == 0) and block-diag.
        let base = &[("t0", 4i64), ("t1", 4), ("ot", 8), ("w_it", 4), ("w_ot", 8)][..];
        let with_xform = |x: i64| {
            let mut c = base.to_vec();
            c.push(("xform", x));
            decode_layout_point(&g, &tmpl, &point_with(&tmpl.space, &c)).expect("decodable")
        };
        let has = |l: &Layout, pred: &dyn Fn(&LayoutPrim) -> bool| l.prims().iter().any(pred);

        let none = with_xform(XFORM_NONE);
        assert!(!has(none.weight.as_ref().unwrap(), &|p| matches!(
            p,
            LayoutPrim::Swizzle { .. } | LayoutPrim::BlockDiag { .. }
        )));

        let sw = with_xform(XFORM_SWIZZLE2);
        assert!(has(sw.weight.as_ref().unwrap(), &|p| matches!(
            p,
            LayoutPrim::Swizzle { bits: 2, .. }
        )));

        let bd = with_xform(XFORM_BLOCKDIAG);
        assert!(has(bd.weight.as_ref().unwrap(), &|p| matches!(
            p,
            LayoutPrim::BlockDiag { .. }
        )));

        // Output [1, 32, 16, 16] tiled (4, 4) with ot = 8 exposes an
        // adjacent equal power-of-two pair for the Morton interleave.
        let mt = with_xform(XFORM_MORTON);
        assert!(has(&mt.output, &|p| matches!(p, LayoutPrim::Morton { .. })));
    }

    #[test]
    fn advanced_points_always_decode_apply_and_verify_clean() {
        let (g, op) = conv_graph();
        let tmpl = build_layout_template_ex(&g, op, 1, true).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let p = tmpl.space.random_point(&mut rng);
            let dec = decode_layout_point(&g, &tmpl, &p).expect("decodable");
            let mut plan = LayoutPlan::new(PropagationMode::Full);
            apply_layout_decision(&g, &mut plan, op, &dec, true);
            // The physical transforms are all bijective: element counts
            // are preserved on every tensor they touch.
            let out = g.node(op).output;
            assert_eq!(
                plan.layout_of(&g, out).physical_shape().numel(),
                g.tensor(out).shape.numel()
            );
            // Every decoded point must pass the static legality engine.
            let program = alt_loopir::lower(&g, &plan, &alt_loopir::GraphSchedule::naive());
            let diags = alt_verify::verify_program(&g, &plan, &program);
            assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        }
    }

    #[test]
    fn gmm_template_three_knobs() {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([64, 128]));
        let b = g.add_param("b", Shape::new([128, 256]));
        let c = ops::gmm(&mut g, a, b);
        let op = g.tensor(c).producer.unwrap();
        let tmpl = build_layout_template(&g, op, 1).unwrap();
        assert_eq!(tmpl.space.knobs.len(), 3);
    }

    #[test]
    fn encode_decode_actions() {
        let (g, op) = conv_graph();
        let tmpl = build_layout_template(&g, op, 1).unwrap();
        let p = tmpl.space.decode_actions(&[0.0, 1.0, 0.5, 0.2, 0.9, 0.1]);
        for (i, k) in p.iter().zip(tmpl.space.knobs.iter()) {
            assert!(*i < k.options.len());
        }
        let enc = tmpl.space.encode(&p);
        assert_eq!(enc.len(), 6);
        assert!(enc.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn two_level_loop_space_decodes_valid_schedules() {
        let (g, op) = conv_graph();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let space = build_loop_space_ex(&g, &plan, op, true);
        let one = build_loop_space(&g, &plan, op);
        assert!(space.knobs.len() > one.knobs.len());
        let node = g.node(op);
        let phys = plan.layout_of(&g, node.output).physical_shape();
        let reduce_extents: Vec<i64> = node.compute.reduce_axes.iter().map(|a| a.extent).collect();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let p = space.random_point(&mut rng);
            let sched = decode_loop_point(&g, &plan, op, &space, &p);
            assert!(sched.validate(phys.dims(), &reduce_extents));
        }
    }

    #[test]
    fn template_space_sizes_match_paper_scale() {
        // §5.1: the pruned C2D layout space is ~O(10^6) for realistic
        // shapes (six divisor knobs) and the GMM space is up to O(10^3).
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 512, 58, 58]));
        let w = g.add_param("w", Shape::new([512, 512, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let op = g.tensor(y).producer.unwrap();
        let tmpl = build_layout_template(&g, op, 1).unwrap();
        let size = tmpl.space.size();
        assert!(
            (1e4..1e8).contains(&size),
            "C2D layout space has {size} points"
        );

        let mut g2 = Graph::new();
        let a = g2.add_input("a", Shape::new([1024, 1024]));
        let b = g2.add_param("b", Shape::new([1024, 1024]));
        let c = ops::gmm(&mut g2, a, b);
        let op2 = g2.tensor(c).producer.unwrap();
        let tmpl2 = build_layout_template(&g2, op2, 1).unwrap();
        let size2 = tmpl2.space.size();
        assert!(
            (1e2..1e5).contains(&size2),
            "GMM layout space has {size2} points"
        );
    }
}
