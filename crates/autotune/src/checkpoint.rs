//! Checkpoint/resume for tuning runs.
//!
//! A tuning run is hours of measurements; losing it to a crash (or a
//! pre-empted machine) is the most expensive failure mode there is. The
//! tuner periodically serializes its state to JSON at *cut points* —
//! joint-stage operator boundaries and loop-stage iterations — and a
//! resumed run continues from the exact budget unit where the checkpoint
//! was written.
//!
//! The checkpoint stores *decisions*, not compiler objects: committed
//! layout template points, flat schedule snapshots, cost-model training
//! sets, the critic's weights and optimizer moments, and the raw RNG
//! state. On resume the tuner deterministically replays the committed
//! decisions against a fresh graph — layout plans and schedules are
//! rebuilt, never deserialized — so the format stays small and stable
//! while resumed runs are bit-identical to uninterrupted ones.

use std::collections::HashMap;

use alt_error::AltError;
use alt_tensor::Graph;
use serde::{Deserialize, Serialize};

use crate::ppo::CriticState;

/// Current checkpoint format version.
/// v2 added `accounted_keys` (memo-cache continuity across resume).
pub const CHECKPOINT_VERSION: u64 = 2;

/// A flat snapshot of one operator's schedule
/// ([`alt_loopir::OpSchedule`] without the nested types).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedSnap {
    /// Tiling factors per spatial axis.
    pub spatial: Vec<Vec<i64>>,
    /// Tiling factors per reduction axis.
    pub reduce: Vec<Vec<i64>>,
    /// Vectorize the innermost loop.
    pub vectorize: bool,
    /// Unroll the innermost tile.
    pub unroll: bool,
    /// Parallelize the outermost loop.
    pub parallel: bool,
    /// Fuse into the producer's loop nest.
    pub fuse: bool,
}

impl SchedSnap {
    /// Snapshot of one schedule.
    pub fn of(s: &alt_loopir::OpSchedule) -> Self {
        SchedSnap {
            spatial: s.spatial.iter().map(|t| t.factors.clone()).collect(),
            reduce: s.reduce.iter().map(|t| t.factors.clone()).collect(),
            vectorize: s.vectorize,
            unroll: s.unroll,
            parallel: s.parallel,
            fuse: s.fuse_into_producer,
        }
    }

    /// Rebuilds the schedule.
    pub fn to_sched(&self) -> alt_loopir::OpSchedule {
        let tilings = |v: &Vec<Vec<i64>>| {
            v.iter()
                .map(|f| alt_loopir::AxisTiling { factors: f.clone() })
                .collect()
        };
        alt_loopir::OpSchedule {
            spatial: tilings(&self.spatial),
            reduce: tilings(&self.reduce),
            vectorize: self.vectorize,
            unroll: self.unroll,
            parallel: self.parallel,
            fuse_into_producer: self.fuse,
        }
    }
}

/// One committed joint-stage layout decision: replayed (template rebuild,
/// point decode, plan application, clone replication) on resume.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommitSnap {
    /// The representative operator the decision was committed for.
    pub op: usize,
    /// The winning layout template point.
    pub point: Vec<usize>,
}

/// Per-operator loop-tuning state: the GBT training set. The model
/// itself is not stored — fitting is deterministic, so resume refits on
/// the first `trained_on` rows and reproduces it exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoopStateSnap {
    /// Operator id.
    pub op: usize,
    /// Feature vectors of measured candidates.
    pub dataset_x: Vec<Vec<f32>>,
    /// Targets (`-ln latency`).
    pub dataset_y: Vec<f32>,
    /// Loop-tuning rounds executed for this op.
    pub rounds: u64,
    /// Dataset prefix length the current model was trained on.
    pub trained_on: u64,
}

/// Best loop point per operator (valid for that op's current layout).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BestPointSnap {
    /// Operator id.
    pub op: usize,
    /// The point.
    pub point: Vec<usize>,
    /// Its measured latency.
    pub latency_s: f64,
}

/// A serializable snapshot of the whole tuner, written at cut points.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TunerCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// The run's RNG seed (resume validates it).
    pub seed: u64,
    /// Signature of the tuned graph (resume validates it).
    pub graph_sig: String,
    /// Joint-stage budget of the run.
    pub joint_budget: u64,
    /// Loop-stage budget of the run.
    pub loop_budget: u64,
    /// Which stage the cut is in: `"joint"` or `"loop"`.
    pub phase: String,
    /// Joint stage: index of the next representative op to tune.
    pub next_rep: u64,
    /// Loop stage: next round-robin iteration counter.
    pub loop_iter: u64,
    /// Budget counter value at joint-stage entry.
    pub joint_start: u64,
    /// Budget units consumed so far.
    pub used: u64,
    /// (budget used, latency) history of successful measurements.
    pub history: Vec<(u64, f64)>,
    /// Best-so-far latency per op label (telemetry continuity).
    pub best_by_op: Vec<(String, f64)>,
    /// Raw xoshiro256++ state of the shared tuning stream.
    pub rng_state: Vec<u64>,
    /// Committed joint-stage layout decisions, in commit order.
    pub committed: Vec<CommitSnap>,
    /// Schedule snapshot for every graph op, indexed by op id.
    pub sched: Vec<SchedSnap>,
    /// Cost-model training sets per op.
    pub loop_state: Vec<LoopStateSnap>,
    /// Best loop point per op.
    pub best_points: Vec<BestPointSnap>,
    /// Shared critic training state (present when cut mid-joint-stage).
    pub critic: Option<CriticState>,
    /// Quarantined candidate keys (`op:point`).
    pub quarantine: Vec<String>,
    /// Failure counts per candidate key.
    pub fail_counts: HashMap<String, u64>,
    /// Tuner-scoped counter values (retries, quarantined, failures.*).
    pub counters: Vec<(String, f64)>,
    /// Memo-cache keys the run has budget-accounted so far, sorted. The
    /// resumed leg re-simulates them (the table itself is not persisted;
    /// simulation is pure) but records their lookups as the cache hits
    /// the uninterrupted run would have seen.
    pub accounted_keys: Vec<u64>,
}

impl TunerCheckpoint {
    /// Validates a loaded checkpoint against the run it is resuming.
    pub fn validate(&self, graph: &Graph, seed: u64) -> Result<(), AltError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(AltError::Checkpoint {
                detail: format!(
                    "version mismatch: checkpoint v{}, supported v{CHECKPOINT_VERSION}",
                    self.version
                ),
            });
        }
        let sig = graph_signature(graph);
        if self.graph_sig != sig {
            return Err(AltError::Checkpoint {
                detail: format!(
                    "graph mismatch: checkpoint was taken for a different model \
                     (checkpoint sig {:.16}..., current sig {sig:.16}...)",
                    self.graph_sig
                ),
            });
        }
        if self.seed != seed {
            return Err(AltError::Checkpoint {
                detail: format!(
                    "seed mismatch: checkpoint used seed {}, run configured with {seed}",
                    self.seed
                ),
            });
        }
        if self.rng_state.len() != 4 {
            return Err(AltError::Checkpoint {
                detail: format!(
                    "corrupt RNG state: {} words, expected 4",
                    self.rng_state.len()
                ),
            });
        }
        if self.phase != "joint" && self.phase != "loop" {
            return Err(AltError::Checkpoint {
                detail: format!("unknown phase {:?}", self.phase),
            });
        }
        Ok(())
    }

    /// Serializes to a JSON file. The write is atomic (temp file, fsync,
    /// rename — see `alt_store::atomic`): a crash mid-save leaves the
    /// previous checkpoint intact instead of a torn half-JSON file that
    /// would strand the whole run at resume time.
    pub fn save(&self, path: &str) -> Result<(), AltError> {
        let json = serde_json::to_string(self).map_err(|e| AltError::Checkpoint {
            detail: format!("serializing checkpoint: {}", e.0),
        })?;
        alt_store::atomic::write(std::path::Path::new(path), json.as_bytes()).map_err(|e| {
            AltError::Checkpoint {
                detail: format!("writing {path}: {e}"),
            }
        })
    }

    /// Loads from a JSON file.
    pub fn load(path: &str) -> Result<TunerCheckpoint, AltError> {
        let data = std::fs::read_to_string(path).map_err(|e| AltError::Checkpoint {
            detail: format!("reading {path}: {e}"),
        })?;
        serde_json::from_str(&data).map_err(|e| AltError::Checkpoint {
            detail: format!("parsing {path}: {}", e.0),
        })
    }
}

/// A stable fingerprint of the graph a checkpoint belongs to: operator
/// kinds, names and tensor shapes in topological order. Intentionally
/// not a layout/schedule hash — those are what the checkpoint restores.
pub fn graph_signature(graph: &Graph) -> String {
    let mut parts: Vec<String> = Vec::new();
    for node in graph.nodes() {
        let mut s = format!("{:?}|{}", node.tag, node.compute.name);
        for &i in &node.inputs {
            s.push_str(&format!("|{}", graph.tensor(i).shape));
        }
        s.push_str(&format!("|{}", graph.tensor(node.output).shape));
        parts.push(s);
    }
    // Cheap stable hash (FNV-1a) so the signature stays short in JSON.
    let joined = parts.join(";");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in joined.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{:016x}:{}ops", h, graph.nodes().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        g
    }

    fn sample(g: &Graph) -> TunerCheckpoint {
        TunerCheckpoint {
            version: CHECKPOINT_VERSION,
            seed: 7,
            graph_sig: graph_signature(g),
            joint_budget: 16,
            loop_budget: 16,
            phase: "loop".to_string(),
            next_rep: 0,
            loop_iter: 3,
            joint_start: 0,
            used: 20,
            history: vec![(1, 2e-3), (2, 1e-3)],
            best_by_op: vec![("conv2d#2".to_string(), 1e-3)],
            rng_state: vec![1, 2, 3, 4],
            committed: vec![CommitSnap {
                op: 2,
                point: vec![0, 1, 2],
            }],
            sched: vec![SchedSnap {
                spatial: vec![vec![4], vec![]],
                reduce: vec![vec![2, 2]],
                vectorize: true,
                unroll: false,
                parallel: true,
                fuse: false,
            }],
            loop_state: vec![LoopStateSnap {
                op: 2,
                dataset_x: vec![vec![0.5; 4]],
                dataset_y: vec![6.2],
                rounds: 2,
                trained_on: 0,
            }],
            best_points: vec![BestPointSnap {
                op: 2,
                point: vec![1, 0],
                latency_s: 1e-3,
            }],
            critic: None,
            quarantine: vec!["conv2d#2:[9, 9]".to_string()],
            fail_counts: [("conv2d#2:[9, 9]".to_string(), 2u64)]
                .into_iter()
                .collect(),
            counters: vec![("retries".to_string(), 3.0)],
            accounted_keys: vec![3, 17],
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let g = graph();
        let ck = sample(&g);
        let json = serde_json::to_string(&ck).unwrap();
        let back: TunerCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.used, ck.used);
        assert_eq!(back.history, ck.history);
        assert_eq!(back.rng_state, ck.rng_state);
        assert_eq!(back.committed, ck.committed);
        assert_eq!(back.sched, ck.sched);
        assert_eq!(back.best_points, ck.best_points);
        assert_eq!(back.quarantine, ck.quarantine);
        assert_eq!(back.fail_counts, ck.fail_counts);
        assert_eq!(back.sched[0].to_sched().spatial[0].factors, vec![4]);
    }

    #[test]
    fn validation_catches_mismatches() {
        let g = graph();
        let ck = sample(&g);
        assert!(ck.validate(&g, 7).is_ok());
        assert!(ck.validate(&g, 8).is_err(), "seed mismatch");
        let mut other = Graph::new();
        let x = other.add_input("x", Shape::new([1, 8, 6, 6]));
        let w = other.add_param("w", Shape::new([4, 8, 3, 3]));
        let _ = ops::conv2d(&mut other, x, w, ConvCfg::default());
        assert!(ck.validate(&other, 7).is_err(), "graph mismatch");
        let mut bad = ck.clone();
        bad.version = 99;
        assert!(bad.validate(&g, 7).is_err(), "version mismatch");
        let mut bad = ck.clone();
        bad.rng_state = vec![1];
        assert!(bad.validate(&g, 7).is_err(), "rng state length");
    }

    #[test]
    fn file_roundtrip_and_load_errors() {
        let g = graph();
        let ck = sample(&g);
        let dir = std::env::temp_dir().join("alt-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("ck-{}.json", std::process::id()));
        let path_s = path.to_str().unwrap();
        ck.save(path_s).unwrap();
        let back = TunerCheckpoint::load(path_s).unwrap();
        assert_eq!(back.used, ck.used);
        std::fs::remove_file(&path).ok();
        let err = TunerCheckpoint::load(path_s).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        std::fs::write(&path, "not json").unwrap();
        let err = TunerCheckpoint::load(path_s).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_checkpoint_is_a_typed_error_not_a_panic() {
        // A checkpoint torn mid-write (the failure `save`'s atomic
        // temp+rename now prevents, but which pre-existing files on disk
        // may still exhibit) must surface as `AltError::Checkpoint`.
        let g = graph();
        let ck = sample(&g);
        let dir = std::env::temp_dir().join("alt-checkpoint-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("ck-{}.json", std::process::id()));
        let path_s = path.to_str().unwrap();
        ck.save(path_s).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        for cut in [1, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = TunerCheckpoint::load(path_s).unwrap_err();
            assert_eq!(err.kind(), "checkpoint", "cut at {cut}");
        }
        // And no temp-file droppings from the atomic save.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0);
        std::fs::remove_file(&path).ok();
    }
}
