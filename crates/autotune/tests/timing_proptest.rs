//! Property-based test for the wall-clock self-profiling layer: timing
//! and the progress heartbeat are observation-only. For any seed, any
//! worker count, and with or without a durable store attached, tuning
//! with timing + progress enabled must be bit-identical to tuning with
//! both disabled — the same winner, history, budget and cache
//! accounting, telemetry transcript, and search journal. Timing records
//! must never leak into the deterministic trace stream, and the phase
//! tree must conserve time (children never exceed their parent).

use std::sync::Arc;

use proptest::prelude::*;

use alt_autotune::{tune_graph, TuneConfig, TuneResult};
use alt_sim::intel_cpu;
use alt_store::Store;
use alt_telemetry::{MemorySink, Record, Telemetry, Timing};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([32]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    g
}

/// A fresh store in its own directory, so every run starts cold and the
/// plain/timed pair see identical store state.
fn fresh_store(tag: &str) -> (std::path::PathBuf, Arc<Store>) {
    let dir = std::env::temp_dir().join(format!("alt-timing-proptest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create store dir");
    let path = dir.join(format!("{tag}.altstore"));
    std::fs::remove_file(&path).ok();
    let store = Arc::new(Store::open(&path).expect("open store"));
    (path, store)
}

/// Tunes with a trace and journal attached; `timing` switches the
/// self-profiler (and the stderr progress heartbeat) on.
fn run(
    seed: u64,
    jobs: usize,
    store: Option<Arc<Store>>,
    timing: Timing,
    progress: bool,
) -> (TuneResult, Vec<Record>, Vec<String>) {
    let sink = Arc::new(MemorySink::new());
    let (journal, jsink) = alt_journal::Journal::memory();
    let cfg = TuneConfig {
        joint_budget: 12,
        loop_budget: 12,
        batch: 8,
        topk: 2,
        free_input_layouts: true,
        seed,
        jobs,
        telemetry: Telemetry::new(sink.clone()),
        journal,
        store,
        timing,
        progress,
        ..TuneConfig::default()
    };
    let result = tune_graph(&conv_graph(), intel_cpu(), cfg);
    let records = sink
        .records()
        .into_iter()
        .filter(|r| !matches!(r, Record::Span(_) | Record::Event(_)))
        .collect();
    (result, records, jsink.lines())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn timing_and_progress_are_observation_only(
        seed in 0u64..10_000,
        jobs_sel in 0usize..2,
        with_store in any::<bool>(),
    ) {
        let jobs = [1usize, 8][jobs_sel];
        let (plain_store, timed_store) = if with_store {
            let (_, a) = fresh_store(&format!("plain-{seed}-{jobs}"));
            let (_, b) = fresh_store(&format!("timed-{seed}-{jobs}"));
            (Some(a), Some(b))
        } else {
            (None, None)
        };
        let (plain, plain_records, plain_journal) =
            run(seed, jobs, plain_store, Timing::disabled(), false);
        let timing = Timing::enabled();
        let (timed, timed_records, timed_journal) =
            run(seed, jobs, timed_store, timing.clone(), true);

        // The tuning outcome is identical down to the float bits.
        prop_assert_eq!(plain.latency.to_bits(), timed.latency.to_bits());
        prop_assert_eq!(plain.measurements, timed.measurements);
        prop_assert_eq!(&plain.history, &timed.history);
        prop_assert_eq!(
            (plain.cache_hits, plain.cache_misses),
            (timed.cache_hits, timed.cache_misses)
        );
        prop_assert_eq!(
            (plain.store_hits, plain.store_misses),
            (timed.store_hits, timed.store_misses)
        );
        // Layout and schedule decisions agree (via the structured log).
        let g = conv_graph();
        prop_assert_eq!(plain.to_log(&g), timed.to_log(&g));
        // The deterministic trace agrees record for record, and timing
        // never leaks into it: the self-profiler has its own sink.
        prop_assert!(
            !timed_records.iter().any(|r| matches!(r, Record::Timing(_))),
            "timing records leaked into the deterministic trace"
        );
        prop_assert_eq!(plain_records, timed_records);
        // The search journal is bit-identical line for line.
        prop_assert!(!plain_journal.is_empty(), "journal captured the run");
        prop_assert_eq!(plain_journal, timed_journal);
        // The phase tree observed the run and conserves time.
        let root = timing.snapshot().expect("enabled timing snapshots");
        prop_assert!(root.is_conserved(), "children exceed parent time");
        prop_assert!(
            root.find("loop_stage").is_some(),
            "loop stage was profiled"
        );
    }
}
