//! Property tests for the durable-store integration (ISSUE 7): for any
//! seed and worker count, (a) attaching a cold store never changes what
//! the search finds, (b) a warm rerun against that store short-circuits
//! to a bit-identical winner with zero measurements, and (c) a store
//! wedged by a mid-run torn write degrades to store-less behavior
//! instead of corrupting the run — and the segment recovers on reopen.

use std::sync::Arc;

use alt_autotune::{tune_graph, TuneConfig};
use alt_sim::intel_cpu;
use alt_store::faults::{FailAppend, IoFault};
use alt_store::{verify_path, Store};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};
use proptest::prelude::*;

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([32]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    g
}

fn base_cfg(seed: u64, jobs: usize) -> TuneConfig {
    TuneConfig {
        joint_budget: 10,
        loop_budget: 10,
        batch: 8,
        topk: 2,
        free_input_layouts: true,
        seed,
        jobs,
        ..TuneConfig::default()
    }
}

fn store_at(tag: &str) -> (std::path::PathBuf, Arc<Store>) {
    let d = std::env::temp_dir().join(format!(
        "alt-autotune-store-proptest-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).expect("mkdir");
    let path = d.join("store.alts");
    let store = Arc::new(Store::open(&path).expect("open store"));
    (path, store)
}

/// Everything the search decides, as one comparable value. The winning
/// plan + schedules compare by the fingerprint of the program they
/// lower to (LayoutPlan's Debug order is map-order-dependent; the
/// lowered program is the semantic content).
fn outcome(g: &Graph, r: &alt_autotune::tuner::TuneResult) -> (u64, Vec<(u64, f64)>, u64, u64) {
    (
        r.latency.to_bits(),
        r.history.clone(),
        r.measurements,
        alt_loopir::program_fingerprint(&alt_loopir::lower(g, &r.plan, &r.sched)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cold store attachment is invisible to the search; the warm rerun
    /// replays the identical winner for free — at 1 or 8 workers.
    #[test]
    fn warm_start_is_bit_identical_to_cold(
        seed in 0u64..10_000,
        wide in any::<bool>(),
    ) {
        let jobs = if wide { 8 } else { 1 };
        let g = conv_graph();

        let bare = tune_graph(&g, intel_cpu(), base_cfg(seed, jobs));
        prop_assert!(!bare.warm_start);
        prop_assert_eq!((bare.store_hits, bare.store_misses), (0, 0));

        let (path, store) = store_at(&format!("warm-{seed}-{jobs}"));
        let cold = tune_graph(&g, intel_cpu(), TuneConfig {
            store: Some(store.clone()),
            ..base_cfg(seed, jobs)
        });
        prop_assert!(!cold.warm_start);
        prop_assert_eq!(cold.store_hits, 0);
        prop_assert!(cold.store_misses > 0);
        prop_assert_eq!(outcome(&g, &cold), outcome(&g, &bare));

        // Same handle and a fresh handle both serve the warm start (the
        // writer lock is exclusive, so drop the old handle first).
        let mut handle = Some(store);
        for reopen in [false, true] {
            let store = match handle.take() {
                Some(s) if !reopen => s,
                _ => Arc::new(Store::open(&path).expect("reopen store")),
            };
            let warm = tune_graph(&g, intel_cpu(), TuneConfig {
                store: Some(store),
                ..base_cfg(seed, jobs)
            });
            prop_assert!(warm.warm_start);
            prop_assert_eq!(warm.measurements, 0);
            prop_assert!(warm.history.is_empty());
            prop_assert_eq!(warm.latency.to_bits(), cold.latency.to_bits());
            prop_assert_eq!(
                alt_loopir::program_fingerprint(&alt_loopir::lower(&g, &warm.plan, &warm.sched)),
                alt_loopir::program_fingerprint(&alt_loopir::lower(&g, &cold.plan, &cold.sched))
            );
        }

        // Worker count changes nothing: a warm start from this store at
        // the other width lands on the same winner bits.
        let other = if wide { 1 } else { 8 };
        let cross = tune_graph(&g, intel_cpu(), TuneConfig {
            store: Some(Arc::new(Store::open(&path).expect("reopen store"))),
            ..base_cfg(seed, other)
        });
        prop_assert!(cross.warm_start);
        prop_assert_eq!(cross.latency.to_bits(), cold.latency.to_bits());
    }

    /// A store that dies mid-run (torn write at any early append, which
    /// wedges the handle) must not change the search result, and its
    /// segment must recover to a clean valid prefix on reopen.
    #[test]
    fn wedged_store_degrades_to_store_less_search(
        seed in 0u64..10_000,
        crash_at in 0u64..12,
        keep in 0usize..21,
    ) {
        let g = conv_graph();
        let bare = tune_graph(&g, intel_cpu(), base_cfg(seed, 1));

        let d = std::env::temp_dir().join(format!(
            "alt-autotune-store-proptest-wedge-{seed}-{crash_at}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("mkdir");
        let path = d.join("store.alts");
        let hook = Arc::new(FailAppend::new(crash_at, IoFault::Torn { keep }));
        let store =
            Arc::new(Store::open_with_faults(&path, hook).expect("open faulted store"));

        let hurt = tune_graph(&g, intel_cpu(), TuneConfig {
            store: Some(store.clone()),
            ..base_cfg(seed, 1)
        });
        prop_assert!(store.is_wedged());
        prop_assert!(!hurt.warm_start);
        prop_assert_eq!(outcome(&g, &hurt), outcome(&g, &bare));
        drop(store);

        // The torn tail quarantines on the next open; whatever records
        // landed before the tear are intact and the store is writable.
        let recovered = Store::open(&path).expect("recovering open");
        prop_assert_eq!(recovered.recovery().valid_records as u64, crash_at);
        prop_assert!(!recovered.is_wedged());
        drop(recovered);
        prop_assert!(verify_path(&path).expect("verify").clean());
    }
}
