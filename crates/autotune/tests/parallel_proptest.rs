//! Property-based test for the parallel measurement engine: for any
//! seed, fault rate, and worker count, tuning with `jobs = N` must be
//! bit-identical to `jobs = 1` — the same [`TuneResult`], the same
//! telemetry record sequence (wall-clock spans excepted), the same
//! budget and cache accounting, and byte-identical checkpoints. Workers
//! only prewarm the memoized simulation cache; every RNG draw, fault,
//! retry, and budget unit stays on the sequential accounting path.

use std::sync::Arc;

use proptest::prelude::*;

use alt_autotune::{tune_graph, FaultConfig, TuneConfig, TuneResult};
use alt_sim::intel_cpu;
use alt_telemetry::{MemorySink, Record, Telemetry};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([32]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    g
}

/// Tunes with a full trace and a search journal attached plus periodic
/// checkpoints, returning the result, every telemetry record that is
/// not a wall-clock span/event, and the journal as JSONL lines.
fn traced(seed: u64, rate: f64, jobs: usize, ck: &str) -> (TuneResult, Vec<Record>, Vec<String>) {
    let sink = Arc::new(MemorySink::new());
    let (journal, jsink) = alt_journal::Journal::memory();
    let cfg = TuneConfig {
        joint_budget: 12,
        loop_budget: 12,
        batch: 8,
        topk: 2,
        free_input_layouts: true,
        seed,
        jobs,
        telemetry: Telemetry::new(sink.clone()),
        journal,
        faults: (rate > 0.0).then(|| FaultConfig::uniform(rate)),
        checkpoint_path: Some(ck.to_string()),
        checkpoint_every: 8,
        ..TuneConfig::default()
    };
    let result = tune_graph(&conv_graph(), intel_cpu(), cfg);
    let records = sink
        .records()
        .into_iter()
        .filter(|r| !matches!(r, Record::Span(_) | Record::Event(_)))
        .collect();
    (result, records, jsink.lines())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_job_count_is_bit_identical_to_sequential(
        seed in 0u64..10_000,
        jobs_sel in 0usize..2,
        faulted in any::<bool>(),
    ) {
        let jobs = [2usize, 8][jobs_sel];
        let rate = if faulted { 0.2 } else { 0.0 };
        let dir = std::env::temp_dir().join("alt-par-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = |tag: &str| {
            dir.join(format!(
                "ck-{}-{seed}-{jobs}-{faulted}-{tag}.json",
                std::process::id()
            ))
            .to_str()
            .unwrap()
            .to_string()
        };
        let (ck_seq, ck_par) = (ck("seq"), ck("par"));
        let (seq, seq_records, seq_journal) = traced(seed, rate, 1, &ck_seq);
        let (par, par_records, par_journal) = traced(seed, rate, jobs, &ck_par);

        // The tuning outcome is identical down to the float bits.
        prop_assert_eq!(seq.latency.to_bits(), par.latency.to_bits());
        prop_assert_eq!(seq.measurements, par.measurements);
        prop_assert_eq!(&seq.history, &par.history);
        // Cache accounting does not depend on prewarming: a hit means
        // "this budgeted measurement repeated an earlier one" either way.
        prop_assert_eq!(
            (seq.cache_hits, seq.cache_misses),
            (par.cache_hits, par.cache_misses)
        );
        // Layout and schedule decisions agree (via the structured log,
        // which serializes per-tensor layouts and budget accounting).
        let g = conv_graph();
        prop_assert_eq!(seq.to_log(&g), par.to_log(&g));
        // The full telemetry transcript agrees record for record —
        // measurements, failures, retries, PPO/cost-model updates, and
        // flushed counters. Only wall-clock spans may differ.
        prop_assert_eq!(seq_records, par_records);
        // The search journal is bit-identical line for line: every
        // candidate, provenance tag, outcome, and budget index agrees,
        // and the header deliberately omits the worker count.
        prop_assert!(!seq_journal.is_empty(), "journal captured the run");
        prop_assert_eq!(seq_journal, par_journal);
        // Periodic checkpoints are byte-identical too: a parallel run
        // can be resumed by a sequential one and vice versa.
        let a = std::fs::read(&ck_seq).ok();
        let b = std::fs::read(&ck_par).ok();
        std::fs::remove_file(&ck_seq).ok();
        std::fs::remove_file(&ck_par).ok();
        prop_assert!(a.is_some(), "sequential run wrote a checkpoint");
        prop_assert_eq!(a, b);
    }
}
