//! Conservation laws for the search journal: every budget unit the
//! tuner spends is visible in the journal, and every candidate the
//! tuner generates appears exactly once with a terminal outcome.
//!
//! The load-bearing identity is `sum(candidate.attempts) ==
//! result.measurements`: the journal's per-candidate budget accounting
//! tiles the strict budget ledger with no gaps and no overlaps. In a
//! fault-free run every attempt succeeds, so the identity sharpens to
//! `#measured + #cache_hit == budget`.

use alt_autotune::{tune_graph, FaultConfig, TuneConfig, TuneResult};
use alt_journal::{outcome, JournalRecord, MemoryJournal};
use alt_sim::intel_cpu;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};
use std::sync::Arc;

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([32]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    g
}

const JOINT_BUDGET: u64 = 40;
const LOOP_BUDGET: u64 = 40;

fn journaled_run(seed: u64, fault_rate: f64) -> (TuneResult, Arc<MemoryJournal>) {
    let (journal, sink) = alt_journal::Journal::memory();
    let cfg = TuneConfig {
        joint_budget: JOINT_BUDGET,
        loop_budget: LOOP_BUDGET,
        batch: 8,
        topk: 2,
        free_input_layouts: true,
        seed,
        journal,
        faults: (fault_rate > 0.0).then(|| FaultConfig::uniform(fault_rate)),
        ..TuneConfig::default()
    };
    let result = tune_graph(&conv_graph(), intel_cpu(), cfg);
    (result, sink)
}

const TERMINAL_OUTCOMES: &[&str] = &[
    outcome::MEASURED,
    outcome::CACHE_HIT,
    outcome::FAILED,
    outcome::VERIFY_REJECTED,
    outcome::LOWER_FAILED,
    outcome::QUARANTINED,
    outcome::SKIPPED,
];

/// Shared invariants that hold with or without fault injection.
/// Returns the per-outcome counts for scenario-specific checks.
fn check_conservation(
    result: &TuneResult,
    records: &[JournalRecord],
) -> std::collections::BTreeMap<String, u64> {
    // Exactly one header, first; exactly one summary, last.
    assert!(
        matches!(records.first(), Some(JournalRecord::Header(_))),
        "journal starts with a header"
    );
    assert!(
        matches!(records.last(), Some(JournalRecord::Summary(_))),
        "journal ends with a summary"
    );
    let headers = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Header(_)))
        .count();
    let summaries = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Summary(_)))
        .count();
    assert_eq!((headers, summaries), (1, 1));

    let header = match &records[0] {
        JournalRecord::Header(h) => h,
        _ => unreachable!(),
    };
    assert_eq!(header.joint_budget, JOINT_BUDGET);
    assert_eq!(header.loop_budget, LOOP_BUDGET);

    let summary = match records.last() {
        Some(JournalRecord::Summary(s)) => s,
        _ => unreachable!(),
    };
    assert_eq!(summary.measurements, result.measurements);

    let mut spent = 0u64;
    let mut last_budget_end = 0u64;
    let mut counts = std::collections::BTreeMap::<String, u64>::new();
    for r in records {
        let JournalRecord::Candidate(c) = r else {
            continue;
        };
        assert!(
            TERMINAL_OUTCOMES.contains(&c.outcome.as_str()),
            "unknown outcome `{}`",
            c.outcome
        );
        *counts.entry(c.outcome.clone()).or_default() += 1;
        spent += c.attempts;

        // The budget axis is monotone and every candidate's attempts
        // land inside the window its budget_end closes.
        assert!(
            c.budget_end >= last_budget_end,
            "budget_end regressed: {} -> {}",
            last_budget_end,
            c.budget_end
        );
        assert!(c.attempts <= c.budget_end);
        last_budget_end = c.budget_end;

        match c.outcome.as_str() {
            outcome::MEASURED | outcome::CACHE_HIT => {
                assert!(c.attempts >= 1, "{} outcome consumed budget", c.outcome);
                let lat = c.latency_s.expect("successful candidate has a latency");
                assert!(lat.is_finite() && lat > 0.0);
                // Fingerprints round-trip through the memo-cache key
                // derivation: a journal consumer can re-derive the
                // cache key from the header's profile fingerprint.
                let program_fp = c.program_fp.expect("simulated candidate has a program_fp");
                let cache_key = c.cache_key.expect("simulated candidate has a cache_key");
                assert_eq!(
                    alt_sim::compose_cache_key(header.profile_fp, program_fp),
                    cache_key
                );
            }
            outcome::FAILED => {
                assert!(c.attempts >= 1, "failed candidate burned budget");
                assert!(c.error.is_some(), "failed candidate records its error kind");
                assert_eq!(c.latency_s, None);
            }
            _ => {
                // verify_rejected / lower_failed / quarantined / skipped
                // are dropped before any budget is spent.
                assert_eq!(c.attempts, 0, "{} outcome is zero-budget", c.outcome);
                assert_eq!(c.latency_s, None);
                if c.outcome == outcome::VERIFY_REJECTED {
                    assert!(c.vcode.is_some(), "rejection carries its V-code");
                }
            }
        }
    }

    // THE conservation law: journal attempts tile the budget ledger.
    assert_eq!(
        spent, result.measurements,
        "sum of journal attempts == budget consumed"
    );
    assert_eq!(
        last_budget_end, result.measurements,
        "final budget_end == budget consumed"
    );
    counts
}

#[test]
fn fault_free_journal_conserves_budget() {
    let (result, sink) = journaled_run(7, 0.0);
    let records = sink.records();
    let counts = check_conservation(&result, &records);

    // Strict budget: the run consumes exactly joint + loop.
    assert_eq!(result.measurements, JOINT_BUDGET + LOOP_BUDGET);
    // Fault-free, every budget unit is a success, so the measured and
    // cache-hit candidates partition the budget exactly.
    let measured = counts.get(outcome::MEASURED).copied().unwrap_or(0);
    let hits = counts.get(outcome::CACHE_HIT).copied().unwrap_or(0);
    assert_eq!(measured + hits, result.measurements);
    assert_eq!(counts.get(outcome::FAILED), None, "no faults injected");

    // And each successful candidate took exactly one unit.
    for r in &records {
        if let JournalRecord::Candidate(c) = r {
            if c.outcome == outcome::MEASURED || c.outcome == outcome::CACHE_HIT {
                assert_eq!(c.attempts, 1);
            }
        }
    }
}

#[test]
fn faulted_journal_conserves_budget() {
    let (result, sink) = journaled_run(7, 0.25);
    let records = sink.records();
    let counts = check_conservation(&result, &records);

    // With a 25% fault rate some candidates must have needed retries or
    // failed outright; the conservation law in `check_conservation`
    // already proved the retry units are all accounted for.
    let retried = records.iter().any(|r| {
        matches!(r, JournalRecord::Candidate(c)
            if c.attempts > 1 || c.outcome == outcome::FAILED)
    });
    assert!(retried, "fault injection left a trace in the journal");
    // Successes alone no longer cover the whole budget.
    let measured = counts.get(outcome::MEASURED).copied().unwrap_or(0);
    let hits = counts.get(outcome::CACHE_HIT).copied().unwrap_or(0);
    assert!(measured + hits <= result.measurements);
}

#[test]
fn every_record_survives_the_wire() {
    // The in-memory journal and its JSONL rendering describe the same
    // run: serialize, reparse, compare.
    let (_, sink) = journaled_run(11, 0.1);
    let text = sink.lines().join("\n");
    let reparsed = alt_journal::parse_journal(&text).expect("journal parses");
    assert_eq!(reparsed, sink.records());
}
