//! Property-based test for checkpoint/resume: for any seed, halt point,
//! and fault rate, a run killed at a checkpoint and resumed from the
//! serialized file must reach exactly the same final best latency (and
//! budget count) as the uninterrupted run.

use proptest::prelude::*;

use alt_autotune::{tune_graph, FaultConfig, TuneConfig, TunerCheckpoint};
use alt_sim::intel_cpu;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([32]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    g
}

fn base_cfg(seed: u64, fault_rate: f64) -> TuneConfig {
    TuneConfig {
        joint_budget: 12,
        loop_budget: 12,
        batch: 8,
        topk: 2,
        free_input_layouts: true,
        seed,
        faults: if fault_rate > 0.0 {
            Some(FaultConfig::uniform(fault_rate))
        } else {
            None
        },
        ..TuneConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn resume_reaches_same_best_latency(
        seed in 0u64..10_000,
        halt in 1u64..24,
        faulted in any::<bool>(),
    ) {
        let g = conv_graph();
        let rate = if faulted { 0.2 } else { 0.0 };
        let (full_journal, full_sink) = alt_journal::Journal::memory();
        let full = tune_graph(&g, intel_cpu(), TuneConfig {
            journal: full_journal,
            ..base_cfg(seed, rate)
        });

        let dir = std::env::temp_dir().join("alt-ck-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("ck-{}-{seed}-{halt}-{faulted}.json", std::process::id()))
            .to_str()
            .unwrap()
            .to_string();

        let (halted_journal, halted_sink) = alt_journal::Journal::memory();
        let halted = tune_graph(&g, intel_cpu(), TuneConfig {
            checkpoint_path: Some(path.clone()),
            halt_after: Some(halt),
            journal: halted_journal,
            ..base_cfg(seed, rate)
        });

        // Halting can only ever be early or a no-op, never overspend.
        prop_assert!(halted.measurements <= full.measurements);

        if std::path::Path::new(&path).exists() {
            let ck = TunerCheckpoint::load(&path).unwrap();
            let (resumed_journal, resumed_sink) = alt_journal::Journal::memory();
            let resumed = tune_graph(&g, intel_cpu(), TuneConfig {
                resume: Some(ck),
                journal: resumed_journal,
                ..base_cfg(seed, rate)
            });
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(resumed.measurements, full.measurements);
            prop_assert_eq!(resumed.latency, full.latency);
            prop_assert_eq!(resumed.history, full.history);
            // The halted run's journal plus the resumed run's journal is
            // the uninterrupted run's journal, byte for byte: the header
            // is written only by the first leg, the summary only by the
            // last, and the checkpoint cuts before the iteration whose
            // records the resumed leg re-emits.
            let mut stitched = halted_sink.lines();
            stitched.extend(resumed_sink.lines());
            prop_assert_eq!(stitched, full_sink.lines());
        } else {
            // The halt point fell beyond the run's total budget, so no
            // checkpoint was cut; the "halted" run is the full run.
            prop_assert_eq!(halted.measurements, full.measurements);
            prop_assert_eq!(halted.latency, full.latency);
            prop_assert_eq!(halted_sink.lines(), full_sink.lines());
        }
    }
}
