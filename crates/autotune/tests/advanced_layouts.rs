//! End-to-end coverage for the opt-in advanced layout knob (`xform`):
//! the tuner explores XOR swizzle, block-diagonal remap, and Morton
//! interleave alongside the tiling factors, every visited point stays
//! decodable, the committed winner passes the integer-set legality
//! engine, and the winning program executes bit-identically on the
//! native executor and the TIR interpreter.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use alt_autotune::tuner::LayoutSearch;
use alt_autotune::{build_layout_template_ex, tune_graph, TuneConfig, TuneResult};
use alt_journal::{JournalRecord, MemoryJournal};
use alt_sim::intel_cpu;
use alt_tensor::exec::random_bindings;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};
use std::sync::Arc;

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 18, 18]));
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let _ = ops::conv2d(&mut g, x, w, ConvCfg::default());
    g
}

fn tuned(advanced: bool, seed: u64) -> (TuneResult, Arc<MemoryJournal>) {
    let (journal, sink) = alt_journal::Journal::memory();
    let cfg = TuneConfig {
        joint_budget: 60,
        loop_budget: 40,
        batch: 16,
        topk: 4,
        advanced_layouts: advanced,
        layout_search: LayoutSearch::Random,
        free_input_layouts: true,
        seed,
        journal,
        ..TuneConfig::default()
    };
    (tune_graph(&conv_graph(), intel_cpu(), cfg), sink)
}

#[test]
fn advanced_tuning_explores_xforms_and_winner_is_bit_exact() {
    let g = conv_graph();
    let op = g.complex_ops()[0];
    let base_knobs = build_layout_template_ex(&g, op, 1, false)
        .unwrap()
        .space
        .knobs
        .len();

    let (result, sink) = tuned(true, 3);
    assert!(result.latency.is_finite() && result.latency > 0.0);

    // Every layout visit carries the extra trailing xform knob, and the
    // random search actually explores more than one transform choice.
    let mut xform_indices = BTreeSet::new();
    for r in sink.records() {
        if let JournalRecord::LayoutVisit(v) = r {
            assert_eq!(
                v.point.len(),
                base_knobs + 1,
                "advanced visit points carry the xform knob"
            );
            xform_indices.insert(*v.point.last().unwrap());
        }
    }
    assert!(
        xform_indices.len() >= 2,
        "expected more than one explored xform value, saw {xform_indices:?}"
    );

    // The committed winner must be statically legal and bit-exact:
    // native executor vs reference interpreter on real data.
    let program = alt_loopir::lower(&g, &result.plan, &result.sched);
    let diags = alt_verify::verify_program(&g, &result.plan, &program);
    assert!(diags.is_empty(), "winner has diagnostics: {diags:?}");
    let bindings = random_bindings(&g, 11);
    let want = alt_loopir::run_program(&program, &g, &result.plan, &bindings);
    let kernel = alt_codegen::compile(&program, &intel_cpu());
    let (got, _) = kernel.run(&program, &g, &result.plan, &bindings, 2);
    assert_eq!(want.len(), got.len());
    for (t, w) in &want {
        let n = &got[t];
        for (a, b) in w.data().iter().zip(n.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "winner not bit-exact");
        }
    }
}

#[test]
fn default_tuning_is_unchanged_by_the_feature() {
    // With the flag off the template must not grow: visited points keep
    // the original knob count, so seeded baselines stay reproducible.
    let g = conv_graph();
    let op = g.complex_ops()[0];
    let base_knobs = build_layout_template_ex(&g, op, 1, false)
        .unwrap()
        .space
        .knobs
        .len();
    let (result, sink) = tuned(false, 3);
    assert!(result.latency.is_finite() && result.latency > 0.0);
    for r in sink.records() {
        if let JournalRecord::LayoutVisit(v) = r {
            assert_eq!(v.point.len(), base_knobs);
        }
    }
}
