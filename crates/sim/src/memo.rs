//! Memoized simulation: a thread-safe measurement cache keyed by the
//! canonical program fingerprint (PR 4 tentpole).
//!
//! The analytic [`Simulator`] is pure — the same lowered [`Program`] on
//! the same [`MachineProfile`] always produces bit-identical
//! [`Counters`]. The tuner re-simulates the same program many times:
//! incumbents are re-measured every round, PPO seeds repeat across
//! reps, finalists are re-assessed, and neighborhoods revisit points.
//! [`SimCache`] memoizes those simulations so repeats cost one hash
//! instead of a full model walk, and lets scoped worker threads prewarm
//! entries that the (strictly sequential, deterministic) accounting
//! path then consumes.
//!
//! Determinism contract:
//! * [`SimCache::try_profile`] is the *only* method that touches the
//!   hit/miss statistics; the tuner calls it exclusively from its
//!   measurement thread, so the counters are identical for `--jobs 1`
//!   and `--jobs N`.
//! * [`SimCache::prewarm`] is stat-silent and idempotent: duplicate
//!   computations of the same pure program insert the same bits, so
//!   racing workers are harmless.
//!
//! A cached entry is invalidated by *nothing* — the key covers every
//! input of the pure simulation (program structure + machine profile),
//! so an entry can never go stale. A new layout, schedule, fusion
//! decision, or machine profile produces a new key instead.
//!
//! With a durable [`Store`] attached (PR 7), the cache additionally
//! consults the store before simulating and publishes fresh results into
//! it — turning the in-memory memo table into the warm tier of a
//! cross-run cache. The store changes *what work happens* (a stored
//! result skips the simulation) but never *what the run records*: the
//! hit/miss transcript, every returned `Counters`, and the store's own
//! hit/miss statistics are all accounted exclusively inside
//! [`SimCache::try_profile`], so they are bit-identical for `--jobs 1`
//! and `--jobs N`, with or without prewarming, cold store or warm.
//! Store *appends* likewise happen only on the sequential accounting
//! path (the first budgeted lookup of each entry), so two identical runs
//! write byte-identical segments.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use alt_store::{kind, Store};
use alt_telemetry::CounterRegistry;

use alt_error::AltError;
use alt_loopir::hash::Fnv1a;
use alt_loopir::{program_fingerprint, Program};

use crate::analytic::{Counters, Simulator};
use crate::profiles::{CacheLevel, MachineProfile};

/// Fingerprint of a machine profile: every field that the analytic
/// model reads, floats by bit pattern.
pub fn profile_fingerprint(p: &MachineProfile) -> u64 {
    let mut h = Fnv1a::new();
    h.tag(0x4d); // 'M'
    h.str(p.name);
    h.tag(match p.kind {
        crate::profiles::MachineKind::Cpu => 0,
        crate::profiles::MachineKind::Gpu => 1,
    });
    h.u64(p.cores as u64);
    h.f64(p.freq_ghz);
    h.u64(p.vector_lanes as u64);
    h.f64(p.flops_per_cycle);
    hash_level(&mut h, &p.l1);
    hash_level(&mut h, &p.l2);
    h.f64(p.dram_bytes_per_cycle);
    h.f64(p.l2_latency_cycles);
    h.f64(p.mlp);
    h.f64(p.dram_latency_cycles);
    h.f64(p.parallel_efficiency);
    h.f64(p.group_overhead_us);
    h.f64(p.bank_conflict_penalty);
    h.finish()
}

/// Composes a memo-cache key from a profile fingerprint and a program
/// fingerprint. Pure: `SimCache::key` is exactly
/// `compose_cache_key(cache.profile_fp(), program_fingerprint(p))`, so
/// journal consumers can round-trip recorded fingerprints back into
/// cache keys without a cache instance.
pub fn compose_cache_key(profile_fp: u64, program_fp: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(profile_fp);
    h.u64(program_fp);
    h.finish()
}

fn hash_level(h: &mut Fnv1a, l: &CacheLevel) {
    h.tag(0x43); // 'C'
    h.u64(l.size_bytes);
    h.u64(l.line_bytes);
    h.u64(l.assoc as u64);
    h.u64(l.prefetch_lines as u64);
    h.f64(l.bytes_per_cycle);
}

/// Bytes of an encoded measurement payload: profile fingerprint +
/// program fingerprint + the ten `Counters` fields, all little-endian
/// 64-bit (floats by bit pattern, so the round-trip is bit-exact).
pub const MEASUREMENT_PAYLOAD_LEN: usize = 12 * 8;

/// Encodes a measurement for the durable store: the fingerprint pair the
/// composed key was built from (stored so lookups can reject hash
/// collisions and `altc store export` can attribute records) followed by
/// the simulator counters.
pub fn encode_measurement(profile_fp: u64, program_fp: u64, c: &Counters) -> Vec<u8> {
    let mut out = Vec::with_capacity(MEASUREMENT_PAYLOAD_LEN);
    out.extend_from_slice(&profile_fp.to_le_bytes());
    out.extend_from_slice(&program_fp.to_le_bytes());
    for v in [
        c.instructions,
        c.flops,
        c.l1_loads,
        c.l1_stores,
        c.l1_misses,
        c.l2_misses,
        c.prefetch_issued,
        c.prefetch_useful,
        c.simd_weighted,
        c.latency_s,
    ] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a stored measurement payload back into
/// `(profile_fp, program_fp, counters)`. Returns `None` on any size
/// mismatch — a foreign or truncated payload is treated as a store miss,
/// never an error.
pub fn decode_measurement(bytes: &[u8]) -> Option<(u64, u64, Counters)> {
    if bytes.len() != MEASUREMENT_PAYLOAD_LEN {
        return None;
    }
    let word = |i: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
        u64::from_le_bytes(b)
    };
    let f = |i: usize| f64::from_bits(word(i));
    let c = Counters {
        instructions: f(2),
        flops: f(3),
        l1_loads: f(4),
        l1_stores: f(5),
        l1_misses: f(6),
        l2_misses: f(7),
        prefetch_issued: f(8),
        prefetch_useful: f(9),
        simd_weighted: f(10),
        latency_s: f(11),
    };
    Some((word(0), word(1), c))
}

/// One memo-table entry.
#[derive(Clone, Copy)]
struct Entry {
    c: Counters,
    /// Whether a budgeted lookup has seen this entry yet.
    accounted: bool,
    /// Whether the counters came out of the durable store (true) or a
    /// fresh simulation (false). Decides, at the accounted transition,
    /// which store statistic the entry bumps and whether it publishes.
    from_store: bool,
}

/// A shared, thread-safe memo table of simulated measurements.
///
/// Each entry tracks whether a *budgeted* lookup has seen it yet: a
/// prewarmed entry's first [`SimCache::try_profile`] counts as a miss
/// (it is a first-time measurement that merely ran off-thread), so the
/// hit/miss statistics mean "this measurement repeated an earlier one"
/// and are bit-identical whether or not workers prewarmed anything.
pub struct SimCache {
    profile_fp: u64,
    map: Mutex<HashMap<u64, Entry>>,
    /// Keys a previous (checkpointed) leg of this run already accounted.
    /// A resumed run starts with an empty memo table, but its hit/miss
    /// transcript must continue the interrupted run's: re-simulating a
    /// key the predecessor paid for is a hit, not a miss.
    resumed: Mutex<HashSet<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// The durable cross-run tier, when attached.
    store: Mutex<Option<Arc<Store>>>,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    /// Wall-clock latency histograms (memo lookup vs cold simulate vs
    /// store serve), when the timing layer attached a registry.
    /// Observation-only: never consulted by the lookup path.
    registry: Mutex<Option<Arc<CounterRegistry>>>,
}

impl SimCache {
    /// An empty cache bound to one machine profile.
    pub fn new(profile: &MachineProfile) -> Self {
        SimCache {
            profile_fp: profile_fingerprint(profile),
            map: Mutex::new(HashMap::new()),
            resumed: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store: Mutex::new(None),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            registry: Mutex::new(None),
        }
    }

    /// Fingerprint of the machine profile this cache is bound to.
    pub fn profile_fp(&self) -> u64 {
        self.profile_fp
    }

    /// Attaches the durable store tier. Call once, before tuning starts:
    /// attaching mid-run would make the store statistics depend on when.
    pub fn attach_store(&self, store: Arc<Store>) {
        *self.store.lock().unwrap() = Some(store);
    }

    /// Whether a durable store is attached.
    pub fn has_store(&self) -> bool {
        self.store.lock().unwrap().is_some()
    }

    /// Attaches a wall-clock latency registry: every budgeted lookup
    /// records how long it took under `memo.lookup_us` (warm table),
    /// `memo.store_serve_us` (served from the durable store), or
    /// `memo.cold_simulate_us` (full model walk). Pure observation — it
    /// never changes what the lookup returns or accounts.
    pub fn attach_registry(&self, registry: Arc<CounterRegistry>) {
        *self.registry.lock().unwrap() = Some(registry);
    }

    /// Records elapsed micros since `t0` under `name`, if a registry is
    /// attached.
    fn observe_since(&self, name: &str, t0: Instant) {
        if let Some(reg) = self.registry.lock().unwrap().as_ref() {
            reg.observe(name, t0.elapsed().as_micros() as f64);
        }
    }

    fn store_handle(&self) -> Option<Arc<Store>> {
        self.store.lock().unwrap().clone()
    }

    /// Looks `key` up in the durable store, validating the stored
    /// fingerprint pair against the lookup's (a composed-key collision
    /// or foreign payload reads as a miss, not as wrong counters).
    fn store_lookup(&self, key: u64, program_fp: u64) -> Option<Counters> {
        let store = self.store_handle()?;
        let payload = store.get(kind::MEASUREMENT, key)?;
        let (stored_profile, stored_program, c) = decode_measurement(&payload)?;
        if stored_profile == self.profile_fp && stored_program == program_fp {
            Some(c)
        } else {
            None
        }
    }

    /// Runs the store-side bookkeeping of an entry's accounted
    /// transition: an entry born from the store is a store hit; a
    /// freshly simulated one is a store miss and is published. Called
    /// only from `try_profile` (the sequential accounting path), so both
    /// the statistics and the segment's append order are deterministic
    /// and jobs-invariant. A failed publish (disk full, torn append) is
    /// survivable by design: the run degrades to store-less operation
    /// for that record and keeps tuning.
    fn account_store(&self, key: u64, program_fp: u64, c: &Counters, from_store: bool) {
        let Some(store) = self.store_handle() else {
            return;
        };
        if from_store {
            self.store_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.store_misses.fetch_add(1, Ordering::Relaxed);
            let payload = encode_measurement(self.profile_fp, program_fp, c);
            let _ = store.put(kind::MEASUREMENT, key, &payload);
        }
    }

    /// The cache key of a program under this cache's profile.
    pub fn key(&self, program: &Program) -> u64 {
        compose_cache_key(self.profile_fp, program_fingerprint(program))
    }

    /// Simulates `program`, consulting the memo table first.
    ///
    /// Counts exactly one hit or one miss per call. A hit is a lookup of
    /// an entry that an earlier `try_profile` call already accounted; a
    /// prewarmed-but-never-accounted entry counts as a miss (its
    /// simulation simply ran off-thread) so the statistics do not depend
    /// on whether — or how aggressively — workers prewarmed. Errors
    /// (non-finite model output) are never cached and count as misses.
    /// Call this only from the accounting thread — the hit/miss sequence
    /// is part of the deterministic run transcript.
    pub fn try_profile(
        &self,
        sim: &Simulator,
        program: &Program,
    ) -> Result<(Counters, bool), AltError> {
        let t0 = Instant::now();
        let program_fp = program_fingerprint(program);
        let key = compose_cache_key(self.profile_fp, program_fp);
        // A key restored via `restore_accounted` was paid for by the
        // interrupted predecessor leg, so this lookup continues its
        // transcript as a hit even though the table itself is cold.
        let prior = self.resumed.lock().unwrap().contains(&key);
        if let Some(e) = self.map.lock().unwrap().get_mut(&key) {
            let snap = *e;
            if !snap.accounted {
                // First budgeted sight of a prewarmed entry: run the
                // store bookkeeping its off-thread insertion deferred.
                e.accounted = true;
                self.account_store(key, program_fp, &snap.c, snap.from_store);
            }
            if snap.accounted || prior {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.observe_since("memo.lookup_us", t0);
                return Ok((snap.c, true));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.observe_since("memo.lookup_us", t0);
            return Ok((snap.c, false));
        }
        if prior {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // Warm tier: a stored result makes the simulation unnecessary —
        // but accounts exactly the hit/miss a cold run would.
        if let Some(c) = self.store_lookup(key, program_fp) {
            self.account_store(key, program_fp, &c, true);
            self.map.lock().unwrap().insert(
                key,
                Entry {
                    c,
                    accounted: true,
                    from_store: true,
                },
            );
            self.observe_since("memo.store_serve_us", t0);
            return Ok((c, prior));
        }
        let c = sim.try_profile_counters(program)?;
        self.account_store(key, program_fp, &c, false);
        self.map.lock().unwrap().insert(
            key,
            Entry {
                c,
                accounted: true,
                from_store: false,
            },
        );
        self.observe_since("memo.cold_simulate_us", t0);
        Ok((c, prior))
    }

    /// Simulates `program` into the table without touching statistics.
    ///
    /// Safe to call from any number of worker threads: the simulation is
    /// pure, so concurrent duplicate inserts write identical bits, and a
    /// failing simulation simply leaves no entry (the accounting path
    /// re-derives the error deterministically). Never downgrades an
    /// already-accounted entry.
    pub fn prewarm(&self, sim: &Simulator, program: &Program) {
        let program_fp = program_fingerprint(program);
        let key = compose_cache_key(self.profile_fp, program_fp);
        if self.map.lock().unwrap().contains_key(&key) {
            return;
        }
        // Peek the durable store first — stat-silent, like the rest of
        // prewarming; the accounted transition in `try_profile` settles
        // the store statistics (and any publish) deterministically.
        if let Some(c) = self.store_lookup(key, program_fp) {
            self.map.lock().unwrap().entry(key).or_insert(Entry {
                c,
                accounted: false,
                from_store: true,
            });
            return;
        }
        if let Ok(c) = sim.try_profile_counters(program) {
            self.map.lock().unwrap().entry(key).or_insert(Entry {
                c,
                accounted: false,
                from_store: false,
            });
        }
    }

    /// The keys whose measurements a budgeted lookup has accounted so
    /// far, sorted — checkpoint state, so a resumed run can continue
    /// this run's hit/miss transcript (see [`SimCache::restore_accounted`]).
    /// Includes restored keys the current leg has not re-touched yet, so
    /// checkpoints cut from a resumed leg stay complete.
    pub fn accounted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .map
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, e)| e.accounted)
            .map(|(&k, _)| k)
            .collect();
        keys.extend(self.resumed.lock().unwrap().iter().copied());
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Marks keys an earlier leg of the run already accounted: their
    /// next budgeted lookup reads as a hit (the repeat it genuinely is)
    /// even though this leg must re-simulate them.
    pub fn restore_accounted(&self, keys: &[u64]) {
        self.resumed.lock().unwrap().extend(keys.iter().copied());
    }

    /// Hits observed by [`SimCache::try_profile`].
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses observed by [`SimCache::try_profile`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Accounted measurements served from the durable store (0 when no
    /// store is attached). Like the memo statistics, store statistics
    /// move only at `try_profile` accounted transitions, so they are
    /// jobs- and prewarm-invariant.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Accounted measurements the durable store did not have — each one
    /// was simulated and published back (0 when no store is attached).
    pub fn store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// Number of memoized programs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("store", &self.has_store())
            .field("store_hits", &self.store_hits())
            .field("store_misses", &self.store_misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{all_profiles, intel_cpu};
    use alt_layout::{LayoutPlan, PropagationMode};
    use alt_loopir::lower;
    use alt_loopir::schedule::GraphSchedule;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, Shape};

    fn lowered() -> Program {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        lower(
            &g,
            &LayoutPlan::new(PropagationMode::Full),
            &GraphSchedule::naive(),
        )
    }

    // Worker threads hand programs and the shared cache across the
    // scope boundary, so the whole measurement closure must be Sync.
    #[test]
    fn shared_measurement_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
        assert_send_sync::<Simulator>();
        assert_send_sync::<SimCache>();
        assert_send_sync::<Graph>();
        assert_send_sync::<LayoutPlan>();
        assert_send_sync::<GraphSchedule>();
    }

    #[test]
    fn repeat_measurements_hit_and_return_identical_bits() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        let p = lowered();
        let (a, hit_a) = cache.try_profile(&sim, &p).unwrap();
        let (b, hit_b) = cache.try_profile(&sim, &p).unwrap();
        assert!(!hit_a && hit_b);
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!(a.latency_s.to_bits(), sim.measure(&p).to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prewarm_is_stat_silent_and_invisible_to_the_hit_miss_transcript() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        let p = lowered();
        cache.prewarm(&sim, &p);
        cache.prewarm(&sim, &p);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.len(), 1);
        // The first budgeted lookup of a prewarmed entry still reads as
        // a miss — exactly what an unwarmed run would record — so the
        // transcript is independent of prewarming.
        let (a, hit) = cache.try_profile(&sim, &p).unwrap();
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Only a genuine repeat is a hit.
        let (b, hit) = cache.try_profile(&sim, &p).unwrap();
        assert!(hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
    }

    #[test]
    fn concurrent_prewarm_converges_to_one_entry() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        let p = lowered();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.prewarm(&sim, &p));
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn restored_keys_continue_the_predecessor_transcript_as_hits() {
        let sim = Simulator::new(intel_cpu());
        let first_leg = SimCache::new(sim.profile());
        let p = lowered();
        let (a, hit) = first_leg.try_profile(&sim, &p).unwrap();
        assert!(!hit);
        let keys = first_leg.accounted_keys();
        assert_eq!(keys, vec![first_leg.key(&p)]);

        // A resumed leg starts cold but inherits the accounted keys: its
        // first lookup of the restored key is a hit with identical bits,
        // exactly what the uninterrupted run would have recorded.
        let second_leg = SimCache::new(sim.profile());
        second_leg.restore_accounted(&keys);
        let (b, hit) = second_leg.try_profile(&sim, &p).unwrap();
        assert!(hit, "restored key reads as a repeat");
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!((second_leg.hits(), second_leg.misses()), (1, 0));
        // The restored key stays in the accounted set for further cuts.
        assert_eq!(second_leg.accounted_keys(), keys);
        // And later repeats hit through the warm table as usual.
        let (_, hit) = second_leg.try_profile(&sim, &p).unwrap();
        assert!(hit);
    }

    fn tmp_store(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("alt-sim-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("mkdir");
        d.join("store.alts")
    }

    #[test]
    fn measurement_codec_roundtrips_bit_exactly() {
        let sim = Simulator::new(intel_cpu());
        let c = sim.try_profile_counters(&lowered()).unwrap();
        let bytes = encode_measurement(1, 2, &c);
        assert_eq!(bytes.len(), MEASUREMENT_PAYLOAD_LEN);
        let (profile_fp, program_fp, back) = decode_measurement(&bytes).unwrap();
        assert_eq!((profile_fp, program_fp), (1, 2));
        assert_eq!(back.latency_s.to_bits(), c.latency_s.to_bits());
        assert_eq!(back.instructions.to_bits(), c.instructions.to_bits());
        assert_eq!(back.simd_weighted.to_bits(), c.simd_weighted.to_bits());
        assert!(decode_measurement(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn cold_run_publishes_and_warm_run_serves_identical_bits() {
        let path = tmp_store("warm");
        let sim = Simulator::new(intel_cpu());
        let p = lowered();
        // Cold run: every accounted measurement is a store miss and gets
        // published exactly once (repeats publish nothing). Scoped so
        // its writer lock releases before the warm run opens.
        let a = {
            let cold = SimCache::new(sim.profile());
            cold.attach_store(Arc::new(Store::open(&path).expect("open")));
            let (a, _) = cold.try_profile(&sim, &p).unwrap();
            let _ = cold.try_profile(&sim, &p).unwrap();
            assert_eq!((cold.store_hits(), cold.store_misses()), (0, 1));
            a
        };
        // Warm run: a fresh cache over the same store serves the stored
        // bits without simulating, with an unchanged memo transcript.
        let warm = SimCache::new(sim.profile());
        warm.attach_store(Arc::new(Store::open(&path).expect("reopen")));
        let (b, hit) = warm.try_profile(&sim, &p).unwrap();
        assert!(!hit, "memo transcript is store-independent");
        assert_eq!((warm.hits(), warm.misses()), (0, 1));
        assert_eq!((warm.store_hits(), warm.store_misses()), (1, 0));
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!(a.l1_misses.to_bits(), b.l1_misses.to_bits());
        // The warm run added no records (read-only peek: the warm
        // cache's writer lock is still held).
        let store = Store::open_readonly(&path).expect("ro");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_prewarm_stays_stat_silent_until_accounted() {
        let path = tmp_store("prewarm");
        let sim = Simulator::new(intel_cpu());
        let p = lowered();
        {
            let seed = SimCache::new(sim.profile());
            seed.attach_store(Arc::new(Store::open(&path).expect("open")));
            seed.try_profile(&sim, &p).unwrap();
        }
        let cache = SimCache::new(sim.profile());
        cache.attach_store(Arc::new(Store::open(&path).expect("reopen")));
        cache.prewarm(&sim, &p);
        assert_eq!((cache.store_hits(), cache.store_misses()), (0, 0));
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // The accounted transition settles the store hit — the same
        // statistic the unwarmed lookup records.
        let _ = cache.try_profile(&sim, &p).unwrap();
        assert_eq!((cache.store_hits(), cache.store_misses()), (1, 0));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }

    #[test]
    fn storeless_cache_reports_zero_store_statistics() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        assert!(!cache.has_store());
        let p = lowered();
        let _ = cache.try_profile(&sim, &p).unwrap();
        let _ = cache.try_profile(&sim, &p).unwrap();
        assert_eq!((cache.store_hits(), cache.store_misses()), (0, 0));
    }

    #[test]
    fn attached_registry_classifies_lookup_latencies() {
        let path = tmp_store("timing");
        let sim = Simulator::new(intel_cpu());
        let p = lowered();
        {
            let seed = SimCache::new(sim.profile());
            seed.attach_store(Arc::new(Store::open(&path).expect("open")));
            seed.try_profile(&sim, &p).unwrap();
        }
        let cache = SimCache::new(sim.profile());
        cache.attach_store(Arc::new(Store::open(&path).expect("reopen")));
        let reg = Arc::new(CounterRegistry::new("wall"));
        cache.attach_registry(reg.clone());
        // First lookup is served from the store, the repeat from the
        // warm memo table; each lands in its own histogram.
        let _ = cache.try_profile(&sim, &p).unwrap();
        let _ = cache.try_profile(&sim, &p).unwrap();
        let serve = reg.histogram("memo.store_serve_us").expect("store serve");
        assert_eq!(serve.count, 1);
        let warm = reg.histogram("memo.lookup_us").expect("warm lookup");
        assert_eq!(warm.count, 1);
        assert!(reg.histogram("memo.cold_simulate_us").is_none());
        // A cold cache without a store simulates.
        let cold = SimCache::new(sim.profile());
        cold.attach_registry(reg.clone());
        let _ = cold.try_profile(&sim, &p).unwrap();
        let sim_h = reg.histogram("memo.cold_simulate_us").expect("cold");
        assert_eq!(sim_h.count, 1);
    }

    #[test]
    fn distinct_profiles_produce_distinct_fingerprints() {
        let fps: std::collections::HashSet<u64> =
            all_profiles().iter().map(profile_fingerprint).collect();
        assert_eq!(fps.len(), all_profiles().len());
    }

    #[test]
    fn compose_cache_key_matches_cache_key() {
        let profile = intel_cpu();
        let cache = SimCache::new(&profile);
        let p = lowered();
        assert_eq!(cache.profile_fp(), profile_fingerprint(&profile));
        assert_eq!(
            cache.key(&p),
            compose_cache_key(cache.profile_fp(), program_fingerprint(&p))
        );
    }
}
