//! Memoized simulation: a thread-safe measurement cache keyed by the
//! canonical program fingerprint (PR 4 tentpole).
//!
//! The analytic [`Simulator`] is pure — the same lowered [`Program`] on
//! the same [`MachineProfile`] always produces bit-identical
//! [`Counters`]. The tuner re-simulates the same program many times:
//! incumbents are re-measured every round, PPO seeds repeat across
//! reps, finalists are re-assessed, and neighborhoods revisit points.
//! [`SimCache`] memoizes those simulations so repeats cost one hash
//! instead of a full model walk, and lets scoped worker threads prewarm
//! entries that the (strictly sequential, deterministic) accounting
//! path then consumes.
//!
//! Determinism contract:
//! * [`SimCache::try_profile`] is the *only* method that touches the
//!   hit/miss statistics; the tuner calls it exclusively from its
//!   measurement thread, so the counters are identical for `--jobs 1`
//!   and `--jobs N`.
//! * [`SimCache::prewarm`] is stat-silent and idempotent: duplicate
//!   computations of the same pure program insert the same bits, so
//!   racing workers are harmless.
//!
//! A cached entry is invalidated by *nothing* — the key covers every
//! input of the pure simulation (program structure + machine profile),
//! so an entry can never go stale. A new layout, schedule, fusion
//! decision, or machine profile produces a new key instead.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use alt_error::AltError;
use alt_loopir::hash::Fnv1a;
use alt_loopir::{program_fingerprint, Program};

use crate::analytic::{Counters, Simulator};
use crate::profiles::{CacheLevel, MachineProfile};

/// Fingerprint of a machine profile: every field that the analytic
/// model reads, floats by bit pattern.
pub fn profile_fingerprint(p: &MachineProfile) -> u64 {
    let mut h = Fnv1a::new();
    h.tag(0x4d); // 'M'
    h.str(p.name);
    h.tag(match p.kind {
        crate::profiles::MachineKind::Cpu => 0,
        crate::profiles::MachineKind::Gpu => 1,
    });
    h.u64(p.cores as u64);
    h.f64(p.freq_ghz);
    h.u64(p.vector_lanes as u64);
    h.f64(p.flops_per_cycle);
    hash_level(&mut h, &p.l1);
    hash_level(&mut h, &p.l2);
    h.f64(p.dram_bytes_per_cycle);
    h.f64(p.l2_latency_cycles);
    h.f64(p.mlp);
    h.f64(p.dram_latency_cycles);
    h.f64(p.parallel_efficiency);
    h.f64(p.group_overhead_us);
    h.f64(p.bank_conflict_penalty);
    h.finish()
}

/// Composes a memo-cache key from a profile fingerprint and a program
/// fingerprint. Pure: `SimCache::key` is exactly
/// `compose_cache_key(cache.profile_fp(), program_fingerprint(p))`, so
/// journal consumers can round-trip recorded fingerprints back into
/// cache keys without a cache instance.
pub fn compose_cache_key(profile_fp: u64, program_fp: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(profile_fp);
    h.u64(program_fp);
    h.finish()
}

fn hash_level(h: &mut Fnv1a, l: &CacheLevel) {
    h.tag(0x43); // 'C'
    h.u64(l.size_bytes);
    h.u64(l.line_bytes);
    h.u64(l.assoc as u64);
    h.u64(l.prefetch_lines as u64);
    h.f64(l.bytes_per_cycle);
}

/// A shared, thread-safe memo table of simulated measurements.
///
/// Each entry tracks whether a *budgeted* lookup has seen it yet: a
/// prewarmed entry's first [`SimCache::try_profile`] counts as a miss
/// (it is a first-time measurement that merely ran off-thread), so the
/// hit/miss statistics mean "this measurement repeated an earlier one"
/// and are bit-identical whether or not workers prewarmed anything.
pub struct SimCache {
    profile_fp: u64,
    map: Mutex<HashMap<u64, (Counters, bool)>>,
    /// Keys a previous (checkpointed) leg of this run already accounted.
    /// A resumed run starts with an empty memo table, but its hit/miss
    /// transcript must continue the interrupted run's: re-simulating a
    /// key the predecessor paid for is a hit, not a miss.
    resumed: Mutex<HashSet<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// An empty cache bound to one machine profile.
    pub fn new(profile: &MachineProfile) -> Self {
        SimCache {
            profile_fp: profile_fingerprint(profile),
            map: Mutex::new(HashMap::new()),
            resumed: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fingerprint of the machine profile this cache is bound to.
    pub fn profile_fp(&self) -> u64 {
        self.profile_fp
    }

    /// The cache key of a program under this cache's profile.
    pub fn key(&self, program: &Program) -> u64 {
        compose_cache_key(self.profile_fp, program_fingerprint(program))
    }

    /// Simulates `program`, consulting the memo table first.
    ///
    /// Counts exactly one hit or one miss per call. A hit is a lookup of
    /// an entry that an earlier `try_profile` call already accounted; a
    /// prewarmed-but-never-accounted entry counts as a miss (its
    /// simulation simply ran off-thread) so the statistics do not depend
    /// on whether — or how aggressively — workers prewarmed. Errors
    /// (non-finite model output) are never cached and count as misses.
    /// Call this only from the accounting thread — the hit/miss sequence
    /// is part of the deterministic run transcript.
    pub fn try_profile(
        &self,
        sim: &Simulator,
        program: &Program,
    ) -> Result<(Counters, bool), AltError> {
        let key = self.key(program);
        // A key restored via `restore_accounted` was paid for by the
        // interrupted predecessor leg, so this lookup continues its
        // transcript as a hit even though the table itself is cold.
        let prior = self.resumed.lock().unwrap().contains(&key);
        if let Some((c, accounted)) = self.map.lock().unwrap().get_mut(&key) {
            let c = *c;
            if *accounted || prior {
                *accounted = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((c, true));
            }
            *accounted = true;
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((c, false));
        }
        if prior {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let c = sim.try_profile_counters(program)?;
        self.map.lock().unwrap().insert(key, (c, true));
        Ok((c, prior))
    }

    /// Simulates `program` into the table without touching statistics.
    ///
    /// Safe to call from any number of worker threads: the simulation is
    /// pure, so concurrent duplicate inserts write identical bits, and a
    /// failing simulation simply leaves no entry (the accounting path
    /// re-derives the error deterministically). Never downgrades an
    /// already-accounted entry.
    pub fn prewarm(&self, sim: &Simulator, program: &Program) {
        let key = self.key(program);
        if self.map.lock().unwrap().contains_key(&key) {
            return;
        }
        if let Ok(c) = sim.try_profile_counters(program) {
            self.map.lock().unwrap().entry(key).or_insert((c, false));
        }
    }

    /// The keys whose measurements a budgeted lookup has accounted so
    /// far, sorted — checkpoint state, so a resumed run can continue
    /// this run's hit/miss transcript (see [`SimCache::restore_accounted`]).
    /// Includes restored keys the current leg has not re-touched yet, so
    /// checkpoints cut from a resumed leg stay complete.
    pub fn accounted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .map
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, (_, accounted))| *accounted)
            .map(|(&k, _)| k)
            .collect();
        keys.extend(self.resumed.lock().unwrap().iter().copied());
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Marks keys an earlier leg of the run already accounted: their
    /// next budgeted lookup reads as a hit (the repeat it genuinely is)
    /// even though this leg must re-simulate them.
    pub fn restore_accounted(&self, keys: &[u64]) {
        self.resumed.lock().unwrap().extend(keys.iter().copied());
    }

    /// Hits observed by [`SimCache::try_profile`].
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses observed by [`SimCache::try_profile`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized programs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{all_profiles, intel_cpu};
    use alt_layout::{LayoutPlan, PropagationMode};
    use alt_loopir::lower;
    use alt_loopir::schedule::GraphSchedule;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, Shape};

    fn lowered() -> Program {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        lower(
            &g,
            &LayoutPlan::new(PropagationMode::Full),
            &GraphSchedule::naive(),
        )
    }

    // Worker threads hand programs and the shared cache across the
    // scope boundary, so the whole measurement closure must be Sync.
    #[test]
    fn shared_measurement_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
        assert_send_sync::<Simulator>();
        assert_send_sync::<SimCache>();
        assert_send_sync::<Graph>();
        assert_send_sync::<LayoutPlan>();
        assert_send_sync::<GraphSchedule>();
    }

    #[test]
    fn repeat_measurements_hit_and_return_identical_bits() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        let p = lowered();
        let (a, hit_a) = cache.try_profile(&sim, &p).unwrap();
        let (b, hit_b) = cache.try_profile(&sim, &p).unwrap();
        assert!(!hit_a && hit_b);
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!(a.latency_s.to_bits(), sim.measure(&p).to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prewarm_is_stat_silent_and_invisible_to_the_hit_miss_transcript() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        let p = lowered();
        cache.prewarm(&sim, &p);
        cache.prewarm(&sim, &p);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.len(), 1);
        // The first budgeted lookup of a prewarmed entry still reads as
        // a miss — exactly what an unwarmed run would record — so the
        // transcript is independent of prewarming.
        let (a, hit) = cache.try_profile(&sim, &p).unwrap();
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Only a genuine repeat is a hit.
        let (b, hit) = cache.try_profile(&sim, &p).unwrap();
        assert!(hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
    }

    #[test]
    fn concurrent_prewarm_converges_to_one_entry() {
        let sim = Simulator::new(intel_cpu());
        let cache = SimCache::new(sim.profile());
        let p = lowered();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.prewarm(&sim, &p));
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn restored_keys_continue_the_predecessor_transcript_as_hits() {
        let sim = Simulator::new(intel_cpu());
        let first_leg = SimCache::new(sim.profile());
        let p = lowered();
        let (a, hit) = first_leg.try_profile(&sim, &p).unwrap();
        assert!(!hit);
        let keys = first_leg.accounted_keys();
        assert_eq!(keys, vec![first_leg.key(&p)]);

        // A resumed leg starts cold but inherits the accounted keys: its
        // first lookup of the restored key is a hit with identical bits,
        // exactly what the uninterrupted run would have recorded.
        let second_leg = SimCache::new(sim.profile());
        second_leg.restore_accounted(&keys);
        let (b, hit) = second_leg.try_profile(&sim, &p).unwrap();
        assert!(hit, "restored key reads as a repeat");
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!((second_leg.hits(), second_leg.misses()), (1, 0));
        // The restored key stays in the accounted set for further cuts.
        assert_eq!(second_leg.accounted_keys(), keys);
        // And later repeats hit through the warm table as usual.
        let (_, hit) = second_leg.try_profile(&sim, &p).unwrap();
        assert!(hit);
    }

    #[test]
    fn distinct_profiles_produce_distinct_fingerprints() {
        let fps: std::collections::HashSet<u64> =
            all_profiles().iter().map(profile_fingerprint).collect();
        assert_eq!(fps.len(), all_profiles().len());
    }

    #[test]
    fn compose_cache_key_matches_cache_key() {
        let profile = intel_cpu();
        let cache = SimCache::new(&profile);
        let p = lowered();
        assert_eq!(cache.profile_fp(), profile_fingerprint(&profile));
        assert_eq!(
            cache.key(&p),
            compose_cache_key(cache.profile_fp(), program_fingerprint(&p))
        );
    }
}
