//! Machine profiles for the three evaluation platforms.
//!
//! The paper evaluates on an Intel Xeon (AVX-512), an NVIDIA V100 (CUDA)
//! and a Kirin 990 ARM SoC (NEON). We model the performance-relevant
//! parameters: cache hierarchy with a next-N-lines hardware prefetcher
//! (the paper measures ~4 lines fetched per miss event on a Cortex-A76,
//! Table 2), SIMD width, core count, memory bandwidth and
//! parallel-region/kernel-launch overheads.

/// One cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheLevel {
    /// Capacity in bytes (per core for L1, shared for L2).
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (used by the trace-driven simulator).
    pub assoc: u32,
    /// Lines fetched per miss event by the hardware prefetcher (1 = no
    /// prefetch).
    pub prefetch_lines: u32,
    /// Bandwidth to this level in bytes per cycle (per core).
    pub bytes_per_cycle: f64,
}

/// CPU vs GPU execution model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineKind {
    /// Multicore CPU with SIMD units.
    Cpu,
    /// Manycore GPU with warp-based execution and coalescing.
    Gpu,
}

/// A machine performance model.
#[derive(Clone, Copy, Debug)]
pub struct MachineProfile {
    /// Display name.
    pub name: &'static str,
    /// Execution model.
    pub kind: MachineKind,
    /// Physical cores (CPU) or streaming multiprocessors (GPU).
    pub cores: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// SIMD lanes for f32 (AVX-512: 16, NEON: 4, GPU warp: 32).
    pub vector_lanes: u32,
    /// Scalar floating-point operations per cycle per core.
    pub flops_per_cycle: f64,
    /// L1 data cache.
    pub l1: CacheLevel,
    /// Last-level cache.
    pub l2: CacheLevel,
    /// DRAM bandwidth in bytes per cycle (whole chip).
    pub dram_bytes_per_cycle: f64,
    /// Latency in cycles of an L1 miss that hits in L2.
    pub l2_latency_cycles: f64,
    /// Outstanding misses the machine overlaps (out-of-order window on
    /// CPUs; warp switching makes this large on GPUs).
    pub mlp: f64,
    /// Latency in cycles of a DRAM access that the prefetcher cannot hide.
    pub dram_latency_cycles: f64,
    /// Efficiency of parallel scaling (fork/join, imbalance).
    pub parallel_efficiency: f64,
    /// Overhead per lowered group (parallel-region fork/join on CPU,
    /// kernel launch on GPU), in microseconds.
    pub group_overhead_us: f64,
    /// Penalty multiplier applied to vectorized accesses whose stride
    /// maps all lanes onto one memory bank (GPU shared-memory bank
    /// conflicts, avoided by the `pad` layout primitive).
    pub bank_conflict_penalty: f64,
}

/// 40-core Intel Xeon Gold-class CPU with AVX-512 (the paper's Intel
/// platform).
pub fn intel_cpu() -> MachineProfile {
    MachineProfile {
        name: "intel-cpu",
        kind: MachineKind::Cpu,
        cores: 40,
        freq_ghz: 2.5,
        vector_lanes: 16,
        flops_per_cycle: 4.0,
        l1: CacheLevel {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            prefetch_lines: 4,
            bytes_per_cycle: 64.0,
        },
        l2: CacheLevel {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            assoc: 16,
            prefetch_lines: 2,
            bytes_per_cycle: 32.0,
        },
        dram_bytes_per_cycle: 40.0,
        l2_latency_cycles: 14.0,
        mlp: 4.0,
        dram_latency_cycles: 180.0,
        parallel_efficiency: 0.75,
        group_overhead_us: 1.5,
        bank_conflict_penalty: 1.0,
    }
}

/// NVIDIA V100-class GPU (the paper's NVIDIA platform).
pub fn nvidia_gpu() -> MachineProfile {
    MachineProfile {
        name: "nvidia-gpu",
        kind: MachineKind::Gpu,
        cores: 80,
        freq_ghz: 1.4,
        vector_lanes: 32,
        flops_per_cycle: 64.0,
        l1: CacheLevel {
            size_bytes: 128 * 1024,
            line_bytes: 128,
            assoc: 8,
            prefetch_lines: 1,
            bytes_per_cycle: 128.0,
        },
        l2: CacheLevel {
            size_bytes: 6 * 1024 * 1024,
            line_bytes: 128,
            assoc: 16,
            prefetch_lines: 1,
            bytes_per_cycle: 64.0,
        },
        dram_bytes_per_cycle: 640.0,
        l2_latency_cycles: 30.0,
        mlp: 48.0,
        dram_latency_cycles: 400.0,
        parallel_efficiency: 0.85,
        group_overhead_us: 5.0,
        bank_conflict_penalty: 4.0,
    }
}

/// Kirin 990-class big-core ARM CPU with NEON (the paper's ARM platform).
pub fn arm_cpu() -> MachineProfile {
    MachineProfile {
        name: "arm-cpu",
        kind: MachineKind::Cpu,
        cores: 4,
        freq_ghz: 2.6,
        vector_lanes: 4,
        flops_per_cycle: 2.0,
        l1: CacheLevel {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            assoc: 4,
            // The paper's Table 2 measurement: the Cortex-A76 fetches ~4
            // contiguous lines per miss event.
            prefetch_lines: 4,
            bytes_per_cycle: 32.0,
        },
        l2: CacheLevel {
            size_bytes: 512 * 1024,
            line_bytes: 64,
            assoc: 8,
            prefetch_lines: 2,
            bytes_per_cycle: 16.0,
        },
        dram_bytes_per_cycle: 12.0,
        l2_latency_cycles: 12.0,
        mlp: 3.0,
        dram_latency_cycles: 220.0,
        parallel_efficiency: 0.7,
        group_overhead_us: 2.0,
        bank_conflict_penalty: 1.0,
    }
}

/// All three evaluation platforms.
pub fn all_profiles() -> [MachineProfile; 3] {
    [intel_cpu(), nvidia_gpu(), arm_cpu()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        for p in all_profiles() {
            assert!(p.cores >= 1);
            assert!(p.vector_lanes >= 4);
            assert!(p.l1.size_bytes < p.l2.size_bytes);
            assert!(p.l1.line_bytes.is_power_of_two());
            assert!(p.parallel_efficiency > 0.0 && p.parallel_efficiency <= 1.0);
        }
    }

    #[test]
    fn gpu_is_marked_gpu() {
        assert_eq!(nvidia_gpu().kind, MachineKind::Gpu);
        assert_eq!(intel_cpu().kind, MachineKind::Cpu);
    }
}
