//! Measured-vs-predicted calibration of the analytic cost model.
//!
//! The native executor (`alt-codegen`) reports real wall-clock per
//! lowered group; the simulator predicts latency for the same groups.
//! Joining the two gives a per-op calibration table: where the model is
//! systematically off (and by how much), which is exactly the signal a
//! transfer-learned cost model needs. The table is embedded in run
//! manifests and benchmark JSON so calibration drift is visible across
//! runs.

use crate::breakdown::CostBreakdown;

/// One group's predicted-vs-measured pair.
#[derive(Clone, Debug)]
pub struct CalibrationRow {
    /// Group label (e.g. `c2d#3`, `convert(x)`).
    pub label: String,
    /// Simulator-predicted latency in microseconds.
    pub predicted_us: f64,
    /// Native-executor wall clock in microseconds.
    pub measured_us: f64,
    /// `measured / predicted`; `1.0` means the model is exact, values
    /// far from 1 locate where it needs recalibration. Infinite when the
    /// prediction is zero but time was measured.
    pub ratio: f64,
}

/// A per-op calibration table for one program on one machine profile.
#[derive(Clone, Debug)]
pub struct CalibrationTable {
    /// Machine profile name the prediction used.
    pub machine: String,
    /// Per-group rows in program order.
    pub rows: Vec<CalibrationRow>,
    /// Predicted end-to-end latency in microseconds.
    pub predicted_total_us: f64,
    /// Measured end-to-end wall clock in microseconds.
    pub measured_total_us: f64,
    /// `measured_total / predicted_total`.
    pub ratio: f64,
}

fn safe_ratio(measured: f64, predicted: f64) -> f64 {
    if predicted > 0.0 {
        measured / predicted
    } else if measured > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// Joins a simulator cost breakdown with measured per-group wall times
/// (microseconds, program order — e.g. `NativeRunStats::group_us` from
/// `alt-codegen`). Rows are matched by position; the measured label is
/// ignored in favor of the breakdown's.
pub fn calibrate(breakdown: &CostBreakdown, measured_us: &[(String, f64)]) -> CalibrationTable {
    let rows: Vec<CalibrationRow> = breakdown
        .groups
        .iter()
        .zip(measured_us)
        .map(|(g, (_, us))| CalibrationRow {
            label: g.label.clone(),
            predicted_us: g.total_s * 1e6,
            measured_us: *us,
            ratio: safe_ratio(*us, g.total_s * 1e6),
        })
        .collect();
    let measured_total_us: f64 = rows.iter().map(|r| r.measured_us).sum();
    let predicted_total_us = breakdown.total_s * 1e6;
    CalibrationTable {
        machine: breakdown.machine.clone(),
        rows,
        predicted_total_us,
        measured_total_us,
        ratio: safe_ratio(measured_total_us, predicted_total_us),
    }
}

impl CalibrationTable {
    /// JSON form for manifests and benchmark reports.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "machine": self.machine,
            "predicted_total_us": self.predicted_total_us,
            "measured_total_us": self.measured_total_us,
            "ratio": self.ratio,
            "groups": self.rows.iter().map(|r| serde_json::json!({
                "label": r.label,
                "predicted_us": r.predicted_us,
                "measured_us": r.measured_us,
                "ratio": r.ratio,
            })).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::GroupBreakdown;
    use crate::Counters;

    fn breakdown() -> CostBreakdown {
        CostBreakdown {
            machine: "test".into(),
            groups: vec![
                GroupBreakdown {
                    label: "c2d#0".into(),
                    overhead_s: 0.0,
                    leaves: Vec::new(),
                    total_s: 10e-6,
                },
                GroupBreakdown {
                    label: "gmm#1".into(),
                    overhead_s: 0.0,
                    leaves: Vec::new(),
                    total_s: 5e-6,
                },
            ],
            total_s: 15e-6,
            counters: Counters::default(),
        }
    }

    #[test]
    fn rows_join_by_position_and_carry_ratios() {
        let t = calibrate(
            &breakdown(),
            &[("c2d#0".into(), 20.0), ("gmm#1".into(), 2.5)],
        );
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].label, "c2d#0");
        assert!((t.rows[0].ratio - 2.0).abs() < 1e-12);
        assert!((t.rows[1].ratio - 0.5).abs() < 1e-12);
        assert!((t.measured_total_us - 22.5).abs() < 1e-12);
        assert!((t.ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_prediction_does_not_divide_by_zero() {
        let mut b = breakdown();
        b.groups[0].total_s = 0.0;
        let t = calibrate(&b, &[("a".into(), 1.0), ("b".into(), 0.0)]);
        assert!(t.rows[0].ratio.is_infinite());
        assert!((t.rows[1].ratio - 0.0).abs() < 1e-12);
    }

    #[test]
    fn json_form_is_parseable_and_complete() {
        let t = calibrate(&breakdown(), &[("x".into(), 1.0)]);
        let j = t.to_json();
        assert_eq!(j["machine"], "test");
        assert_eq!(j["groups"].as_array().map(Vec::len), Some(1));
        assert!(j["groups"][0]["predicted_us"].as_f64().is_some());
    }
}
