//! Cost attribution: structured breakdowns of simulated latency.
//!
//! The analytical model ([`crate::Simulator`]) and the trace-driven
//! executor ([`crate::trace_program`]) both produce a single scalar
//! latency; this module attaches *where the time went* — compute vs.
//! L2/DRAM transfer vs. exposed miss latency — attributed to stable
//! loop-nest paths (e.g. `c2d#0/o.o/h/w/ri/o.i@vec`), rolled up per
//! lowered group and per program.
//!
//! Conservation is the module's contract: the component seconds of every
//! leaf sum (within floating-point ulps) to that leaf's latency, and leaf
//! latencies plus per-group overhead sum *exactly* to the scalar the
//! tuner measures, because both are produced by the same walk in the same
//! order. Profiling is pure observation; it never changes a latency.

use alt_loopir::tir::LoopKind;

use crate::analytic::Counters;
use crate::profiles::MachineProfile;

/// Additive decomposition of one leaf's modeled latency, in seconds.
///
/// The analytic model prices a statement as
/// `max(compute, mem) + 0.25 * min(compute, mem)`; the breakdown keeps
/// whichever side binds at full weight and scales the hidden side by the
/// 0.25 overlap factor, so the fields always sum to the leaf latency.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostComponents {
    /// Instruction-issue time (SIMD- and parallel-scaled).
    pub compute_s: f64,
    /// L1-miss line fills served from L2 (bandwidth term).
    pub l2_transfer_s: f64,
    /// L2-miss line fills served from DRAM (bandwidth term).
    pub dram_transfer_s: f64,
    /// Exposed (not MLP/prefetch-hidden) L2 hit latency.
    pub l2_latency_s: f64,
    /// Exposed DRAM access latency.
    pub dram_latency_s: f64,
}

impl CostComponents {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.compute_s
            + self.l2_transfer_s
            + self.dram_transfer_s
            + self.l2_latency_s
            + self.dram_latency_s
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &CostComponents) {
        self.compute_s += other.compute_s;
        self.l2_transfer_s += other.l2_transfer_s;
        self.dram_transfer_s += other.dram_transfer_s;
        self.l2_latency_s += other.l2_latency_s;
        self.dram_latency_s += other.dram_latency_s;
    }

    /// Total memory-side seconds (everything but compute).
    pub fn memory_s(&self) -> f64 {
        self.l2_transfer_s + self.dram_transfer_s + self.l2_latency_s + self.dram_latency_s
    }
}

/// One loop on the path from a group root to a statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopSeg {
    /// Lineage-derived loop name (stable across runs and equivalent
    /// schedules; see `alt-loopir` lowering).
    pub name: String,
    /// Trip count.
    pub extent: i64,
    /// Loop annotation.
    pub kind: LoopKind,
}

impl LoopSeg {
    /// Renders the segment with its annotation marker (`@par`, `@vec`,
    /// `@unroll`).
    pub fn render(&self) -> String {
        match self.kind {
            LoopKind::Serial => self.name.clone(),
            LoopKind::Parallel => format!("{}@par", self.name),
            LoopKind::Vectorized => format!("{}@vec", self.name),
            LoopKind::Unrolled => format!("{}@unroll", self.name),
        }
    }
}

/// Joins path segments into the canonical `a/b@vec/c` string.
pub fn render_path(segs: &[LoopSeg]) -> String {
    segs.iter()
        .map(LoopSeg::render)
        .collect::<Vec<_>>()
        .join("/")
}

/// Cost of one statement (leaf) under its loop-nest path.
#[derive(Clone, Debug)]
pub struct LeafCost {
    /// Enclosing loops, outermost first.
    pub path: Vec<LoopSeg>,
    /// Name of the buffer the statement writes.
    pub store: String,
    /// Modeled latency of this leaf in seconds (bit-identical to the
    /// value the tuner's scalar measurement accumulates).
    pub latency_s: f64,
    /// Additive decomposition of `latency_s`.
    pub components: CostComponents,
    /// Full performance counters for this leaf.
    pub counters: Counters,
    /// Seconds lost to GPU shared-memory bank conflicts (already included
    /// in `components.compute_s`; diagnostic, not additive).
    pub bank_conflict_s: f64,
}

impl LeafCost {
    /// The canonical path string, e.g. `o.o@par/h/w/ri/o.i@vec`.
    pub fn path_string(&self) -> String {
        render_path(&self.path)
    }
}

/// Breakdown of one lowered group (a fused operator nest or a layout
/// conversion).
#[derive(Clone, Debug)]
pub struct GroupBreakdown {
    /// Group label, e.g. `c2d#3` or `convert(x)`.
    pub label: String,
    /// Fork/join or kernel-launch overhead charged to the group.
    pub overhead_s: f64,
    /// Per-statement costs in walk order.
    pub leaves: Vec<LeafCost>,
    /// Group latency: leaf latencies plus overhead, accumulated in walk
    /// order (exactly the scalar the tuner sees for this group).
    pub total_s: f64,
}

impl GroupBreakdown {
    /// Component rollup over all leaves (overhead excluded).
    pub fn components(&self) -> CostComponents {
        let mut c = CostComponents::default();
        for leaf in &self.leaves {
            c.add(&leaf.components);
        }
        c
    }
}

/// Full cost attribution of a program on one machine profile.
#[derive(Clone, Debug)]
pub struct CostBreakdown {
    /// Machine profile name.
    pub machine: String,
    /// Per-group breakdowns in program order.
    pub groups: Vec<GroupBreakdown>,
    /// End-to-end latency (bit-identical to [`crate::Simulator::measure`]).
    pub total_s: f64,
    /// Aggregate counters (bit-identical to
    /// [`crate::Simulator::profile_counters`]).
    pub counters: Counters,
}

impl CostBreakdown {
    /// Component rollup over the whole program (group overheads excluded;
    /// see [`CostBreakdown::overhead_s`]).
    pub fn components(&self) -> CostComponents {
        let mut c = CostComponents::default();
        for g in &self.groups {
            c.add(&g.components());
        }
        c
    }

    /// Total per-group overhead seconds.
    pub fn overhead_s(&self) -> f64 {
        self.groups.iter().map(|g| g.overhead_s).sum()
    }
}

/// Roofline summary: where a measured kernel sits against the machine's
/// compute and memory-bandwidth ceilings.
#[derive(Clone, Copy, Debug)]
pub struct Roofline {
    /// Arithmetic intensity in FLOP per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Attained GFLOP/s (`flops / latency`).
    pub attained_gflops: f64,
    /// Machine peak GFLOP/s (all cores, full vectors).
    pub peak_gflops: f64,
    /// DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// The roofline at this intensity: `min(peak, AI * bandwidth)`.
    pub ceiling_gflops: f64,
    /// True when the compute ceiling binds (the kernel sits on the flat
    /// part of the roof), false when memory bandwidth binds.
    pub compute_bound: bool,
}

impl Roofline {
    /// `"compute"` or `"bandwidth"` — the binding ceiling.
    pub fn binding(&self) -> &'static str {
        if self.compute_bound {
            "compute"
        } else {
            "bandwidth"
        }
    }
}

/// Computes the roofline position of a measured kernel from its counters.
///
/// DRAM traffic is modeled as one line fill per L2 miss; a kernel whose
/// working set never leaves L2 gets an effectively infinite intensity and
/// lands on the compute roof.
pub fn roofline(profile: &MachineProfile, counters: &Counters) -> Roofline {
    let hz = profile.freq_ghz * 1e9;
    let peak = hz
        * profile.flops_per_cycle
        * profile.vector_lanes as f64
        * profile.cores as f64
        * profile.parallel_efficiency;
    let bandwidth = hz * profile.dram_bytes_per_cycle;
    let dram_bytes = counters.l2_misses * profile.l2.line_bytes as f64;
    let ai = if dram_bytes > 0.0 {
        counters.flops / dram_bytes
    } else {
        f64::INFINITY
    };
    let attained = if counters.latency_s > 0.0 {
        counters.flops / counters.latency_s
    } else {
        0.0
    };
    let bw_roof = ai * bandwidth;
    let ceiling = peak.min(bw_roof);
    Roofline {
        arithmetic_intensity: ai,
        attained_gflops: attained / 1e9,
        peak_gflops: peak / 1e9,
        bandwidth_gbs: bandwidth / 1e9,
        ceiling_gflops: ceiling / 1e9,
        compute_bound: peak <= bw_roof,
    }
}
