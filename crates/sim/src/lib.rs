//! Hardware performance models for the ALT reproduction.
//!
//! The paper measures latency on real Intel/NVIDIA/ARM hardware; this
//! crate substitutes deterministic performance models that capture the
//! mechanisms the paper's results depend on — SIMD friendliness, cache
//! footprints and reuse, hardware prefetching of contiguous streams,
//! parallel scaling and per-kernel overheads.
//!
//! * [`profiles`] — the three machine descriptions.
//! * [`cache`] — a trace-driven set-associative cache simulator with a
//!   next-N-lines prefetcher (Table 2).
//! * [`analytic`] — the analytical latency model used as "target
//!   hardware" by every auto-tuner in this repository.
//! * [`breakdown`] — cost attribution: per-loop-path decomposition of
//!   modeled latency (compute vs. cache/DRAM time) plus a roofline
//!   summary; conservation (components sum to the measured scalar) is
//!   the module contract.

pub mod analytic;
pub mod breakdown;
pub mod cache;
pub mod calibration;
pub mod memo;
pub mod profiles;
pub mod trace;

pub use analytic::{Counters, Simulator};
pub use breakdown::{
    render_path, roofline, CostBreakdown, CostComponents, GroupBreakdown, LeafCost, LoopSeg,
    Roofline,
};
pub use cache::{CacheSim, CacheStats};
pub use calibration::{calibrate, CalibrationRow, CalibrationTable};
pub use memo::{
    compose_cache_key, decode_measurement, encode_measurement, profile_fingerprint, SimCache,
    MEASUREMENT_PAYLOAD_LEN,
};
pub use profiles::{
    all_profiles, arm_cpu, intel_cpu, nvidia_gpu, CacheLevel, MachineKind, MachineProfile,
};
pub use trace::{trace_profile, trace_program, TraceBreakdown, TraceCounters, TracePathCost};
