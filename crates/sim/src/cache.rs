//! Trace-driven set-associative cache simulator with a hardware
//! prefetcher.
//!
//! Used to reproduce the paper's Table 2 (layout tiling vs. loop tiling
//! under hardware prefetching) and to calibrate the analytical model. The
//! prefetcher models the behaviour the paper measured on a Cortex-A76:
//! on a demand miss, the next `prefetch_lines - 1` sequential lines are
//! brought in as well.

use crate::profiles::CacheLevel;

/// Access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand misses (prefetch hits count as hits).
    pub misses: u64,
    /// Lines brought in by the prefetcher.
    pub prefetched_lines: u64,
    /// Prefetched lines later hit by a demand access before eviction.
    pub prefetch_useful: u64,
}

/// A set-associative LRU cache with next-N-lines prefetch.
#[derive(Clone, Debug)]
pub struct CacheSim {
    line_bytes: u64,
    sets: usize,
    assoc: usize,
    prefetch_lines: u32,
    /// `ways[set * assoc + way]` holds a line tag; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU counters parallel to `tags` (higher = more recent).
    lru: Vec<u64>,
    /// Parallel to `tags`: line was filled by the prefetcher and has not
    /// yet been demanded (cleared on its first demand hit).
    prefetched: Vec<bool>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Builds a simulator from a cache-level description.
    ///
    /// The geometry is rounded *down*, never up: associativity is
    /// clamped to the actual line count, and `sets * assoc <= lines`
    /// always holds. The old truncating `sets = lines / assoc` silently
    /// *inflated* modeled capacity whenever `lines` was not a multiple
    /// of `assoc` (e.g. 2 lines at 4-way modeled 4 resident lines).
    pub fn new(level: &CacheLevel) -> Self {
        let lines = ((level.size_bytes / level.line_bytes) as usize).max(1);
        let assoc = (level.assoc as usize).clamp(1, lines);
        let sets = lines / assoc;
        Self {
            line_bytes: level.line_bytes,
            sets,
            assoc,
            prefetch_lines: level.prefetch_lines,
            tags: vec![u64::MAX; sets * assoc],
            lru: vec![0; sets * assoc],
            prefetched: vec![false; sets * assoc],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Builds a simulator with explicit geometry.
    pub fn with_geometry(
        size_bytes: u64,
        line_bytes: u64,
        assoc: u32,
        prefetch_lines: u32,
    ) -> Self {
        Self::new(&CacheLevel {
            size_bytes,
            line_bytes,
            assoc,
            prefetch_lines,
            bytes_per_cycle: 0.0,
        })
    }

    fn touch_line(&mut self, line: u64, demand: bool) -> bool {
        self.clock += 1;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.assoc;
        // Hit?
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                // Only demand touches refresh recency. A prefetch probe
                // that finds the line already resident must not promote
                // it to MRU: real next-N-lines prefetchers do not update
                // replacement state on such probes, and letting them do
                // so refreshed demand recency for free and under-counted
                // conflict evictions in strided workloads.
                if demand {
                    self.lru[base + w] = self.clock;
                    if self.prefetched[base + w] {
                        // First demand touch of a prefetched line: the
                        // prefetch was useful.
                        self.prefetched[base + w] = false;
                        self.stats.prefetch_useful += 1;
                    }
                }
                return true;
            }
        }
        // Miss: evict LRU way.
        let mut victim = 0;
        for w in 1..self.assoc {
            if self.lru[base + w] < self.lru[base + victim] {
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.lru[base + victim] = self.clock;
        self.prefetched[base + victim] = !demand;
        if !demand {
            self.stats.prefetched_lines += 1;
        }
        false
    }

    /// Performs a demand access at a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        self.stats.accesses += 1;
        let hit = self.touch_line(line, true);
        if !hit {
            self.stats.misses += 1;
            // Next-N-lines prefetch on a demand miss.
            for k in 1..self.prefetch_lines as u64 {
                self.touch_line(line + k, false);
            }
        }
        hit
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Flushes contents and statistics.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.lru.fill(0);
        self.prefetched.fill(false);
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(prefetch: u32) -> CacheSim {
        // 1 KiB, 64 B lines, 4-way.
        CacheSim::with_geometry(1024, 64, 4, prefetch)
    }

    #[test]
    fn sequential_without_prefetch_misses_per_line() {
        let mut c = small_cache(1);
        for i in 0..1024u64 {
            c.access(i * 4);
        }
        // 4 KiB / 64 B = 64 distinct lines, each missed once.
        assert_eq!(c.stats().misses, 64);
        assert_eq!(c.stats().accesses, 1024);
    }

    #[test]
    fn sequential_with_prefetch_divides_misses() {
        let mut c = small_cache(4);
        for i in 0..1024u64 {
            c.access(i * 4);
        }
        // One miss event per 4 lines.
        assert_eq!(c.stats().misses, 16);
    }

    #[test]
    fn strided_access_defeats_prefetch() {
        let mut c = small_cache(4);
        // Rows 4 KiB apart: prefetched neighbours are useless.
        for row in 0..64u64 {
            c.access(row * 4096);
        }
        assert_eq!(c.stats().misses, 64);
        assert_eq!(c.stats().prefetch_useful, 0);
        assert!(c.stats().prefetched_lines > 0);
    }

    #[test]
    fn sequential_prefetches_are_counted_useful() {
        let mut c = small_cache(4);
        for i in 0..1024u64 {
            c.access(i * 4);
        }
        let s = c.stats();
        // 64 lines, 16 miss events; the other 48 lines arrived via
        // prefetch and were all demanded afterwards.
        assert_eq!(s.prefetch_useful, 48);
        assert!(s.prefetch_useful <= s.prefetched_lines);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache(1);
        c.access(0);
        assert!(c.access(0));
        assert!(c.access(32)); // same line
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction() {
        let mut c = small_cache(1);
        // 32 lines touch a 16-line cache twice: second pass still misses.
        for _ in 0..2 {
            for l in 0..32u64 {
                c.access(l * 64);
            }
        }
        assert_eq!(c.stats().misses, 64);
    }

    #[test]
    fn lru_within_set() {
        // Direct test of LRU: map 5 lines to the same set of a 4-way
        // cache, re-touch the first four, then the fifth evicts the
        // least recently used.
        let mut c = CacheSim::with_geometry(4 * 64, 64, 4, 1); // one set
        for l in 0..4u64 {
            c.access(l * 64);
        }
        c.access(0); // refresh line 0
        c.access(4 * 64); // evicts line 1 (LRU)
        c.reset_stats();
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn prefetch_probe_of_resident_line_does_not_refresh_lru() {
        // Conflict-heavy single-set workload. With the old behaviour, a
        // prefetch probe that found its target already resident promoted
        // it to MRU, deflecting the next eviction onto a line that
        // demand accesses had used more recently.
        let mut c = CacheSim::with_geometry(4 * 64, 64, 4, 2); // one 4-way set
        let line = |l: u64| l * 64;
        c.access(line(0)); // miss; prefetches line 1
        c.access(line(10)); // miss; prefetches line 11
        c.access(line(11)); // demand hit on the prefetched line
        c.access(line(1)); // demand hit on the prefetched line
        assert_eq!(c.stats().prefetch_useful, 2);
        // Demand recency is now 0 < 10 < 11 < 1.
        c.access(line(9)); // miss; evicts 0; prefetch *probes* resident line 10
        c.access(line(20)); // miss; must evict line 10 — still the true LRU
        c.reset_stats();
        assert!(
            c.access(line(1)),
            "line 1 was recently demanded and must survive; the buggy \
             MRU-promotion of line 10 deflected an eviction onto it"
        );
        assert!(!c.access(line(10)), "line 10 was the correct LRU victim");
    }

    #[test]
    fn geometry_rounds_down_instead_of_inflating_capacity() {
        // 128 B at 64 B lines = 2 lines; requesting 4-way associativity
        // used to allocate 1 set x 4 ways = 4 resident lines, doubling
        // the modeled capacity. The clamped geometry holds 2 lines.
        let mut c = CacheSim::with_geometry(128, 64, 4, 1);
        c.access(0);
        c.access(64);
        assert!(c.access(0) && c.access(64), "both real lines resident");
        c.access(128); // third distinct line must evict
        assert!(!c.access(0), "capacity is 2 lines, not assoc=4 lines");
    }

    #[test]
    fn geometry_never_exceeds_the_physical_line_count() {
        // 6 lines at 4-way floors to 1 set x 4 ways = 4 resident lines:
        // under-modeling is acceptable, over-modeling is not.
        let mut c = CacheSim::with_geometry(6 * 64, 64, 4, 1);
        for l in 0..5u64 {
            c.access(l * 64);
        }
        // Line 0 was evicted by the fifth distinct line.
        assert!(!c.access(0));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = small_cache(1);
        c.access(0);
        c.flush();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.access(0));
    }
}
