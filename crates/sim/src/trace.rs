//! Trace-driven execution of TIR-lite programs against the cache
//! simulator.
//!
//! Walks a lowered loop tree iteration by iteration, emits the exact
//! byte-address stream of every load and store, and feeds it to
//! [`CacheSim`]. This is exact but slow (every iteration is visited), so
//! it is used to *validate and calibrate* the fast analytical model on
//! small kernels, not to drive tuning.

use alt_tensor::expr::Env;

use alt_loopir::tir::{Program, SExpr, Stmt, TirNode};

use crate::breakdown::LoopSeg;
use crate::cache::{CacheSim, CacheStats};
use crate::profiles::{CacheLevel, MachineProfile};

/// Byte-address trace statistics from a full program walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCounters {
    /// Total demand loads issued.
    pub loads: u64,
    /// Total stores issued.
    pub stores: u64,
    /// Cache statistics (loads and stores combined).
    pub cache: CacheStats,
}

/// Exact trace-driven cache profile of a program on one cache level.
///
/// Buffers are laid out back to back at 4 KiB-aligned base addresses.
/// Intended for programs with at most a few million statement
/// executions; use [`crate::Simulator`] for anything larger.
pub fn trace_program(program: &Program, level: &CacheLevel) -> TraceCounters {
    let mut sim = CacheSim::new(level);
    let mut counters = TraceCounters::default();

    // Assign base addresses.
    let mut bases = Vec::with_capacity(program.buffers.len());
    let mut cursor: u64 = 0;
    for b in &program.buffers {
        bases.push(cursor);
        let bytes = b.shape.numel() as u64 * 4;
        cursor += bytes.div_ceil(4096) * 4096;
    }

    let mut env = Env::new();
    for group in &program.groups {
        walk(
            program,
            &group.nodes,
            &mut env,
            &bases,
            &mut sim,
            &mut counters,
        );
    }
    counters.cache = sim.stats();
    counters
}

fn addr_of(
    program: &Program,
    bases: &[u64],
    buf: alt_loopir::BufId,
    indices: &[alt_tensor::Expr],
    env: &Env,
) -> u64 {
    let strides = program.buffer(buf).shape.strides();
    let mut off: i64 = 0;
    for (e, s) in indices.iter().zip(&strides) {
        off += e.eval(env) * s;
    }
    bases[buf.0] + (off.max(0) as u64) * 4
}

fn touch_expr(
    program: &Program,
    e: &SExpr,
    env: &Env,
    bases: &[u64],
    sim: &mut CacheSim,
    counters: &mut TraceCounters,
) {
    match e {
        SExpr::Imm(_) => {}
        SExpr::Load { buf, indices } => {
            counters.loads += 1;
            sim.access(addr_of(program, bases, *buf, indices, env));
        }
        SExpr::Bin(_, a, b) => {
            touch_expr(program, a, env, bases, sim, counters);
            touch_expr(program, b, env, bases, sim, counters);
        }
        SExpr::Unary(_, a) => touch_expr(program, a, env, bases, sim, counters),
        SExpr::Select { cond, then_, else_ } => {
            // Trace the branch that actually executes.
            if cond.eval(env) {
                touch_expr(program, then_, env, bases, sim, counters);
            } else {
                touch_expr(program, else_, env, bases, sim, counters);
            }
        }
    }
}

fn exec_stmt(
    program: &Program,
    stmt: &Stmt,
    env: &Env,
    bases: &[u64],
    sim: &mut CacheSim,
    counters: &mut TraceCounters,
) {
    if let Some(pred) = &stmt.pred {
        if !pred.eval(env) {
            return;
        }
    }
    touch_expr(program, &stmt.value, env, bases, sim, counters);
    counters.stores += 1;
    sim.access(addr_of(program, bases, stmt.buf, &stmt.indices, env));
}

fn walk(
    program: &Program,
    nodes: &[TirNode],
    env: &mut Env,
    bases: &[u64],
    sim: &mut CacheSim,
    counters: &mut TraceCounters,
) {
    for node in nodes {
        match node {
            TirNode::Loop {
                var, extent, body, ..
            } => {
                for i in 0..*extent {
                    env.bind(var, i);
                    walk(program, body, env, bases, sim, counters);
                }
            }
            TirNode::Stmt(s) => exec_stmt(program, s, env, bases, sim, counters),
        }
    }
}

/// Trace-level cost of one statement site, attributed to its loop path.
#[derive(Clone, Debug)]
pub struct TracePathCost {
    /// Lowered-group label the site belongs to.
    pub group: String,
    /// Enclosing loops, outermost first (stable lineage names).
    pub path: Vec<LoopSeg>,
    /// Name of the buffer the statement writes.
    pub store: String,
    /// Demand loads issued by this site.
    pub loads: u64,
    /// Stores issued by this site.
    pub stores: u64,
    /// Cache misses (loads and stores) charged to this site.
    pub misses: u64,
    /// Attributed seconds under the linear trace-latency model.
    pub latency_s: f64,
}

/// Per-path attribution of a trace-driven run.
///
/// Latency uses a deliberately simple linear model — one cycle per
/// access plus the profile's L2 latency per miss — so that the per-site
/// integer counters sum exactly to the program totals and the attributed
/// seconds conserve to `total_s` within floating-point ulps.
#[derive(Clone, Debug)]
pub struct TraceBreakdown {
    /// Per-site costs in first-execution order.
    pub paths: Vec<TracePathCost>,
    /// Whole-program trace counters (identical to [`trace_program`]).
    pub counters: TraceCounters,
    /// Linear-model latency of the whole trace, computed from the global
    /// counters (not by summing `paths`).
    pub total_s: f64,
}

/// Trace-driven [`trace_program`] with per-loop-path attribution against
/// the profile's L1 cache.
pub fn trace_profile(program: &Program, profile: &MachineProfile) -> TraceBreakdown {
    let mut sim = CacheSim::new(&profile.l1);
    let mut counters = TraceCounters::default();

    let mut bases = Vec::with_capacity(program.buffers.len());
    let mut cursor: u64 = 0;
    for b in &program.buffers {
        bases.push(cursor);
        let bytes = b.shape.numel() as u64 * 4;
        cursor += bytes.div_ceil(4096) * 4096;
    }

    let mut env = Env::new();
    let mut sites: Vec<TracePathCost> = Vec::new();
    // Statement nodes are unique positions in the immutable loop tree, so
    // their addresses are stable site keys for the duration of the walk.
    let mut site_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for group in &program.groups {
        let mut stack: Vec<LoopSeg> = Vec::new();
        walk_attr(
            program,
            &group.nodes,
            &group.label,
            &mut env,
            &bases,
            &mut sim,
            &mut counters,
            &mut stack,
            &mut sites,
            &mut site_of,
        );
    }
    counters.cache = sim.stats();

    let cycle = |accesses: u64, misses: u64| -> f64 {
        accesses as f64 + misses as f64 * profile.l2_latency_cycles
    };
    let hz = profile.freq_ghz * 1e9;
    for s in &mut sites {
        s.latency_s = cycle(s.loads + s.stores, s.misses) / hz;
    }
    let total_s = cycle(counters.cache.accesses, counters.cache.misses) / hz;
    TraceBreakdown {
        paths: sites,
        counters,
        total_s,
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_attr(
    program: &Program,
    nodes: &[TirNode],
    group: &str,
    env: &mut Env,
    bases: &[u64],
    sim: &mut CacheSim,
    counters: &mut TraceCounters,
    stack: &mut Vec<LoopSeg>,
    sites: &mut Vec<TracePathCost>,
    site_of: &mut std::collections::HashMap<usize, usize>,
) {
    for node in nodes {
        match node {
            TirNode::Loop {
                var,
                extent,
                kind,
                body,
            } => {
                stack.push(LoopSeg {
                    name: var.name().to_string(),
                    extent: *extent,
                    kind: *kind,
                });
                for i in 0..*extent {
                    env.bind(var, i);
                    walk_attr(
                        program, body, group, env, bases, sim, counters, stack, sites, site_of,
                    );
                }
                stack.pop();
            }
            TirNode::Stmt(s) => {
                let key = s as *const Stmt as usize;
                let idx = *site_of.entry(key).or_insert_with(|| {
                    sites.push(TracePathCost {
                        group: group.to_string(),
                        path: stack.clone(),
                        store: program.buffer(s.buf).name.clone(),
                        loads: 0,
                        stores: 0,
                        misses: 0,
                        latency_s: 0.0,
                    });
                    sites.len() - 1
                });
                let before = sim.stats();
                let mut local = TraceCounters::default();
                exec_stmt(program, s, env, bases, sim, &mut local);
                let after = sim.stats();
                counters.loads += local.loads;
                counters.stores += local.stores;
                let site = &mut sites[idx];
                site.loads += local.loads;
                site.stores += local.stores;
                site.misses += after.misses - before.misses;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::Simulator;
    use crate::profiles::intel_cpu;
    use alt_layout::{presets, LayoutPlan, PropagationMode};
    use alt_loopir::{lower, GraphSchedule};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, Shape};

    fn small_conv(layout_tiled: bool) -> (alt_loopir::Program, f64) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 18, 18]));
        let w = g.add_param("w", Shape::new([16, 8, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        if layout_tiled {
            plan.assign_output_layout(
                &g,
                conv,
                presets::c2d_output_tiled(g.tensor(y).shape.clone(), 4, 4, 8).unwrap(),
            );
        }
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let analytic = Simulator::new(intel_cpu())
            .profile_counters(&program)
            .l1_misses;
        (program, analytic)
    }

    #[test]
    fn trace_counts_every_access() {
        let (program, _) = small_conv(false);
        let c = trace_program(&program, &intel_cpu().l1);
        // Init pass (16x16x16 stores) + main nest (16x16x16x8x3x3: 2 loads
        // + 1 store each).
        let main_iters = 16 * 16 * 16 * 8 * 3 * 3u64;
        assert_eq!(c.loads, 2 * main_iters);
        assert_eq!(c.stores, main_iters + 16 * 16 * 16);
        assert_eq!(c.cache.accesses, c.loads + c.stores);
    }

    #[test]
    fn analytic_misses_track_trace_within_an_order_of_magnitude() {
        // The analytical model is an approximation; calibration keeps it
        // within ~10x of ground truth on both layouts, which is enough to
        // rank schedules.
        for tiled in [false, true] {
            let (program, analytic) = small_conv(tiled);
            let c = trace_program(&program, &intel_cpu().l1);
            let traced = c.cache.misses.max(1) as f64;
            let ratio = analytic / traced;
            assert!(
                (0.1..=10.0).contains(&ratio),
                "tiled={tiled}: analytic {analytic} vs traced {traced} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let (program, _) = small_conv(true);
        let a = trace_program(&program, &intel_cpu().l1);
        let b = trace_program(&program, &intel_cpu().l1);
        assert_eq!(a.cache.misses, b.cache.misses);
    }
}
