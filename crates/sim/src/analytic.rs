//! Analytical latency model over TIR-lite programs.
//!
//! The model walks each lowered loop tree once (no per-iteration
//! interpretation) and estimates, per statement:
//!
//! * instruction throughput with SIMD lane accounting (a vectorize
//!   annotation only helps when the store is unit-stride and every load is
//!   unit-stride or broadcast),
//! * cache behaviour via a classic footprint/reuse analysis: for each
//!   cache level, find the outermost loop depth whose data footprint fits,
//!   charge one line transfer per new line outside that depth, and
//! * a next-N-lines hardware-prefetcher correction: miss events on long
//!   contiguous streams are divided by the prefetch degree, which is what
//!   makes *layout tiling* cheaper than loop tiling (paper Table 2), and
//! * parallel scaling limited by core count, efficiency and shared DRAM
//!   bandwidth; per-group fork/join (CPU) or kernel-launch (GPU) overhead.
//!
//! The model is fully deterministic: it is the "target hardware" that all
//! auto-tuners in this reproduction measure against.

use alt_tensor::expr::{Env, Expr, Var};

use alt_loopir::tir::{LoopKind, Program, Stmt, StoreMode, TirNode};

use crate::breakdown::{CostBreakdown, CostComponents, GroupBreakdown, LeafCost, LoopSeg};
use crate::profiles::{MachineKind, MachineProfile};

/// Aggregate performance counters (the paper's Table 3 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    /// Dynamic instructions (vector ops count once).
    pub instructions: f64,
    /// Scalar floating-point operations.
    pub flops: f64,
    /// L1 load instructions.
    pub l1_loads: f64,
    /// L1 store instructions.
    pub l1_stores: f64,
    /// L1 miss line-fill events (after prefetching).
    pub l1_misses: f64,
    /// L2 miss line-fill events.
    pub l2_misses: f64,
    /// Lines the L1 next-N-lines prefetcher fetched ahead of demand.
    pub prefetch_issued: f64,
    /// Prefetched lines that absorbed a would-be demand miss.
    pub prefetch_useful: f64,
    /// Instructions weighted by their SIMD lane fraction; divide by
    /// `instructions` (or call [`Counters::simd_utilization`]) to get the
    /// utilization in `[0, 1]`.
    pub simd_weighted: f64,
    /// Estimated latency in seconds.
    pub latency_s: f64,
}

impl Counters {
    fn add(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.flops += other.flops;
        self.l1_loads += other.l1_loads;
        self.l1_stores += other.l1_stores;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_useful += other.prefetch_useful;
        self.simd_weighted += other.simd_weighted;
        self.latency_s += other.latency_s;
    }

    /// Instruction-weighted SIMD lane utilization in `[0, 1]`.
    pub fn simd_utilization(&self) -> f64 {
        if self.instructions > 0.0 {
            self.simd_weighted / self.instructions
        } else {
            0.0
        }
    }
}

/// One loop surrounding a statement.
#[derive(Clone, Debug)]
struct LoopCtx {
    var: Var,
    extent: i64,
    kind: LoopKind,
}

/// Cost of one statement: the aggregate counters the tuner consumes plus
/// the attribution extras the profiler consumes. Producing (or dropping)
/// the extras never changes `counters` — profiling is zero-overhead in
/// the modeled-latency sense.
struct StmtCost {
    counters: Counters,
    components: CostComponents,
    bank_conflict_s: f64,
}

/// Stride profile of one memory access with respect to the surrounding
/// loops.
#[derive(Clone, Debug)]
struct AccessProfile {
    /// Per-loop: average element step (can be fractional for `v / k`
    /// indices), distinct elements touched, and total address span.
    steps: Vec<f64>,
    distinct: Vec<f64>,
    spans: Vec<f64>,
    is_store: bool,
}

impl AccessProfile {
    /// Builds the profile by numeric probing of the flattened address.
    fn probe(indices: &[Expr], buf_strides: &[i64], loops: &[LoopCtx], is_store: bool) -> Self {
        let addr = |env: &Env| -> f64 {
            indices
                .iter()
                .zip(buf_strides)
                .map(|(e, &s)| e.eval(env) as f64 * s as f64)
                .sum()
        };
        let mut base_env = Env::new();
        for l in loops {
            base_env.bind(&l.var, 0);
        }
        let base = addr(&base_env);
        let mut steps = Vec::with_capacity(loops.len());
        let mut distinct = Vec::with_capacity(loops.len());
        let mut spans = Vec::with_capacity(loops.len());
        for l in loops {
            if l.extent <= 1 {
                steps.push(0.0);
                distinct.push(1.0);
                spans.push(0.0);
                continue;
            }
            let mut env = base_env.clone();
            env.bind(&l.var, l.extent - 1);
            let span = (addr(&env) - base).abs();
            let step = span / (l.extent - 1) as f64;
            steps.push(step);
            spans.push(span);
            distinct.push(if span == 0.0 {
                1.0
            } else {
                (span + 1.0).min(l.extent as f64)
            });
        }
        Self {
            steps,
            distinct,
            spans,
            is_store,
        }
    }

    /// Step of this access along a given loop (by stack position).
    fn step_at(&self, pos: usize) -> f64 {
        self.steps[pos]
    }

    /// Number of distinct cache lines touched by loops at depth `d` and
    /// deeper.
    ///
    /// The per-loop `distinct` product overcounts when loops overlap the
    /// same addresses (sliding windows: the `h` and `rh` loops of a
    /// convolution walk the same rows), so it is capped by the address
    /// bounding box (the sum of per-loop spans — exact for affine
    /// accesses).
    fn lines_within(&self, d: usize, line_bytes: f64) -> f64 {
        let mut elems = 1.0;
        let mut span_sum = 0.0;
        let mut min_step = f64::INFINITY;
        for l in d..self.steps.len() {
            elems *= self.distinct[l];
            span_sum += self.spans[l];
            if self.steps[l] > 0.0 {
                min_step = min_step.min(self.steps[l]);
            }
        }
        let elems = elems.min(span_sum + 1.0);
        if elems <= 1.0 {
            return 1.0;
        }
        let eff_bytes = (min_step.max(1.0) * 4.0).min(line_bytes);
        (elems * eff_bytes / line_bytes).max(1.0)
    }

    /// Length in bytes of the longest contiguous run this access streams
    /// through (chained unit-stride loops), used for prefetch modeling.
    fn contiguous_run_bytes(&self) -> f64 {
        // Sort loops by step ascending and chain while each loop's step
        // continues the run built by the finer loops.
        let mut order: Vec<usize> = (0..self.steps.len())
            .filter(|&l| self.steps[l] > 0.0)
            .collect();
        order.sort_by(|&a, &b| self.steps[a].total_cmp(&self.steps[b]));
        let mut run_elems: f64 = 1.0;
        for &l in &order {
            let step = self.steps[l];
            if step <= 1.0 {
                // Dense packing along this loop.
                run_elems = run_elems.max(self.distinct[l]);
            } else if (step - run_elems).abs() <= 0.51 * run_elems {
                // This loop's stride continues the run built by the finer
                // loops, so the streams chain into one longer stream.
                run_elems *= self.distinct[l];
            } else {
                break;
            }
        }
        run_elems * 4.0
    }
}

/// The performance simulator for one machine profile.
#[derive(Clone, Debug)]
pub struct Simulator {
    profile: MachineProfile,
}

impl Simulator {
    /// Creates a simulator for a machine.
    pub fn new(profile: MachineProfile) -> Self {
        Self { profile }
    }

    /// The machine profile.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// Estimates end-to-end latency in seconds.
    pub fn measure(&self, program: &Program) -> f64 {
        self.profile_counters(program).latency_s
    }

    /// Fallible [`Simulator::measure`]: rejects degenerate programs that
    /// produce a non-finite or non-positive latency (e.g. an empty lowered
    /// group set), so the tuner can treat them as recoverable failures.
    pub fn try_measure(&self, program: &Program) -> Result<f64, alt_error::AltError> {
        Ok(self.try_profile_counters(program)?.latency_s)
    }

    /// Fallible [`Simulator::profile_counters`] with the same latency
    /// validity check as [`Simulator::try_measure`].
    pub fn try_profile_counters(&self, program: &Program) -> Result<Counters, alt_error::AltError> {
        let c = self.profile_counters(program);
        if !c.latency_s.is_finite() || c.latency_s <= 0.0 {
            return Err(alt_error::AltError::Sim {
                detail: format!(
                    "simulated latency {} is not a positive finite value ({} groups)",
                    c.latency_s,
                    program.groups.len()
                ),
            });
        }
        Ok(c)
    }

    /// Per-group latency breakdown (used by the layout-propagation
    /// overhead study, Fig. 12).
    pub fn group_latencies(&self, program: &Program) -> Vec<(String, f64)> {
        program
            .groups
            .iter()
            .map(|group| {
                let mut stack = Vec::new();
                let mut c = Counters::default();
                self.walk(program, &group.nodes, &mut stack, &mut c);
                (
                    group.label.clone(),
                    c.latency_s + self.profile.group_overhead_us * 1e-6,
                )
            })
            .collect()
    }

    /// Full counter breakdown (Table 3).
    pub fn profile_counters(&self, program: &Program) -> Counters {
        let mut total = Counters::default();
        for group in &program.groups {
            let mut stack = Vec::new();
            let mut c = Counters::default();
            self.walk(program, &group.nodes, &mut stack, &mut c);
            c.latency_s += self.profile.group_overhead_us * 1e-6;
            total.add(&c);
        }
        total
    }

    /// Per-path cost attribution of a whole program.
    ///
    /// The walk and the statement pricing are shared with
    /// [`Simulator::measure`]/[`Simulator::profile_counters`], and latency
    /// is accumulated in the same order, so `CostBreakdown::total_s` is
    /// bit-identical to the scalar the tuner measures.
    pub fn profile_program(&self, program: &Program) -> CostBreakdown {
        let mut groups = Vec::new();
        let mut counters = Counters::default();
        let mut total_s = 0.0;
        for group in &program.groups {
            let mut stack = Vec::new();
            let mut gc = Counters::default();
            let mut leaves = Vec::new();
            self.walk_visit(
                program,
                &group.nodes,
                &mut stack,
                &mut |stack, stmt, cost| {
                    gc.add(&cost.counters);
                    leaves.push(LeafCost {
                        path: stack
                            .iter()
                            .map(|l| LoopSeg {
                                name: l.var.name().to_string(),
                                extent: l.extent,
                                kind: l.kind,
                            })
                            .collect(),
                        store: program.buffer(stmt.buf).name.clone(),
                        latency_s: cost.counters.latency_s,
                        components: cost.components,
                        counters: cost.counters,
                        bank_conflict_s: cost.bank_conflict_s,
                    });
                },
            );
            let overhead_s = self.profile.group_overhead_us * 1e-6;
            gc.latency_s += overhead_s;
            counters.add(&gc);
            total_s += gc.latency_s;
            groups.push(GroupBreakdown {
                label: group.label.clone(),
                overhead_s,
                leaves,
                total_s: gc.latency_s,
            });
        }
        CostBreakdown {
            machine: self.profile.name.to_string(),
            groups,
            total_s,
            counters,
        }
    }

    fn walk(
        &self,
        program: &Program,
        nodes: &[TirNode],
        stack: &mut Vec<LoopCtx>,
        out: &mut Counters,
    ) {
        self.walk_visit(program, nodes, stack, &mut |_, _, cost| {
            out.add(&cost.counters);
        });
    }

    /// Depth-first walk calling `visit(loop stack, stmt, cost)` at every
    /// statement, in deterministic program order.
    fn walk_visit(
        &self,
        program: &Program,
        nodes: &[TirNode],
        stack: &mut Vec<LoopCtx>,
        visit: &mut impl FnMut(&[LoopCtx], &Stmt, &StmtCost),
    ) {
        for node in nodes {
            match node {
                TirNode::Loop {
                    var,
                    extent,
                    kind,
                    body,
                } => {
                    stack.push(LoopCtx {
                        var: var.clone(),
                        extent: *extent,
                        kind: *kind,
                    });
                    self.walk_visit(program, body, stack, visit);
                    stack.pop();
                }
                TirNode::Stmt(stmt) => {
                    let c = self.cost_stmt(program, stmt, stack);
                    visit(stack, stmt, &c);
                }
            }
        }
    }

    fn cost_stmt(&self, program: &Program, stmt: &Stmt, loops: &[LoopCtx]) -> StmtCost {
        let p = &self.profile;
        let iterations: f64 = loops.iter().map(|l| l.extent as f64).product();
        if iterations == 0.0 {
            return StmtCost {
                counters: Counters::default(),
                components: CostComponents::default(),
                bank_conflict_s: 0.0,
            };
        }

        // Collect all memory accesses with stride profiles.
        let mut accesses: Vec<AccessProfile> = Vec::new();
        let mut n_loads = 0.0;
        stmt.value.visit_loads(&mut |buf, idx| {
            let strides = program.buffer(buf).shape.strides();
            accesses.push(AccessProfile::probe(idx, &strides, loops, false));
            n_loads += 1.0;
        });
        // Accumulating stores read-modify-write the destination.
        if stmt.mode != StoreMode::Assign {
            let strides = program.buffer(stmt.buf).shape.strides();
            accesses.push(AccessProfile::probe(&stmt.indices, &strides, loops, false));
            n_loads += 1.0;
        }
        let store_strides = program.buffer(stmt.buf).shape.strides();
        accesses.push(AccessProfile::probe(
            &stmt.indices,
            &store_strides,
            loops,
            true,
        ));

        // SIMD eligibility: find the vectorized loop.
        let vec_pos = loops.iter().rposition(|l| l.kind == LoopKind::Vectorized);
        let mut vector_factor = 1.0;
        let mut bank_conflict = false;
        if let Some(pos) = vec_pos {
            let ok = accesses.iter().all(|a| {
                let s = a.step_at(pos);
                if a.is_store {
                    (s - 1.0).abs() < 1e-6
                } else {
                    s < 1.0 + 1e-6
                }
            });
            if ok {
                vector_factor = p.vector_lanes as f64;
            }
            if p.kind == MachineKind::Gpu {
                // Lanes hitting a stride that is a multiple of the bank
                // count serialize (shared-memory bank conflicts); the
                // `pad` layout primitive breaks such strides.
                bank_conflict = accesses.iter().any(|a| {
                    let s = a.step_at(pos);
                    s >= 32.0 && (s % 32.0).abs() < 1e-6
                });
            }
        }

        // Instruction accounting.
        let flops_per_iter = stmt.value.flops() as f64
            + if stmt.mode != StoreMode::Assign {
                1.0
            } else {
                0.0
            };
        let unrolled = loops
            .last()
            .map(|l| l.kind == LoopKind::Unrolled)
            .unwrap_or(false);
        let loop_overhead = if unrolled { 0.15 } else { 1.0 };
        let ops_per_iter = flops_per_iter + n_loads + 1.0 + loop_overhead;
        let instructions = iterations * ops_per_iter / vector_factor;
        let flops = iterations * flops_per_iter;
        let l1_loads = iterations * n_loads / vector_factor;
        let l1_stores = iterations / vector_factor;

        // Cache modeling: hierarchical reuse-distance analysis. Every
        // access pays its *compulsory* misses (distinct lines it touches)
        // plus *re-touch* misses: at each loop level, lines reused across
        // iterations of that loop miss again only when the data touched
        // within one iteration overflows the cache (graded eviction
        // fraction). The next-N-lines prefetcher divides miss events on
        // long contiguous streams — the Table 2 mechanism that favours
        // layout tiling.
        let line = p.l1.line_bytes as f64;
        let n = loops.len();
        let total_lines_at =
            |d: usize| -> f64 { accesses.iter().map(|a| a.lines_within(d, line)).sum() };
        // Eviction fraction for data whose reuse distance spans one
        // iteration of the loop *above* depth d.
        let evict_at = |d: usize, capacity: f64| -> f64 {
            let bytes = total_lines_at(d) * line;
            (bytes / (capacity * 0.75) - 1.0).clamp(0.0, 1.0)
        };
        let misses_for = |a: &AccessProfile, capacity: f64, assoc: f64| -> f64 {
            // Compulsory: every distinct line of the region this statement
            // touches.
            let mut m = a.lines_within(0, line);
            let mut reps = 1.0;
            // Cache-set conflicts: a loop whose stride is a multiple of
            // the way size maps every iteration onto the same cache sets,
            // so once the loop runs past the associativity its lines evict
            // each other regardless of total footprint. This is the
            // real-hardware effect that panel-packed layouts (the paper's
            // `NKn` GMM family) avoid by making strides small.
            let way_bytes = capacity / assoc;
            let conflicts = |l: usize| -> bool {
                let stride_bytes = a.steps[l] * 4.0;
                stride_bytes >= way_bytes
                    && (stride_bytes % way_bytes).abs() < 1e-6
                    && a.distinct[l] > 2.0 * assoc
            };
            for (l, lp) in loops.iter().enumerate().take(n) {
                let ext = lp.extent as f64;
                if ext > 1.0 {
                    let inner = a.lines_within(l + 1, line);
                    let outer = a.lines_within(l, line);
                    // Lines a single iteration shares with its
                    // predecessor (full tile for stride-0 loops, the
                    // sliding-window overlap otherwise).
                    let retouched = if a.steps[l] == 0.0 {
                        inner
                    } else {
                        (inner - (outer - inner) / (ext - 1.0)).max(0.0)
                    };
                    // The reuse distance of a re-touch at level `l` spans
                    // one iteration of loop `l`; a conflicting loop
                    // *inside* that span thrashes the sets the tile lives
                    // in even when the footprint nominally fits.
                    let evict = if (l + 1..n).any(&conflicts) {
                        1.0
                    } else {
                        evict_at(l + 1, capacity)
                    };
                    m += retouched * (ext - 1.0) * reps * evict;
                    reps *= ext;
                }
            }
            m
        };

        let mut l1_misses = 0.0;
        let mut l2_misses = 0.0;
        let mut prefetch_issued = 0.0;
        let mut prefetch_useful = 0.0;
        let mut miss_latency_cycles = 0.0;
        // Attribution-only split of `miss_latency_cycles` into its L2 and
        // DRAM contributions; the original accumulator stays authoritative
        // for the latency so pricing is unchanged by profiling.
        let mut l2_lat_cycles = 0.0;
        let mut dram_lat_cycles = 0.0;
        // Memory-level parallelism: out-of-order cores overlap a few
        // outstanding misses (GPUs hide far more via warp switching); the
        // prefetcher hides most of the latency of long streams on top.
        let mlp = p.mlp;
        let stream_hide = 4.0;
        for a in &accesses {
            let run = a.contiguous_run_bytes();
            let pf1 = (run / line).clamp(1.0, p.l1.prefetch_lines as f64);
            let pf2 = (run / line).clamp(1.0, p.l2.prefetch_lines as f64);
            let m1_raw = misses_for(a, p.l1.size_bytes as f64, p.l1.assoc as f64);
            let m1 = m1_raw / pf1;
            let m2 = (misses_for(a, p.l2.size_bytes as f64, p.l2.assoc as f64) / pf2).min(m1);
            l1_misses += m1;
            l2_misses += m2;
            // Each surviving miss event fetches the next pf1-1 lines of
            // its stream; the lines that would otherwise have missed on
            // demand are the useful ones (equal on a perfect stream).
            prefetch_issued += m1 * (pf1 - 1.0);
            prefetch_useful += m1_raw - m1;
            let streaming = run >= 2.0 * line;
            let hide = if streaming { mlp * stream_hide } else { mlp };
            miss_latency_cycles += m1 * p.l2_latency_cycles / hide;
            miss_latency_cycles += m2 * p.dram_latency_cycles / (hide * 2.0);
            l2_lat_cycles += m1 * p.l2_latency_cycles / hide;
            dram_lat_cycles += m2 * p.dram_latency_cycles / (hide * 2.0);
        }

        // Parallel scaling.
        let parallel_extent: f64 = loops
            .iter()
            .filter(|l| l.kind == LoopKind::Parallel)
            .map(|l| l.extent as f64)
            .product();
        let cores_used = parallel_extent.min(p.cores as f64).max(1.0);
        let speedup = if cores_used > 1.0 {
            cores_used * p.parallel_efficiency
        } else {
            1.0
        };

        // GPUs are throughput machines: unparallelized code uses a single
        // SM's scalar pipeline.
        let mut compute_cycles = instructions / p.flops_per_cycle;
        if bank_conflict {
            compute_cycles *= p.bank_conflict_penalty;
        }
        compute_cycles /= speedup;

        let l2_traffic_cycles = l1_misses * line / p.l1.bytes_per_cycle / speedup;
        let dram_traffic_cycles = l2_misses * line / p.dram_bytes_per_cycle;
        let latency_cycles = miss_latency_cycles / speedup;

        let mem_cycles = l2_traffic_cycles + dram_traffic_cycles + latency_cycles;
        let cycles = compute_cycles.max(mem_cycles) + 0.25 * compute_cycles.min(mem_cycles);

        // Attribution: the binding side keeps full weight, the hidden side
        // is scaled by the 0.25 overlap factor, so the components add back
        // up to `cycles` (within ulps — the L2/DRAM latency split uses
        // separate accumulators).
        let (cscale, mscale) = if compute_cycles >= mem_cycles {
            (1.0, 0.25)
        } else {
            (0.25, 1.0)
        };
        let to_s = 1.0 / (p.freq_ghz * 1e9);
        let components = CostComponents {
            compute_s: cscale * compute_cycles * to_s,
            l2_transfer_s: mscale * l2_traffic_cycles * to_s,
            dram_transfer_s: mscale * dram_traffic_cycles * to_s,
            l2_latency_s: mscale * l2_lat_cycles / speedup * to_s,
            dram_latency_s: mscale * dram_lat_cycles / speedup * to_s,
        };
        let bank_conflict_s = if bank_conflict {
            cscale * compute_cycles * (1.0 - 1.0 / p.bank_conflict_penalty) * to_s
        } else {
            0.0
        };

        StmtCost {
            counters: Counters {
                instructions,
                flops,
                l1_loads,
                l1_stores,
                l1_misses,
                l2_misses,
                prefetch_issued,
                prefetch_useful,
                simd_weighted: instructions * vector_factor / (p.vector_lanes as f64).max(1.0),
                latency_s: cycles / (p.freq_ghz * 1e9),
            },
            components,
            bank_conflict_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::intel_cpu;
    use alt_layout::{presets, LayoutPlan, PropagationMode};
    use alt_loopir::{lower, AxisTiling, GraphSchedule, OpSchedule};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, Shape};

    fn conv_program(
        layout_tiled: bool,
        sched_tiled: bool,
    ) -> (alt_loopir::Program, Graph, LayoutPlan) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 64, 58, 58]));
        let w = g.add_param("w", Shape::new([64, 64, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        if layout_tiled {
            plan.assign_output_layout(
                &g,
                conv,
                presets::c2d_output_tiled(g.tensor(y).shape.clone(), 8, 8, 16).unwrap(),
            );
        }
        let mut sched = GraphSchedule::naive();
        if sched_tiled {
            let nd = plan.layout_of(&g, y).physical_shape().ndim();
            let mut spatial = vec![AxisTiling::none(); nd];
            if !layout_tiled {
                spatial[1] = AxisTiling::one(16);
                spatial[2] = AxisTiling::one(8);
                spatial[3] = AxisTiling::one(8);
            }
            sched.set(
                conv,
                OpSchedule {
                    spatial,
                    reduce: vec![AxisTiling::one(8), AxisTiling::none(), AxisTiling::none()],
                    vectorize: true,
                    unroll: true,
                    parallel: true,
                    fuse_into_producer: false,
                },
            );
        }
        let program = lower(&g, &plan, &sched);
        (program, g, plan)
    }

    #[test]
    fn measure_is_deterministic_and_positive() {
        let (p, _, _) = conv_program(false, false);
        let sim = Simulator::new(intel_cpu());
        let a = sim.measure(&p);
        let b = sim.measure(&p);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_tiled_schedule_is_faster_than_naive() {
        let sim = Simulator::new(intel_cpu());
        let (naive, _, _) = conv_program(false, false);
        let (tiled, _, _) = conv_program(false, true);
        let t_naive = sim.measure(&naive);
        let t_tiled = sim.measure(&tiled);
        assert!(
            t_tiled < t_naive,
            "tiled {t_tiled} should beat naive {t_naive}"
        );
    }

    #[test]
    fn counters_scale_with_problem_size() {
        let sim = Simulator::new(intel_cpu());
        let (p, _, _) = conv_program(false, false);
        let c = sim.profile_counters(&p);
        // 56*56*64 outputs x 64*3*3 reduce x 2 ops: ~2.3e8 flops.
        assert!(c.flops > 1e8, "flops {}", c.flops);
        assert!(c.l1_loads > 0.0 && c.l1_misses > 0.0);
        assert!(c.l1_misses < c.l1_loads);
    }

    #[test]
    fn prefetch_and_simd_counters_are_populated() {
        let sim = Simulator::new(intel_cpu());
        let (naive, _, _) = conv_program(false, false);
        let (tiled, _, _) = conv_program(false, true);
        let cn = sim.profile_counters(&naive);
        let ct = sim.profile_counters(&tiled);
        // The innermost conv loops stream contiguously, so the modeled
        // prefetcher is active and (on perfect streams) every issued line
        // absorbs a would-be miss.
        assert!(cn.prefetch_issued > 0.0, "issued {}", cn.prefetch_issued);
        assert!(cn.prefetch_useful > 0.0);
        assert!(cn.prefetch_useful <= cn.prefetch_issued + 1e-9);
        // The naive schedule is scalar; the tiled one vectorizes.
        let lanes = intel_cpu().vector_lanes as f64;
        assert!(cn.simd_utilization() <= 1.0 / lanes + 1e-9);
        assert!(ct.simd_utilization() > cn.simd_utilization());
        assert!(ct.simd_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn vectorization_reduces_instructions() {
        let sim = Simulator::new(intel_cpu());
        let (naive, _, _) = conv_program(false, false);
        let (tiled, _, _) = conv_program(false, true);
        let ci = sim.profile_counters(&naive);
        let ct = sim.profile_counters(&tiled);
        assert!(ct.instructions < ci.instructions / 4.0);
    }

    #[test]
    fn pad_primitive_avoids_gpu_bank_conflicts() {
        // A transposed read whose stride is a multiple of 32 lanes
        // serializes on GPU shared-memory banks; padding the trailing
        // dimension by one element breaks the alignment. The `pad`
        // layout primitive must therefore reduce estimated latency on
        // the GPU profile.
        use alt_layout::{Layout, LayoutPlan, LayoutPrim, PropagationMode};
        use alt_loopir::{lower, AxisTiling, GraphSchedule, OpSchedule};
        use alt_tensor::ops;
        use alt_tensor::Shape;

        let build = |pad: bool| {
            let mut g = alt_tensor::Graph::new();
            let x = g.add_input("x", Shape::new([128, 128]));
            let y = ops::permute(&mut g, x, &[1, 0]);
            let op = g.tensor(y).producer.unwrap();
            let mut plan = LayoutPlan::new(PropagationMode::Full);
            if pad {
                plan.set_layout(
                    x,
                    Layout::identity(Shape::new([128, 128]))
                        .with(LayoutPrim::Pad {
                            dim: 1,
                            before: 0,
                            after: 1,
                        })
                        .unwrap(),
                );
            }
            let mut sched = GraphSchedule::naive();
            sched.set(
                op,
                OpSchedule {
                    spatial: vec![AxisTiling::none(), AxisTiling::one(32)],
                    reduce: vec![],
                    vectorize: true,
                    unroll: false,
                    parallel: true,
                    fuse_into_producer: false,
                },
            );
            let program = lower(&g, &plan, &sched);
            Simulator::new(crate::profiles::nvidia_gpu()).measure(&program)
        };
        let conflicted = build(false);
        let padded = build(true);
        assert!(
            padded < conflicted,
            "padded {padded} should beat conflicted {conflicted}"
        );
    }
}
