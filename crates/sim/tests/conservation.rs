//! Conservation property tests for cost attribution.
//!
//! For random small kernels (random layouts and schedules), the per-loop
//! breakdown must *conserve*: component seconds sum to each leaf's
//! latency, leaf latencies plus group overhead sum to the group total,
//! and the breakdown total equals the scalar the tuner measures — on
//! both the analytic and trace-driven paths, across all three machine
//! profiles.

use alt_layout::{presets, LayoutPlan, PropagationMode};
use alt_loopir::{lower, AxisTiling, GraphSchedule, OpSchedule};
use alt_sim::{all_profiles, trace_profile, Simulator};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

/// Deterministic LCG so kernels are reproducible per seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random small kernel: conv2d or GMM with a random layout preset and a
/// random (possibly trivial) tiling schedule. Small enough for the exact
/// trace-driven path.
fn random_kernel(seed: u64) -> alt_loopir::Program {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(99991));
    let mut g = Graph::new();
    let (op, out) = if rng.pick(2) == 0 {
        let x = g.add_input("x", Shape::new([1, 8, 14, 14]));
        let w = g.add_param("w", Shape::new([16, 8, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        (g.tensor(y).producer.unwrap(), y)
    } else {
        let a = g.add_input("a", Shape::new([24, 32]));
        let b = g.add_param("b", Shape::new([32, 16]));
        let y = ops::gmm(&mut g, a, b);
        (g.tensor(y).producer.unwrap(), y)
    };
    let shape = g.tensor(out).shape.clone();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    let layout = match rng.pick(4) {
        0 => None,
        1 if shape.ndim() == 4 => presets::nhwo(shape.clone()).ok(),
        2 if shape.ndim() == 4 => presets::c2d_output_tiled(shape.clone(), 4, 4, 8).ok(),
        _ if shape.ndim() == 2 => presets::gmm_tiled(shape.clone(), 4, 8).ok(),
        _ => presets::channel_tiled(shape.clone(), 4).ok(),
    };
    if let Some(l) = layout {
        plan.assign_output_layout(&g, op, l);
    }
    let phys = plan.layout_of(&g, out).physical_shape();
    let mut sched = GraphSchedule::naive();
    if rng.pick(2) == 0 {
        let mut spatial = vec![AxisTiling::none(); phys.ndim()];
        for t in spatial.iter_mut() {
            if rng.pick(2) == 0 {
                *t = AxisTiling::one(match rng.pick(3) {
                    0 => 1,
                    1 => 2,
                    _ => 4,
                });
            }
        }
        // Only keep tilings that divide the physical dims.
        let reduce_ext: Vec<i64> = g
            .node(op)
            .compute
            .reduce_axes
            .iter()
            .map(|a| a.extent)
            .collect();
        let cand = OpSchedule {
            spatial,
            reduce: Vec::new(),
            vectorize: rng.pick(2) == 0,
            unroll: rng.pick(2) == 0,
            parallel: rng.pick(2) == 0,
            fuse_into_producer: false,
        };
        if cand.validate(phys.dims(), &reduce_ext) {
            sched.set(op, cand);
        }
    }
    lower(&g, &plan, &sched)
}

/// |a - b| within `tol` relative to scale (1-ulp-scale tolerance on the
/// accumulated sums).
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-9 * scale.max(1e-30)
}

#[test]
fn analytic_breakdown_conserves_latency() {
    for profile in all_profiles() {
        let sim = Simulator::new(profile);
        for seed in 0..12u64 {
            let program = random_kernel(seed);
            let measured = sim.measure(&program);
            let b = sim.profile_program(&program);

            // The breakdown total is the tuner's scalar, bit for bit.
            assert_eq!(
                b.total_s, measured,
                "seed {seed} on {}: breakdown total diverges",
                b.machine
            );

            let mut program_sum = 0.0;
            for group in &b.groups {
                let mut leaf_sum = 0.0;
                for leaf in &group.leaves {
                    // Component decomposition conserves per leaf.
                    assert!(
                        close(leaf.components.total(), leaf.latency_s, leaf.latency_s),
                        "seed {seed} on {}: leaf `{}` components {} != latency {}",
                        b.machine,
                        leaf.path_string(),
                        leaf.components.total(),
                        leaf.latency_s
                    );
                    leaf_sum += leaf.latency_s;
                }
                assert!(
                    close(leaf_sum + group.overhead_s, group.total_s, group.total_s),
                    "seed {seed} on {}: group `{}` leaves {} + overhead {} != {}",
                    b.machine,
                    group.label,
                    leaf_sum,
                    group.overhead_s,
                    group.total_s
                );
                program_sum += group.total_s;
            }
            assert!(
                close(program_sum, b.total_s, b.total_s),
                "seed {seed} on {}: groups {} != total {}",
                b.machine,
                program_sum,
                b.total_s
            );
        }
    }
}

#[test]
fn trace_breakdown_conserves_counts_and_latency() {
    for profile in all_profiles() {
        for seed in 0..6u64 {
            let program = random_kernel(seed);
            let tb = trace_profile(&program, &profile);

            let loads: u64 = tb.paths.iter().map(|p| p.loads).sum();
            let stores: u64 = tb.paths.iter().map(|p| p.stores).sum();
            let misses: u64 = tb.paths.iter().map(|p| p.misses).sum();
            assert_eq!(loads, tb.counters.loads, "seed {seed}: loads leak");
            assert_eq!(stores, tb.counters.stores, "seed {seed}: stores leak");
            assert_eq!(misses, tb.counters.cache.misses, "seed {seed}: misses leak");

            let lat_sum: f64 = tb.paths.iter().map(|p| p.latency_s).sum();
            assert!(
                close(lat_sum, tb.total_s, tb.total_s),
                "seed {seed} on {}: path latencies {} != total {}",
                profile.name,
                lat_sum,
                tb.total_s
            );
        }
    }
}

#[test]
fn trace_matches_untracked_run() {
    // Attribution must not perturb the simulated cache: the attributed
    // walk and the plain walk see identical access streams.
    let program = random_kernel(3);
    for profile in all_profiles() {
        let plain = alt_sim::trace_program(&program, &profile.l1);
        let attr = trace_profile(&program, &profile);
        assert_eq!(plain.loads, attr.counters.loads);
        assert_eq!(plain.stores, attr.counters.stores);
        assert_eq!(plain.cache.misses, attr.counters.cache.misses);
        assert_eq!(plain.cache.accesses, attr.counters.cache.accesses);
    }
}

#[test]
fn breakdown_paths_are_stable_and_named() {
    // Loop paths use lineage names, not positional counters: profiling
    // the same program twice yields identical path strings.
    let program = random_kernel(1);
    let sim = Simulator::new(alt_sim::intel_cpu());
    let a = sim.profile_program(&program);
    let b = sim.profile_program(&program);
    let paths = |bd: &alt_sim::CostBreakdown| -> Vec<String> {
        bd.groups
            .iter()
            .flat_map(|g| {
                g.leaves
                    .iter()
                    .map(|l| format!("{}/{}", g.label, l.path_string()))
            })
            .collect()
    };
    assert_eq!(paths(&a), paths(&b));
    assert!(!paths(&a).is_empty());
}
