//! Model zoo: the five networks of the paper's end-to-end evaluation
//! (§7.2) built as computational graphs.
//!
//! * ResNet-18 and MobileNet-V2 on `N x 3 x 224 x 224` images,
//! * BERT-base and BERT-tiny on `N x 128` token sequences,
//! * ResNet3D-18 on `N x 3 x 16 x 112 x 112` clips.
//!
//! Batch normalization is folded into per-channel scale/shift parameters
//! (standard for inference). Weights are synthetic; only graph structure
//! matters for compilation.

pub mod bert;
pub mod mobilenet;
pub mod resnet;
pub mod resnet3d;

pub use bert::{bert_base, bert_tiny};
pub use mobilenet::mobilenet_v2;
pub use resnet::resnet18;
pub use resnet3d::resnet3d_18;

use alt_tensor::Graph;

/// A named model graph.
pub struct Model {
    /// Display name used in benchmark tables.
    pub name: String,
    /// The computational graph.
    pub graph: Graph,
}

/// All end-to-end benchmark models at a given batch size.
pub fn all_models(batch: i64) -> Vec<Model> {
    vec![
        Model {
            name: format!("R18-b{batch}"),
            graph: resnet18(batch),
        },
        Model {
            name: format!("MV2-b{batch}"),
            graph: mobilenet_v2(batch),
        },
        Model {
            name: format!("BB-b{batch}"),
            graph: bert_base(batch),
        },
        Model {
            name: format!("BT-b{batch}"),
            graph: bert_tiny(batch),
        },
        Model {
            name: format!("R3D-b{batch}"),
            graph: resnet3d_18(batch),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_tensor::{OpTag, TensorKind};

    fn check_model(g: &Graph, min_complex: usize) {
        assert!(g.complex_ops().len() >= min_complex);
        // Exactly one runtime input.
        assert_eq!(g.input_tensors().len(), 1);
        // Every intermediate has a producer; the graph ends in >= 1 output.
        assert!(!g.output_tensors().is_empty());
        for t in g.tensors() {
            if t.kind == TensorKind::Intermediate {
                assert!(t.producer.is_some());
            }
        }
    }

    #[test]
    fn resnet18_structure() {
        let g = resnet18(1);
        // 1 stem + 16 block convs + 3 downsample convs + 1 fc.
        assert_eq!(g.complex_ops().len(), 21);
        check_model(&g, 20);
        let out = g.output_tensors()[0];
        assert_eq!(g.tensor(out).shape.dims(), &[1, 1000]);
    }

    #[test]
    fn mobilenet_v2_structure() {
        let g = mobilenet_v2(1);
        check_model(&g, 30);
        let out = g.output_tensors()[0];
        assert_eq!(g.tensor(out).shape.dims(), &[1, 1000]);
        // Depthwise convolutions are present.
        let has_dw = g.nodes().iter().any(|n| {
            matches!(n.tag, OpTag::Complex(alt_tensor::ComplexKind::Conv2d))
                && g.tensor(n.inputs[1]).shape.dim(1) == 1
        });
        assert!(has_dw);
    }

    #[test]
    fn bert_tiny_structure() {
        let g = bert_tiny(1);
        check_model(&g, 8);
        let out = g.output_tensors()[0];
        assert_eq!(g.tensor(out).shape.dims(), &[128, 128]);
    }

    #[test]
    fn bert_base_structure() {
        let g = bert_base(1);
        // 12 layers x (6 dense projections + 2 batched matmuls) = 96.
        assert_eq!(g.complex_ops().len(), 96);
        let out = g.output_tensors()[0];
        assert_eq!(g.tensor(out).shape.dims(), &[128, 768]);
    }

    #[test]
    fn resnet3d_structure() {
        let g = resnet3d_18(1);
        check_model(&g, 15);
        let out = g.output_tensors()[0];
        assert_eq!(g.tensor(out).shape.dims(), &[1, 400]);
    }

    #[test]
    fn batch_size_scales_input() {
        let g = resnet18(16);
        let input = g.input_tensors()[0];
        assert_eq!(g.tensor(input).shape.dims(), &[16, 3, 224, 224]);
    }

    #[test]
    fn models_lower_without_panicking() {
        use alt_layout::{LayoutPlan, PropagationMode};
        use alt_loopir::{lower, GraphSchedule};
        for m in all_models(1) {
            let plan = LayoutPlan::new(PropagationMode::Full);
            let p = lower(&m.graph, &plan, &GraphSchedule::naive());
            assert!(!p.groups.is_empty(), "{} lowered empty", m.name);
        }
    }
}
