//! BERT encoders (Devlin et al.) for `N x 128` token sequences.
//!
//! The graph starts at the embedding output (`[N*S, H]`) — embedding
//! lookup is a memory gather with no layout/loop tuning surface, so the
//! compilation benchmark starts after it, as in the paper's `N x 128`
//! input description.

use alt_tensor::ops;
use alt_tensor::{Graph, Shape, TensorId};

/// Encoder hyperparameters.
struct BertCfg {
    layers: usize,
    hidden: i64,
    heads: i64,
    ff: i64,
}

fn dense(g: &mut Graph, x: TensorId, out: i64, name: &str) -> TensorId {
    let in_dim = g.tensor(x).shape.dim(1);
    let w = g.add_param(format!("{name}_w"), Shape::new([in_dim, out]));
    let y = ops::gmm(g, x, w);
    let b = g.add_param(format!("{name}_b"), Shape::new([out]));
    ops::bias_add(g, y, b, 1)
}

fn layer_norm(g: &mut Graph, x: TensorId, name: &str) -> TensorId {
    let h = g.tensor(x).shape.dim(1);
    let gamma = g.add_param(format!("{name}_g"), Shape::new([h]));
    let beta = g.add_param(format!("{name}_b"), Shape::new([h]));
    ops::layernorm_lastdim(g, x, gamma, beta, 1e-5)
}

/// `[N*S, H] -> [N*A, S, Dh]` (split heads and move them into the batch).
fn split_heads(g: &mut Graph, x: TensorId, n: i64, s: i64, a: i64, dh: i64) -> TensorId {
    let x4 = ops::reshape(g, x, Shape::new([n, s, a, dh]));
    let perm = ops::permute(g, x4, &[0, 2, 1, 3]);
    ops::reshape(g, perm, Shape::new([n * a, s, dh]))
}

fn one_layer(g: &mut Graph, x: TensorId, cfg: &BertCfg, n: i64, s: i64, name: &str) -> TensorId {
    let h = cfg.hidden;
    let a = cfg.heads;
    let dh = h / a;

    let q = dense(g, x, h, &format!("{name}_q"));
    let k = dense(g, x, h, &format!("{name}_k"));
    let v = dense(g, x, h, &format!("{name}_v"));

    let qh = split_heads(g, q, n, s, a, dh);
    let kh = split_heads(g, k, n, s, a, dh);
    let vh = split_heads(g, v, n, s, a, dh);

    // scores[b, i, j] = sum_d q[b, i, d] * k[b, j, d]: transpose K.
    let kt = ops::permute(g, kh, &[0, 2, 1]);
    let scores = ops::batch_gmm(g, qh, kt);
    let scaled = ops::scale_const(g, scores, 1.0 / (dh as f32).sqrt());
    let probs = ops::softmax_lastdim(g, scaled);
    let ctx = ops::batch_gmm(g, probs, vh);

    // Merge heads back: [N*A, S, Dh] -> [N*S, H].
    let ctx4 = ops::reshape(g, ctx, Shape::new([n, a, s, dh]));
    let merged = ops::permute(g, ctx4, &[0, 2, 1, 3]);
    let ctx2 = ops::reshape(g, merged, Shape::new([n * s, h]));

    let attn_out = dense(g, ctx2, h, &format!("{name}_o"));
    let res1 = ops::add(g, attn_out, x);
    let ln1 = layer_norm(g, res1, &format!("{name}_ln1"));

    let ff1 = dense(g, ln1, cfg.ff, &format!("{name}_ff1"));
    let act = ops::gelu(g, ff1);
    let ff2 = dense(g, act, h, &format!("{name}_ff2"));
    let res2 = ops::add(g, ff2, ln1);
    layer_norm(g, res2, &format!("{name}_ln2"))
}

fn bert(cfg: BertCfg, batch: i64) -> Graph {
    let s = 128;
    let mut g = Graph::new();
    let mut cur = g.add_input("embeddings", Shape::new([batch * s, cfg.hidden]));
    for l in 0..cfg.layers {
        cur = one_layer(&mut g, cur, &cfg, batch, s, &format!("layer{l}"));
    }
    g
}

/// BERT-base: 12 layers, hidden 768, 12 heads, FF 3072.
pub fn bert_base(batch: i64) -> Graph {
    bert(
        BertCfg {
            layers: 12,
            hidden: 768,
            heads: 12,
            ff: 3072,
        },
        batch,
    )
}

/// BERT-tiny: 2 layers, hidden 128, 2 heads, FF 512.
pub fn bert_tiny(batch: i64) -> Graph {
    bert(
        BertCfg {
            layers: 2,
            hidden: 128,
            heads: 2,
            ff: 512,
        },
        batch,
    )
}
