//! ResNet3D-18 (Hara et al., ICCV'17 workshops) for
//! `N x 3 x 16 x 112 x 112` video clips, 400 Kinetics classes.

use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape, TensorId};

/// 3-D convolution + folded batch-norm + optional ReLU, with symmetric
/// spatial padding `pad` (per dimension triple).
#[allow(clippy::too_many_arguments)]
fn conv3_bn(
    g: &mut Graph,
    x: TensorId,
    out_ch: i64,
    k: [i64; 3],
    strides: [i64; 3],
    pad: [i64; 3],
    relu: bool,
    name: &str,
) -> TensorId {
    let in_ch = g.tensor(x).shape.dim(1);
    let x = if pad.iter().any(|&p| p > 0) {
        ops::pad(
            g,
            x,
            &[
                (0, 0),
                (0, 0),
                (pad[0], pad[0]),
                (pad[1], pad[1]),
                (pad[2], pad[2]),
            ],
        )
    } else {
        x
    };
    let w = g.add_param(
        format!("{name}_w"),
        Shape::new([out_ch, in_ch, k[0], k[1], k[2]]),
    );
    let c = ops::conv3d(g, x, w, ConvCfg::with_strides(&strides));
    let s = g.add_param(format!("{name}_bn_s"), Shape::new([out_ch]));
    let t = g.add_param(format!("{name}_bn_t"), Shape::new([out_ch]));
    let bn = ops::scale_shift(g, c, s, t, 1);
    if relu {
        ops::relu(g, bn)
    } else {
        bn
    }
}

fn basic_block3d(g: &mut Graph, x: TensorId, out_ch: i64, stride: i64, name: &str) -> TensorId {
    let in_ch = g.tensor(x).shape.dim(1);
    let c1 = conv3_bn(
        g,
        x,
        out_ch,
        [3, 3, 3],
        [stride, stride, stride],
        [1, 1, 1],
        true,
        &format!("{name}_c1"),
    );
    let c2 = conv3_bn(
        g,
        c1,
        out_ch,
        [3, 3, 3],
        [1, 1, 1],
        [1, 1, 1],
        false,
        &format!("{name}_c2"),
    );
    let shortcut = if stride != 1 || in_ch != out_ch {
        conv3_bn(
            g,
            x,
            out_ch,
            [1, 1, 1],
            [stride, stride, stride],
            [0, 0, 0],
            false,
            &format!("{name}_ds"),
        )
    } else {
        x
    };
    let sum = ops::add(g, c2, shortcut);
    ops::relu(g, sum)
}

/// Builds ResNet3D-18 at the given batch size.
pub fn resnet3d_18(batch: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("clip", Shape::new([batch, 3, 16, 112, 112]));
    // Stem: 3x7x7 conv, stride (1, 2, 2), pad (1, 3, 3).
    let stem = conv3_bn(&mut g, x, 64, [3, 7, 7], [1, 2, 2], [1, 3, 3], true, "stem");
    // 3x3x3 max pool, stride 2, pad 1.
    let pooled = {
        let p = ops::pad(&mut g, stem, &[(0, 0), (0, 0), (1, 1), (1, 1), (1, 1)]);
        ops::max_pool3d(&mut g, p, 3, 2)
    };
    let mut cur = pooled;
    for (stage, (ch, stride)) in [(64, 1), (128, 2), (256, 2), (512, 2)].iter().enumerate() {
        for blk in 0..2 {
            let s = if blk == 0 { *stride } else { 1 };
            cur = basic_block3d(&mut g, cur, *ch, s, &format!("l{stage}b{blk}"));
        }
    }
    let gap = ops::global_avg_pool(&mut g, cur);
    let w = g.add_param("fc_w", Shape::new([512, 400]));
    let logits = ops::gmm(&mut g, gap, w);
    let b = g.add_param("fc_b", Shape::new([400]));
    ops::bias_add(&mut g, logits, b, 1);
    g
}
