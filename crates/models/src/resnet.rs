//! ResNet-18 (He et al., CVPR'16) for `N x 3 x 224 x 224` inputs.

use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape, TensorId};

/// Convolution + folded batch-norm + optional ReLU.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_bn(
    g: &mut Graph,
    x: TensorId,
    out_ch: i64,
    k: i64,
    stride: i64,
    pad: i64,
    relu: bool,
    name: &str,
) -> TensorId {
    let in_ch = g.tensor(x).shape.dim(1);
    let x = if pad > 0 {
        ops::pad2d_spatial(g, x, pad)
    } else {
        x
    };
    let w = g.add_param(format!("{name}_w"), Shape::new([out_ch, in_ch, k, k]));
    let c = ops::conv2d(g, x, w, ConvCfg::strided(stride));
    let s = g.add_param(format!("{name}_bn_s"), Shape::new([out_ch]));
    let t = g.add_param(format!("{name}_bn_t"), Shape::new([out_ch]));
    let bn = ops::scale_shift(g, c, s, t, 1);
    if relu {
        ops::relu(g, bn)
    } else {
        bn
    }
}

/// One basic residual block (two 3x3 convolutions).
fn basic_block(g: &mut Graph, x: TensorId, out_ch: i64, stride: i64, name: &str) -> TensorId {
    let in_ch = g.tensor(x).shape.dim(1);
    let c1 = conv_bn(g, x, out_ch, 3, stride, 1, true, &format!("{name}_c1"));
    let c2 = conv_bn(g, c1, out_ch, 3, 1, 1, false, &format!("{name}_c2"));
    let shortcut = if stride != 1 || in_ch != out_ch {
        conv_bn(g, x, out_ch, 1, stride, 0, false, &format!("{name}_ds"))
    } else {
        x
    };
    let sum = ops::add(g, c2, shortcut);
    ops::relu(g, sum)
}

/// Builds ResNet-18 at the given batch size.
pub fn resnet18(batch: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("image", Shape::new([batch, 3, 224, 224]));
    // Stem: 7x7/2 conv (pad 3) + 3x3/2 max pool (pad 1).
    let stem = conv_bn(&mut g, x, 64, 7, 2, 3, true, "stem");
    let pooled = {
        let p = ops::pad2d_spatial(&mut g, stem, 1);
        ops::max_pool2d(&mut g, p, 3, 2)
    };
    let mut cur = pooled;
    for (stage, (ch, stride)) in [(64, 1), (128, 2), (256, 2), (512, 2)].iter().enumerate() {
        for blk in 0..2 {
            let s = if blk == 0 { *stride } else { 1 };
            cur = basic_block(&mut g, cur, *ch, s, &format!("l{stage}b{blk}"));
        }
    }
    let gap = ops::global_avg_pool(&mut g, cur);
    let w = g.add_param("fc_w", Shape::new([512, 1000]));
    let logits = ops::gmm(&mut g, gap, w);
    let b = g.add_param("fc_b", Shape::new([1000]));
    ops::bias_add(&mut g, logits, b, 1);
    g
}
