//! MobileNet-V2 (Sandler et al., CVPR'18) for `N x 3 x 224 x 224` inputs.

use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape, TensorId};

#[allow(clippy::too_many_arguments)]
fn conv_bn_relu6(
    g: &mut Graph,
    x: TensorId,
    out_ch: i64,
    k: i64,
    stride: i64,
    pad: i64,
    groups: i64,
    relu: bool,
    name: &str,
) -> TensorId {
    let in_ch = g.tensor(x).shape.dim(1);
    let x = if pad > 0 {
        ops::pad2d_spatial(g, x, pad)
    } else {
        x
    };
    let w = g.add_param(
        format!("{name}_w"),
        Shape::new([out_ch, in_ch / groups, k, k]),
    );
    let c = ops::conv2d(
        g,
        x,
        w,
        ConvCfg {
            stride,
            groups,
            ..ConvCfg::default()
        },
    );
    let s = g.add_param(format!("{name}_bn_s"), Shape::new([out_ch]));
    let t = g.add_param(format!("{name}_bn_t"), Shape::new([out_ch]));
    let bn = ops::scale_shift(g, c, s, t, 1);
    if relu {
        ops::relu6(g, bn)
    } else {
        bn
    }
}

/// Inverted residual block: expand (1x1) -> depthwise (3x3) -> project
/// (1x1), with a residual connection when shapes allow.
fn inverted_residual(
    g: &mut Graph,
    x: TensorId,
    out_ch: i64,
    stride: i64,
    expand: i64,
    name: &str,
) -> TensorId {
    let in_ch = g.tensor(x).shape.dim(1);
    let hidden = in_ch * expand;
    let mut cur = x;
    if expand != 1 {
        cur = conv_bn_relu6(g, cur, hidden, 1, 1, 0, 1, true, &format!("{name}_exp"));
    }
    cur = conv_bn_relu6(
        g,
        cur,
        hidden,
        3,
        stride,
        1,
        hidden,
        true,
        &format!("{name}_dw"),
    );
    cur = conv_bn_relu6(g, cur, out_ch, 1, 1, 0, 1, false, &format!("{name}_proj"));
    if stride == 1 && in_ch == out_ch {
        ops::add(g, cur, x)
    } else {
        cur
    }
}

/// Builds MobileNet-V2 at the given batch size.
pub fn mobilenet_v2(batch: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("image", Shape::new([batch, 3, 224, 224]));
    let mut cur = conv_bn_relu6(&mut g, x, 32, 3, 2, 1, 1, true, "stem");
    // (expand t, channels c, repeats n, stride s) per the paper.
    let cfg: [(i64, i64, i64, i64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (bi, (t, c, n, s)) in cfg.iter().enumerate() {
        for r in 0..*n {
            let stride = if r == 0 { *s } else { 1 };
            cur = inverted_residual(&mut g, cur, *c, stride, *t, &format!("ir{bi}_{r}"));
        }
    }
    cur = conv_bn_relu6(&mut g, cur, 1280, 1, 1, 0, 1, true, "head");
    let gap = ops::global_avg_pool(&mut g, cur);
    let w = g.add_param("fc_w", Shape::new([1280, 1000]));
    let logits = ops::gmm(&mut g, gap, w);
    let b = g.add_param("fc_b", Shape::new([1000]));
    ops::bias_add(&mut g, logits, b, 1);
    g
}
