//! Auto-tuning baselines: Ansor-like, AutoTVM-like and FlexTensor-like.
//!
//! All three perform *loop-only* tuning over a predetermined layout
//! (paper §7: AutoTVM/Ansor use the NeoCPU `N O/ot HW ot` layout with a
//! fixed `ot`; FlexTensor and Torch use the framework default). They
//! differ in search machinery:
//!
//! * **Ansor-like** — batch sampling + walk with a learned cost model and
//!   top-k measurement (this is exactly the loop-only stage of the ALT
//!   tuner, by construction).
//! * **AutoTVM-like** — a *restricted* template space (no reduction
//!   tiling, vectorization always on) explored by simulated annealing
//!   with the cost model; its weakness is the small space.
//! * **FlexTensor-like** — full space, random-walk exploration, **no
//!   cost model**: every visited point is measured on the device, so the
//!   budget buys far fewer distinct evaluations.

use alt_autotune::space::{build_loop_space, decode_loop_point, Point, Space};
use alt_autotune::tuner::{apply_fixed_layout, base_schedule, FixedLayout, TuneConfig};
use alt_autotune::{tune_graph, Measurer};
use alt_layout::{LayoutPlan, PropagationMode};
use alt_loopir::GraphSchedule;
use alt_sim::{MachineKind, MachineProfile};
use alt_tensor::{Graph, OpId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of running one baseline system.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// End-to-end latency of the tuned graph (seconds).
    pub latency: f64,
    /// Measurements consumed.
    pub measurements: u64,
}

/// The predetermined layout each baseline uses on a platform.
pub fn baseline_layout(profile: &MachineProfile) -> FixedLayout {
    match profile.kind {
        // NeoCPU-integrated: N O/ot ... ot with predetermined ot.
        MachineKind::Cpu => FixedLayout::ChannelTiled(16),
        // GPU frameworks default to NCHW.
        MachineKind::Gpu => FixedLayout::Identity,
    }
}

/// Ansor-like: the strongest loop-only baseline.
pub fn ansor_like(
    graph: &Graph,
    profile: MachineProfile,
    budget: u64,
    seed: u64,
) -> BaselineResult {
    let cfg = TuneConfig {
        joint_budget: 0,
        loop_budget: budget,
        fixed_layout: Some(baseline_layout(&profile)),
        free_input_layouts: true,
        seed,
        ..TuneConfig::default()
    };
    let r = tune_graph(graph, profile, cfg);
    BaselineResult {
        latency: r.latency,
        measurements: r.measurements,
    }
}

/// Restricts a loop space the way AutoTVM templates do: reduction axes
/// untiled, vectorize/parallel pinned on.
fn restrict_space(space: &Space, n_spatial: usize) -> Space {
    let mut s = space.clone();
    for (k, knob) in s.knobs.iter_mut().enumerate() {
        if k >= n_spatial {
            // Reduce tilings and annotation knobs become single-option.
            let pinned = if knob.name == "vectorize" || knob.name == "parallel" {
                1
            } else if knob.name == "unroll" {
                0
            } else {
                knob.options[0]
            };
            knob.options = vec![pinned];
        }
    }
    s
}

/// AutoTVM-like: simulated annealing over a restricted template space.
pub fn autotvm_like(
    graph: &Graph,
    profile: MachineProfile,
    budget: u64,
    seed: u64,
) -> BaselineResult {
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    apply_fixed_layout(graph, &mut plan, baseline_layout(&profile), true);
    let mut sched = base_schedule(graph);
    let mut measurer = Measurer::new(graph, profile);
    let mut rng = StdRng::seed_from_u64(seed);

    let ops = graph.complex_ops();
    if ops.is_empty() {
        let latency = measurer.measure_graph_free(&plan, &sched);
        return BaselineResult {
            latency,
            measurements: 0,
        };
    }
    let per_op = (budget / ops.len() as u64).max(1);
    for op in ops {
        let phys_nd = plan
            .layout_of(graph, graph.node(op).output)
            .physical_shape()
            .ndim();
        let space = restrict_space(&build_loop_space(graph, &plan, op), phys_nd);
        // Simulated annealing: accept worse points with decaying
        // probability.
        let mut cur = space.random_point(&mut rng);
        let mut cur_lat = measure_point(&mut measurer, graph, &plan, &mut sched, op, &space, &cur);
        let mut best = (cur_lat, cur.clone());
        let mut temp = 1.0f64;
        for _ in 1..per_op {
            let cand = space.neighbor(&cur, &mut rng);
            let lat = measure_point(&mut measurer, graph, &plan, &mut sched, op, &space, &cand);
            if lat < best.0 {
                best = (lat, cand.clone());
            }
            let accept = lat < cur_lat
                || rng.gen::<f64>() < (-(lat - cur_lat) / (cur_lat * temp.max(1e-3))).exp();
            if accept {
                cur = cand;
                cur_lat = lat;
            }
            temp *= 0.97;
        }
        let s = decode_loop_point(graph, &plan, op, &space, &best.1);
        sched.set(op, s);
    }
    let latency = measurer.measure_graph_free(&plan, &sched);
    BaselineResult {
        latency,
        measurements: measurer.used,
    }
}

/// FlexTensor-like: random walk over the full space with every candidate
/// measured (no cost model).
pub fn flextensor_like(
    graph: &Graph,
    profile: MachineProfile,
    budget: u64,
    seed: u64,
) -> BaselineResult {
    // FlexTensor uses the framework-default layout (no NeoCPU).
    let plan = LayoutPlan::new(PropagationMode::Full);
    let mut sched = base_schedule(graph);
    let mut measurer = Measurer::new(graph, profile);
    let mut rng = StdRng::seed_from_u64(seed);

    let ops = graph.complex_ops();
    if !ops.is_empty() {
        let per_op = (budget / ops.len() as u64).max(1);
        for op in ops {
            let space = build_loop_space(graph, &plan, op);
            let mut best: Option<(f64, Point)> = None;
            for i in 0..per_op {
                let cand = match (&best, i % 4) {
                    (Some((_, p)), 1..=3) => space.neighbor(p, &mut rng),
                    _ => space.random_point(&mut rng),
                };
                let lat = measure_point(&mut measurer, graph, &plan, &mut sched, op, &space, &cand);
                if best.as_ref().map(|b| lat < b.0).unwrap_or(true) {
                    best = Some((lat, cand));
                }
            }
            if let Some((_, p)) = best {
                let s = decode_loop_point(graph, &plan, op, &space, &p);
                sched.set(op, s);
            }
        }
    }
    let latency = measurer.measure_graph_free(&plan, &sched);
    BaselineResult {
        latency,
        measurements: measurer.used,
    }
}

fn measure_point(
    measurer: &mut Measurer,
    graph: &Graph,
    plan: &LayoutPlan,
    sched: &mut GraphSchedule,
    op: OpId,
    space: &Space,
    p: &Point,
) -> f64 {
    let s = decode_loop_point(graph, plan, op, space, p);
    let saved = sched.get(op);
    sched.set(op, s);
    // Baselines run without fault injection; a failure here means the
    // point itself is unlowerable, which the spaces never produce.
    let lat = measurer
        .measure_op(plan, sched, op)
        .expect("baseline measurement failed");
    sched.set(op, saved);
    lat
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_sim::intel_cpu;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn conv_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 16, 34, 34]));
        let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
        let _ = ops::conv2d(&mut g, x, w, ConvCfg::default());
        g
    }

    #[test]
    fn all_tuners_return_finite_latencies() {
        let g = conv_graph();
        for (name, r) in [
            ("ansor", ansor_like(&g, intel_cpu(), 32, 3)),
            ("autotvm", autotvm_like(&g, intel_cpu(), 32, 3)),
            ("flextensor", flextensor_like(&g, intel_cpu(), 32, 3)),
        ] {
            assert!(r.latency.is_finite() && r.latency > 0.0, "{name}");
            assert!(r.measurements > 0, "{name}");
        }
    }

    #[test]
    fn ansor_beats_flextensor_at_equal_budget() {
        // With a cost model, Ansor-like explores far more points per
        // measurement; at a modest budget it should not lose.
        let g = conv_graph();
        let a = ansor_like(&g, intel_cpu(), 64, 5);
        let f = flextensor_like(&g, intel_cpu(), 64, 5);
        assert!(
            a.latency <= f.latency * 1.25,
            "ansor {} vs flextensor {}",
            a.latency,
            f.latency
        );
    }
}
