//! Baseline systems for the ALT reproduction: vendor libraries
//! ([`vendor`]), auto-tuning frameworks ([`tuners`]) and ALT ablations
//! ([`ablations`]).

pub mod ablations;
pub mod tuners;
pub mod vendor;

pub use ablations::{alt_full, alt_ol, alt_wp};
pub use tuners::{ansor_like, autotvm_like, baseline_layout, flextensor_like, BaselineResult};
pub use vendor::vendor_plan;
