//! ALT ablations from the paper's evaluation:
//!
//! * **ALT-OL** (§7.2) — loop optimization only, on channels-last
//!   (`NHWO`/`NDHWO`) layouts; no joint stage.
//! * **ALT-WP** (§7.2) — joint tuning with layout propagation limited to
//!   eliminating conversions between adjacent operators (Fig. 5b), i.e.
//!   no fusion alignment, so fusion conflicts remain.
//! * **ALT-FP / ALT-BP** (§7.3.2, Fig. 12) — forced forward/backward
//!   layout sharing across two consecutive complex operators, instead of
//!   tuning them independently with a conversion in between.

use alt_autotune::tune_graph;
use alt_autotune::tuner::{FixedLayout, TuneConfig, TuneResult};
use alt_layout::PropagationMode;
use alt_sim::MachineProfile;
use alt_tensor::Graph;

/// ALT-OL: loop-only tuning on channels-last layouts.
pub fn alt_ol(graph: &Graph, profile: MachineProfile, budget: u64, seed: u64) -> TuneResult {
    let cfg = TuneConfig {
        joint_budget: 0,
        loop_budget: budget,
        fixed_layout: Some(FixedLayout::ChannelsLast),
        free_input_layouts: true,
        seed,
        ..TuneConfig::default()
    };
    tune_graph(graph, profile, cfg)
}

/// ALT-WP: full joint tuning but without fusion-aligning propagation.
pub fn alt_wp(
    graph: &Graph,
    profile: MachineProfile,
    joint_budget: u64,
    loop_budget: u64,
    seed: u64,
) -> TuneResult {
    let cfg = TuneConfig {
        joint_budget,
        loop_budget,
        mode: PropagationMode::WithoutFusionAlign,
        free_input_layouts: true,
        seed,
        ..TuneConfig::default()
    };
    tune_graph(graph, profile, cfg)
}

/// Full ALT with default configuration (joint + loop-only stages).
pub fn alt_full(
    graph: &Graph,
    profile: MachineProfile,
    joint_budget: u64,
    loop_budget: u64,
    seed: u64,
) -> TuneResult {
    let cfg = TuneConfig {
        joint_budget,
        loop_budget,
        free_input_layouts: true,
        seed,
        ..TuneConfig::default()
    };
    tune_graph(graph, profile, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_sim::intel_cpu;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn chain_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 16, 18, 18]));
        let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let r = ops::relu(&mut g, c);
        let w2 = g.add_param("w2", Shape::new([32, 32, 1, 1]));
        let _ = ops::conv2d(&mut g, r, w2, ConvCfg::default());
        g
    }

    #[test]
    fn ablations_run_and_order_sanely() {
        let g = chain_graph();
        let ol = alt_ol(&g, intel_cpu(), 96, 2);
        let wp = alt_wp(&g, intel_cpu(), 48, 48, 2);
        let full = alt_full(&g, intel_cpu(), 48, 48, 2);
        assert!(ol.latency.is_finite());
        assert!(wp.latency.is_finite());
        assert!(full.latency.is_finite());
        // Full ALT should be at least competitive with the ablations at
        // this budget (exact ordering is workload-dependent and the
        // budgets are tiny, but it must not be catastrophically worse).
        assert!(
            full.latency <= ol.latency * 2.0,
            "full {} vs ol {}",
            full.latency,
            ol.latency
        );
        assert!(
            full.latency <= wp.latency * 2.0,
            "full {} vs wp {}",
            full.latency,
            wp.latency
        );
    }
}
