//! Vendor-library stand-ins (MKL-DNN, cuDNN, XNNPACK/Torch) and the
//! hardware-specific graph compilers built on them (OpenVINO, TensorRT).
//!
//! Vendor kernels are represented by fixed, expert-chosen layouts and
//! loop schedules: blocked channel layouts on the Intel CPU (MKL-DNN),
//! NCHW on the GPU (cuDNN), channels-last on ARM (XNNPACK). The
//! schedules are shape-blind heuristics — good for the typical shapes
//! vendors optimize, weaker on unusual configurations, exactly the
//! behaviour the paper observes.

use alt_autotune::tuner::{
    apply_fixed_layout, base_schedule, largest_divisor_at_most, FixedLayout,
};
use alt_layout::{LayoutPlan, PropagationMode};
use alt_loopir::{AxisTiling, GraphSchedule, OpSchedule};
use alt_sim::{MachineKind, MachineProfile};
use alt_tensor::{Graph, OpTag};

/// Vendor configuration for one platform.
fn vendor_layout(profile: &MachineProfile) -> FixedLayout {
    match (profile.kind, profile.name) {
        // MKL-DNN: blocked `nChw16c`-style layouts.
        (MachineKind::Cpu, "intel-cpu") => FixedLayout::ChannelTiled(16),
        // cuDNN default: NCHW.
        (MachineKind::Gpu, _) => FixedLayout::Identity,
        // XNNPACK / Torch mobile: channels-last.
        _ => FixedLayout::ChannelsLast,
    }
}

/// Expert fixed schedule for one operator given its physical output dims.
fn expert_schedule(
    graph: &Graph,
    plan: &LayoutPlan,
    op: alt_tensor::OpId,
    profile: &MachineProfile,
    fuse: bool,
) -> OpSchedule {
    let node = graph.node(op);
    let phys = plan.layout_of(graph, node.output).physical_shape();
    let nd = phys.ndim();
    let lanes = profile.vector_lanes as i64;
    let mut spatial = vec![AxisTiling::none(); nd];
    // Vectorize the innermost dimension with a lane-sized tile and give
    // the second-innermost a modest tile for register blocking.
    if nd >= 1 {
        let t = largest_divisor_at_most(phys.dim(nd - 1), 4 * lanes);
        if t > 1 {
            spatial[nd - 1] = AxisTiling::one(t);
        }
    }
    if nd >= 2 {
        let t = largest_divisor_at_most(phys.dim(nd - 2), 8);
        if t > 1 {
            spatial[nd - 2] = AxisTiling::one(t);
        }
    }
    let reduce = node
        .compute
        .reduce_axes
        .iter()
        .map(|a| {
            let t = largest_divisor_at_most(a.extent, 8);
            if t > 1 {
                AxisTiling::one(t)
            } else {
                AxisTiling::none()
            }
        })
        .collect();
    OpSchedule {
        spatial,
        reduce,
        vectorize: true,
        unroll: true,
        parallel: true,
        fuse_into_producer: fuse && node.tag == OpTag::Elementwise,
    }
}

/// Hand-tuned schedule variants a vendor library would ship for one
/// operator class; the dispatcher picks the best for the concrete shape
/// (the way cuDNN selects among algorithms).
fn vendor_menu(
    graph: &Graph,
    plan: &LayoutPlan,
    op: alt_tensor::OpId,
    profile: &MachineProfile,
    fuse: bool,
) -> Vec<OpSchedule> {
    let base = expert_schedule(graph, plan, op, profile, fuse);
    let node = graph.node(op);
    let phys = plan.layout_of(graph, node.output).physical_shape();
    let nd = phys.ndim();
    let lanes = profile.vector_lanes as i64;
    let mut out = vec![base.clone()];
    // Variant: narrow vector tile + deep reduction blocking.
    {
        let mut v = base.clone();
        if nd >= 1 {
            let t = largest_divisor_at_most(phys.dim(nd - 1), lanes);
            v.spatial[nd - 1] = if t > 1 {
                AxisTiling::one(t)
            } else {
                AxisTiling::none()
            };
        }
        v.reduce = node
            .compute
            .reduce_axes
            .iter()
            .map(|a| {
                let t = largest_divisor_at_most(a.extent, 16);
                if t > 1 {
                    AxisTiling::one(t)
                } else {
                    AxisTiling::none()
                }
            })
            .collect();
        out.push(v);
    }
    // Variant: register blocking on the two innermost spatial dims.
    if nd >= 2 {
        let mut v = base.clone();
        let t2 = largest_divisor_at_most(phys.dim(nd - 2), 4);
        v.spatial[nd - 2] = if t2 > 1 {
            AxisTiling::one(t2)
        } else {
            AxisTiling::none()
        };
        let t3 = if nd >= 3 {
            largest_divisor_at_most(phys.dim(nd - 3), 4)
        } else {
            1
        };
        if nd >= 3 && t3 > 1 {
            v.spatial[nd - 3] = AxisTiling::one(t3);
        }
        out.push(v);
    }
    // Variant: untiled reduction, wide vector tile.
    {
        let mut v = base;
        v.reduce = vec![AxisTiling::none(); node.compute.reduce_axes.len()];
        out.push(v);
    }
    out
}

/// Builds the vendor plan + schedules for a graph.
///
/// `fuse_graph` distinguishes the graph compilers (OpenVINO/TensorRT,
/// which fuse elementwise epilogues) from eager execution (Torch, which
/// runs each operator as a separate kernel).
pub fn vendor_plan(
    graph: &Graph,
    profile: &MachineProfile,
    fuse_graph: bool,
) -> (LayoutPlan, GraphSchedule) {
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    apply_fixed_layout(graph, &mut plan, vendor_layout(profile), true);
    let mut sched = if fuse_graph {
        base_schedule(graph)
    } else {
        GraphSchedule::naive()
    };
    for node in graph.nodes() {
        sched.set(
            node.id,
            expert_schedule(graph, &plan, node.id, profile, fuse_graph),
        );
    }
    // Per complex operator, dispatch among the shipped kernel variants
    // (deterministic, not search: this models vendor engineering).
    let sim = alt_sim::Simulator::new(*profile);
    for &op in &graph.complex_ops() {
        let mut best: Option<(f64, OpSchedule)> = None;
        for v in vendor_menu(graph, &plan, op, profile, fuse_graph) {
            let mut trial = sched.clone();
            trial.set(op, v.clone());
            let mut roots = std::collections::HashSet::new();
            roots.insert(op);
            let program = alt_loopir::lower_filtered(graph, &plan, &trial, Some(&roots));
            let lat = sim.measure(&program);
            if best.as_ref().map(|b| lat < b.0).unwrap_or(true) {
                best = Some((lat, v));
            }
        }
        if let Some((_, v)) = best {
            sched.set(op, v);
        }
    }
    (plan, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_autotune::Measurer;
    use alt_sim::{arm_cpu, intel_cpu, nvidia_gpu};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn conv_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 32, 34, 34]));
        let w = g.add_param("w", Shape::new([64, 32, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let b = g.add_param("b", Shape::new([64]));
        let ba = ops::bias_add(&mut g, c, b, 1);
        let _ = ops::relu(&mut g, ba);
        g
    }

    #[test]
    fn vendor_beats_naive_on_all_platforms() {
        let g = conv_graph();
        for profile in [intel_cpu(), nvidia_gpu(), arm_cpu()] {
            let (plan, sched) = vendor_plan(&g, &profile, true);
            let m = Measurer::new(&g, profile);
            let vendor = m.measure_graph_free(&plan, &sched);
            let naive = m.measure_graph_free(
                &LayoutPlan::new(PropagationMode::Full),
                &GraphSchedule::naive(),
            );
            assert!(
                vendor < naive,
                "{}: vendor {vendor} vs naive {naive}",
                profile.name
            );
        }
    }

    #[test]
    fn fused_compiler_beats_eager() {
        let g = conv_graph();
        let profile = intel_cpu();
        let (pf, sf) = vendor_plan(&g, &profile, true);
        let (pe, se) = vendor_plan(&g, &profile, false);
        let m = Measurer::new(&g, profile);
        let fused = m.measure_graph_free(&pf, &sf);
        let eager = m.measure_graph_free(&pe, &se);
        assert!(fused <= eager, "fused {fused} vs eager {eager}");
    }
}
