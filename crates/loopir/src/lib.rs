//! Loop-nest IR, schedules, lowering and interpretation (paper §4.3, §6).
//!
//! * [`schedule`] — per-operator loop schedules (multi-level tiling,
//!   vectorize/unroll/parallel annotations, fusion requests).
//! * [`tir`] — the concrete loop-tree IR ("TIR-lite") shared by the
//!   functional interpreter and the hardware performance model.
//! * [`lower`](crate::lower()) — the layout-aware lowering pass: loop nests are rebuilt
//!   from *physical* output dimensions and all tensor accesses are
//!   rewritten through `S_X(S_Y^{-1}(L'))`.
//! * [`interp`] — functional execution for correctness validation.

pub mod hash;
pub mod interp;
pub mod lower;
pub mod schedule;
pub mod tir;

pub use hash::program_fingerprint;
pub use interp::{pack_buffers, run_program, unpack_buffers};
pub use lower::{lower, lower_filtered, try_lower, try_lower_filtered};
pub use schedule::{AxisTiling, GraphSchedule, OpSchedule};
pub use tir::{
    BufId, BufKind, BufferDecl, LoopKind, LoweredGroup, Program, SExpr, Stmt, StoreMode, TirNode,
};
