//! TIR-lite: the concrete loop-nest IR produced by lowering.
//!
//! A [`Program`] is a buffer table plus a sequence of loop trees. Both the
//! functional interpreter and the hardware performance model walk this
//! structure, so every transformation is validated and costed against the
//! exact same program.

use alt_tensor::expr::{Expr, Var};
use alt_tensor::op::{Cond, ScalarBinOp, UnaryOp};
use alt_tensor::{Shape, TensorId};

/// Identifier of a buffer in a [`Program`]'s buffer table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// Where a buffer's contents come from / go to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BufKind {
    /// Bound to a graph tensor (input, parameter or intermediate); the
    /// runner packs/unpacks it according to the tensor's layout.
    Tensor(TensorId),
    /// A layout-converted copy of a graph tensor, produced at runtime.
    Converted(TensorId),
}

/// A physical buffer declaration.
#[derive(Clone, Debug)]
pub struct BufferDecl {
    /// Display name.
    pub name: String,
    /// Physical shape.
    pub shape: Shape,
    /// Binding.
    pub kind: BufKind,
}

/// Loop annotations (subset of TVM loop primitives: `parallel`,
/// `vectorize`, `unroll`; plain `split`/`reorder` are encoded
/// structurally).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// Parallelized across cores (outermost spatial tiles).
    Parallel,
    /// SIMD-vectorized innermost loop.
    Vectorized,
    /// Fully unrolled loop.
    Unrolled,
}

/// How a [`Stmt`] writes its destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreMode {
    /// `buf[i] = value`.
    Assign,
    /// `buf[i] += value`.
    AddAcc,
    /// `buf[i] = max(buf[i], value)`.
    MaxAcc,
}

/// Scalar expressions over physical buffer accesses.
#[derive(Clone, Debug)]
pub enum SExpr {
    /// Literal.
    Imm(f32),
    /// Load `buf` at physical `indices`.
    Load {
        /// Source buffer.
        buf: BufId,
        /// Physical index expressions.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Bin(ScalarBinOp, Box<SExpr>, Box<SExpr>),
    /// Unary operation.
    Unary(UnaryOp, Box<SExpr>),
    /// Conditional; only the taken branch is evaluated.
    Select {
        /// Predicate over index expressions.
        cond: Cond,
        /// Taken branch.
        then_: Box<SExpr>,
        /// Untaken branch.
        else_: Box<SExpr>,
    },
}

impl SExpr {
    /// Counts the floating-point operations of one evaluation.
    pub fn flops(&self) -> u64 {
        match self {
            SExpr::Imm(_) | SExpr::Load { .. } => 0,
            SExpr::Bin(_, a, b) => 1 + a.flops() + b.flops(),
            SExpr::Unary(_, a) => 1 + a.flops(),
            SExpr::Select { then_, else_, .. } => 1 + then_.flops().max(else_.flops()),
        }
    }

    /// Visits every load (including those in select branches).
    pub fn visit_loads(&self, f: &mut impl FnMut(BufId, &[Expr])) {
        match self {
            SExpr::Imm(_) => {}
            SExpr::Load { buf, indices } => f(*buf, indices),
            SExpr::Bin(_, a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
            SExpr::Unary(_, a) => a.visit_loads(f),
            SExpr::Select { then_, else_, .. } => {
                then_.visit_loads(f);
                else_.visit_loads(f);
            }
        }
    }
}

/// A single store statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Destination buffer.
    pub buf: BufId,
    /// Physical destination indices.
    pub indices: Vec<Expr>,
    /// Value expression.
    pub value: SExpr,
    /// Assignment vs. accumulation.
    pub mode: StoreMode,
    /// Validity predicate from the destination layout's inverse map: when
    /// false, `Assign` stores write `0.0` (pad/overhang slots) and
    /// accumulating stores are skipped.
    pub pred: Option<Cond>,
}

/// A node of the loop tree.
#[derive(Clone, Debug)]
pub enum TirNode {
    /// A loop over `0..extent` binding `var`.
    Loop {
        /// Bound variable.
        var: Var,
        /// Trip count.
        extent: i64,
        /// Annotation.
        kind: LoopKind,
        /// Loop body.
        body: Vec<TirNode>,
    },
    /// A leaf statement.
    Stmt(Stmt),
}

impl TirNode {
    /// Builds a loop node.
    pub fn loop_(var: Var, extent: i64, kind: LoopKind, body: Vec<TirNode>) -> TirNode {
        TirNode::Loop {
            var,
            extent,
            kind,
            body,
        }
    }

    /// Total number of innermost statement executions under this node.
    pub fn stmt_iterations(&self) -> u64 {
        match self {
            TirNode::Loop { extent, body, .. } => {
                *extent as u64 * body.iter().map(|n| n.stmt_iterations()).sum::<u64>()
            }
            TirNode::Stmt(_) => 1,
        }
    }
}

/// A lowered group: one root operator plus the elementwise chain fused
/// into its tile loops.
#[derive(Clone, Debug)]
pub struct LoweredGroup {
    /// The root operator.
    pub root: alt_tensor::OpId,
    /// Fused elementwise consumers, in execution order.
    pub fused: Vec<alt_tensor::OpId>,
    /// Loop tree (a list of top-level loops/statements).
    pub nodes: Vec<TirNode>,
    /// Human-readable description for logs.
    pub label: String,
}

/// A complete lowered program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Buffer table.
    pub buffers: Vec<BufferDecl>,
    /// Groups in execution order.
    pub groups: Vec<LoweredGroup>,
}

impl Program {
    /// Registers a buffer and returns its id.
    pub fn add_buffer(&mut self, decl: BufferDecl) -> BufId {
        let id = BufId(self.buffers.len());
        self.buffers.push(decl);
        id
    }

    /// Looks up a buffer declaration.
    pub fn buffer(&self, id: BufId) -> &BufferDecl {
        &self.buffers[id.0]
    }

    /// The buffer bound to a graph tensor (not a converted copy).
    pub fn buffer_for_tensor(&self, t: TensorId) -> Option<BufId> {
        self.buffers
            .iter()
            .position(|b| b.kind == BufKind::Tensor(t))
            .map(BufId)
    }

    /// Total statement executions (a cheap size measure used in tests).
    pub fn total_stmt_iterations(&self) -> u64 {
        self.groups
            .iter()
            .flat_map(|g| g.nodes.iter())
            .map(|n| n.stmt_iterations())
            .sum()
    }

    /// A bounded slice of the program for differential testing: keeps
    /// groups in order while the cumulative statement-iteration count
    /// stays within `cap`, skipping groups that would blow the budget
    /// (falling back to the single cheapest group if nothing fits).
    /// The buffer table is pruned (and `BufId`s remapped) to buffers
    /// the surviving groups actually touch, so packing and memory cost
    /// scale with the slice, not the full model. Inputs produced by
    /// dropped groups stay zero-filled in every engine — both executors
    /// see identical data — so bit-exact comparison over the surviving
    /// groups remains meaningful.
    pub fn truncated(&self, cap: u64) -> Program {
        let group_iters =
            |g: &LoweredGroup| -> u64 { g.nodes.iter().map(TirNode::stmt_iterations).sum() };
        let mut total = 0u64;
        let mut groups = Vec::new();
        for g in &self.groups {
            let iters = group_iters(g);
            if total.saturating_add(iters) <= cap {
                total = total.saturating_add(iters);
                groups.push(g.clone());
            }
        }
        if groups.is_empty() {
            if let Some(g) = self.groups.iter().min_by_key(|g| group_iters(g)) {
                groups.push(g.clone());
            }
        }
        let mut used = vec![false; self.buffers.len()];
        for g in &groups {
            for n in &g.nodes {
                mark_buffers(n, &mut used);
            }
        }
        let mut remap = vec![usize::MAX; self.buffers.len()];
        let mut buffers = Vec::new();
        for (k, b) in self.buffers.iter().enumerate() {
            if used[k] {
                remap[k] = buffers.len();
                buffers.push(b.clone());
            }
        }
        for g in &mut groups {
            for n in &mut g.nodes {
                remap_buffers(n, &remap);
            }
        }
        Program { buffers, groups }
    }
}

/// Marks every buffer a node reads or writes (stores plus loads on both
/// `Select` branches).
fn mark_buffers(node: &TirNode, used: &mut [bool]) {
    match node {
        TirNode::Loop { body, .. } => {
            for child in body {
                mark_buffers(child, used);
            }
        }
        TirNode::Stmt(s) => {
            used[s.buf.0] = true;
            mark_sexpr_buffers(&s.value, used);
        }
    }
}

fn mark_sexpr_buffers(e: &SExpr, used: &mut [bool]) {
    match e {
        SExpr::Imm(_) => {}
        SExpr::Load { buf, .. } => used[buf.0] = true,
        SExpr::Bin(_, a, b) => {
            mark_sexpr_buffers(a, used);
            mark_sexpr_buffers(b, used);
        }
        SExpr::Unary(_, a) => mark_sexpr_buffers(a, used),
        SExpr::Select { then_, else_, .. } => {
            mark_sexpr_buffers(then_, used);
            mark_sexpr_buffers(else_, used);
        }
    }
}

/// Rewrites every `BufId` through `remap` (old index -> new index).
fn remap_buffers(node: &mut TirNode, remap: &[usize]) {
    match node {
        TirNode::Loop { body, .. } => {
            for child in body {
                remap_buffers(child, remap);
            }
        }
        TirNode::Stmt(s) => {
            s.buf = BufId(remap[s.buf.0]);
            remap_sexpr_buffers(&mut s.value, remap);
        }
    }
}

fn remap_sexpr_buffers(e: &mut SExpr, remap: &[usize]) {
    match e {
        SExpr::Imm(_) => {}
        SExpr::Load { buf, .. } => *buf = BufId(remap[buf.0]),
        SExpr::Bin(_, a, b) => {
            remap_sexpr_buffers(a, remap);
            remap_sexpr_buffers(b, remap);
        }
        SExpr::Unary(_, a) => remap_sexpr_buffers(a, remap),
        SExpr::Select { then_, else_, .. } => {
            remap_sexpr_buffers(then_, remap);
            remap_sexpr_buffers(else_, remap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_tensor::VarGen;

    #[test]
    fn stmt_iterations_count() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let j = g.fresh("j");
        let stmt = Stmt {
            buf: BufId(0),
            indices: vec![Expr::v(&i), Expr::v(&j)],
            value: SExpr::Imm(1.0),
            mode: StoreMode::Assign,
            pred: None,
        };
        let tree = TirNode::loop_(
            i,
            4,
            LoopKind::Serial,
            vec![TirNode::loop_(
                j,
                5,
                LoopKind::Serial,
                vec![TirNode::Stmt(stmt)],
            )],
        );
        assert_eq!(tree.stmt_iterations(), 20);
    }

    #[test]
    fn sexpr_flops_and_loads() {
        let e = SExpr::Bin(
            ScalarBinOp::Add,
            Box::new(SExpr::Load {
                buf: BufId(0),
                indices: vec![],
            }),
            Box::new(SExpr::Load {
                buf: BufId(1),
                indices: vec![],
            }),
        );
        assert_eq!(e.flops(), 1);
        let mut n = 0;
        e.visit_loads(&mut |_, _| n += 1);
        assert_eq!(n, 2);
    }
}
