//! TIR-lite: the concrete loop-nest IR produced by lowering.
//!
//! A [`Program`] is a buffer table plus a sequence of loop trees. Both the
//! functional interpreter and the hardware performance model walk this
//! structure, so every transformation is validated and costed against the
//! exact same program.

use alt_tensor::expr::{Expr, Var};
use alt_tensor::op::{Cond, ScalarBinOp, UnaryOp};
use alt_tensor::{Shape, TensorId};

/// Identifier of a buffer in a [`Program`]'s buffer table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// Where a buffer's contents come from / go to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BufKind {
    /// Bound to a graph tensor (input, parameter or intermediate); the
    /// runner packs/unpacks it according to the tensor's layout.
    Tensor(TensorId),
    /// A layout-converted copy of a graph tensor, produced at runtime.
    Converted(TensorId),
}

/// A physical buffer declaration.
#[derive(Clone, Debug)]
pub struct BufferDecl {
    /// Display name.
    pub name: String,
    /// Physical shape.
    pub shape: Shape,
    /// Binding.
    pub kind: BufKind,
}

/// Loop annotations (subset of TVM loop primitives: `parallel`,
/// `vectorize`, `unroll`; plain `split`/`reorder` are encoded
/// structurally).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// Parallelized across cores (outermost spatial tiles).
    Parallel,
    /// SIMD-vectorized innermost loop.
    Vectorized,
    /// Fully unrolled loop.
    Unrolled,
}

/// How a [`Stmt`] writes its destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreMode {
    /// `buf[i] = value`.
    Assign,
    /// `buf[i] += value`.
    AddAcc,
    /// `buf[i] = max(buf[i], value)`.
    MaxAcc,
}

/// Scalar expressions over physical buffer accesses.
#[derive(Clone, Debug)]
pub enum SExpr {
    /// Literal.
    Imm(f32),
    /// Load `buf` at physical `indices`.
    Load {
        /// Source buffer.
        buf: BufId,
        /// Physical index expressions.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Bin(ScalarBinOp, Box<SExpr>, Box<SExpr>),
    /// Unary operation.
    Unary(UnaryOp, Box<SExpr>),
    /// Conditional; only the taken branch is evaluated.
    Select {
        /// Predicate over index expressions.
        cond: Cond,
        /// Taken branch.
        then_: Box<SExpr>,
        /// Untaken branch.
        else_: Box<SExpr>,
    },
}

impl SExpr {
    /// Counts the floating-point operations of one evaluation.
    pub fn flops(&self) -> u64 {
        match self {
            SExpr::Imm(_) | SExpr::Load { .. } => 0,
            SExpr::Bin(_, a, b) => 1 + a.flops() + b.flops(),
            SExpr::Unary(_, a) => 1 + a.flops(),
            SExpr::Select { then_, else_, .. } => 1 + then_.flops().max(else_.flops()),
        }
    }

    /// Visits every load (including those in select branches).
    pub fn visit_loads(&self, f: &mut impl FnMut(BufId, &[Expr])) {
        match self {
            SExpr::Imm(_) => {}
            SExpr::Load { buf, indices } => f(*buf, indices),
            SExpr::Bin(_, a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
            SExpr::Unary(_, a) => a.visit_loads(f),
            SExpr::Select { then_, else_, .. } => {
                then_.visit_loads(f);
                else_.visit_loads(f);
            }
        }
    }
}

/// A single store statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Destination buffer.
    pub buf: BufId,
    /// Physical destination indices.
    pub indices: Vec<Expr>,
    /// Value expression.
    pub value: SExpr,
    /// Assignment vs. accumulation.
    pub mode: StoreMode,
    /// Validity predicate from the destination layout's inverse map: when
    /// false, `Assign` stores write `0.0` (pad/overhang slots) and
    /// accumulating stores are skipped.
    pub pred: Option<Cond>,
}

/// A node of the loop tree.
#[derive(Clone, Debug)]
pub enum TirNode {
    /// A loop over `0..extent` binding `var`.
    Loop {
        /// Bound variable.
        var: Var,
        /// Trip count.
        extent: i64,
        /// Annotation.
        kind: LoopKind,
        /// Loop body.
        body: Vec<TirNode>,
    },
    /// A leaf statement.
    Stmt(Stmt),
}

impl TirNode {
    /// Builds a loop node.
    pub fn loop_(var: Var, extent: i64, kind: LoopKind, body: Vec<TirNode>) -> TirNode {
        TirNode::Loop {
            var,
            extent,
            kind,
            body,
        }
    }

    /// Total number of innermost statement executions under this node.
    pub fn stmt_iterations(&self) -> u64 {
        match self {
            TirNode::Loop { extent, body, .. } => {
                *extent as u64 * body.iter().map(|n| n.stmt_iterations()).sum::<u64>()
            }
            TirNode::Stmt(_) => 1,
        }
    }
}

/// A lowered group: one root operator plus the elementwise chain fused
/// into its tile loops.
#[derive(Clone, Debug)]
pub struct LoweredGroup {
    /// The root operator.
    pub root: alt_tensor::OpId,
    /// Fused elementwise consumers, in execution order.
    pub fused: Vec<alt_tensor::OpId>,
    /// Loop tree (a list of top-level loops/statements).
    pub nodes: Vec<TirNode>,
    /// Human-readable description for logs.
    pub label: String,
}

/// A complete lowered program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Buffer table.
    pub buffers: Vec<BufferDecl>,
    /// Groups in execution order.
    pub groups: Vec<LoweredGroup>,
}

impl Program {
    /// Registers a buffer and returns its id.
    pub fn add_buffer(&mut self, decl: BufferDecl) -> BufId {
        let id = BufId(self.buffers.len());
        self.buffers.push(decl);
        id
    }

    /// Looks up a buffer declaration.
    pub fn buffer(&self, id: BufId) -> &BufferDecl {
        &self.buffers[id.0]
    }

    /// The buffer bound to a graph tensor (not a converted copy).
    pub fn buffer_for_tensor(&self, t: TensorId) -> Option<BufId> {
        self.buffers
            .iter()
            .position(|b| b.kind == BufKind::Tensor(t))
            .map(BufId)
    }

    /// Total statement executions (a cheap size measure used in tests).
    pub fn total_stmt_iterations(&self) -> u64 {
        self.groups
            .iter()
            .flat_map(|g| g.nodes.iter())
            .map(|n| n.stmt_iterations())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_tensor::VarGen;

    #[test]
    fn stmt_iterations_count() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let j = g.fresh("j");
        let stmt = Stmt {
            buf: BufId(0),
            indices: vec![Expr::v(&i), Expr::v(&j)],
            value: SExpr::Imm(1.0),
            mode: StoreMode::Assign,
            pred: None,
        };
        let tree = TirNode::loop_(
            i,
            4,
            LoopKind::Serial,
            vec![TirNode::loop_(
                j,
                5,
                LoopKind::Serial,
                vec![TirNode::Stmt(stmt)],
            )],
        );
        assert_eq!(tree.stmt_iterations(), 20);
    }

    #[test]
    fn sexpr_flops_and_loads() {
        let e = SExpr::Bin(
            ScalarBinOp::Add,
            Box::new(SExpr::Load {
                buf: BufId(0),
                indices: vec![],
            }),
            Box::new(SExpr::Load {
                buf: BufId(1),
                indices: vec![],
            }),
        );
        assert_eq!(e.flops(), 1);
        let mut n = 0;
        e.visit_loads(&mut |_, _| n += 1);
        assert_eq!(n, 2);
    }
}
