//! Functional interpreter for TIR-lite programs.
//!
//! Executes lowered loop trees over real `f32` buffers, packing inputs and
//! unpacking outputs through their assigned layouts. Used to validate that
//! every layout/loop transformation preserves the reference semantics.

use std::collections::HashMap;

use alt_layout::LayoutPlan;
use alt_tensor::expr::Env;
use alt_tensor::op::ScalarBinOp;
use alt_tensor::{Graph, NdBuf, TensorId, TensorKind};

use crate::tir::{BufKind, Program, SExpr, Stmt, StoreMode, TirNode};

/// Evaluates an [`SExpr`] against the buffer table.
fn eval_sexpr(e: &SExpr, env: &Env, bufs: &[NdBuf]) -> f32 {
    match e {
        SExpr::Imm(v) => *v,
        SExpr::Load { buf, indices } => {
            let idx: Vec<i64> = indices.iter().map(|i| i.eval(env)).collect();
            bufs[buf.0].get(&idx)
        }
        SExpr::Bin(op, a, b) => {
            let x = eval_sexpr(a, env, bufs);
            let y = eval_sexpr(b, env, bufs);
            match op {
                ScalarBinOp::Add => x + y,
                ScalarBinOp::Sub => x - y,
                ScalarBinOp::Mul => x * y,
                ScalarBinOp::Div => x / y,
                ScalarBinOp::Max => x.max(y),
                ScalarBinOp::Min => x.min(y),
            }
        }
        SExpr::Unary(op, a) => op.apply(eval_sexpr(a, env, bufs)),
        SExpr::Select { cond, then_, else_ } => {
            if cond.eval(env) {
                eval_sexpr(then_, env, bufs)
            } else {
                eval_sexpr(else_, env, bufs)
            }
        }
    }
}

fn exec_stmt(stmt: &Stmt, env: &Env, bufs: &mut [NdBuf]) {
    // Invalid physical slots (padding, unfold overhang) hold zero and are
    // never accumulated into; the value expression is not evaluated for
    // them because its logical indices would be out of bounds.
    if let Some(pred) = &stmt.pred {
        if !pred.eval(env) {
            if stmt.mode == StoreMode::Assign {
                let idx: Vec<i64> = stmt.indices.iter().map(|i| i.eval(env)).collect();
                bufs[stmt.buf.0].set(&idx, 0.0);
            }
            return;
        }
    }
    let idx: Vec<i64> = stmt.indices.iter().map(|i| i.eval(env)).collect();
    let v = eval_sexpr(&stmt.value, env, bufs);
    let b = &mut bufs[stmt.buf.0];
    match stmt.mode {
        StoreMode::Assign => b.set(&idx, v),
        StoreMode::AddAcc => {
            let old = b.get(&idx);
            b.set(&idx, old + v);
        }
        StoreMode::MaxAcc => {
            let old = b.get(&idx);
            b.set(&idx, old.max(v));
        }
    }
}

fn exec_nodes(nodes: &[TirNode], env: &mut Env, bufs: &mut [NdBuf]) {
    for node in nodes {
        match node {
            TirNode::Loop {
                var, extent, body, ..
            } => {
                for i in 0..*extent {
                    env.bind(var, i);
                    exec_nodes(body, env, bufs);
                }
            }
            TirNode::Stmt(s) => exec_stmt(s, env, bufs),
        }
    }
}

/// Runs a lowered program.
///
/// `bindings` supplies *logical* buffers for every input and parameter;
/// they are packed into their physical layouts before execution. Returns
/// the *logical* contents of every graph tensor (unpacked through its
/// layout), indexable by [`TensorId`].
///
/// # Panics
///
/// Panics on missing bindings or shape mismatches (caller bugs).
pub fn run_program(
    program: &Program,
    graph: &Graph,
    plan: &LayoutPlan,
    bindings: &HashMap<TensorId, NdBuf>,
) -> HashMap<TensorId, NdBuf> {
    let mut bufs: Vec<NdBuf> = program
        .buffers
        .iter()
        .map(|b| NdBuf::zeros(b.shape.clone()))
        .collect();

    // Pack inputs and parameters.
    for (k, decl) in program.buffers.iter().enumerate() {
        if let BufKind::Tensor(t) = decl.kind {
            let info = graph.tensor(t);
            if info.kind != TensorKind::Intermediate {
                let logical = bindings
                    .get(&t)
                    .unwrap_or_else(|| panic!("missing binding for `{}`", info.name));
                bufs[k] = plan
                    .layout_of(graph, t)
                    .pack(logical)
                    .expect("binding shape matches tensor");
            }
        }
    }

    // Pack `store_at` guests into the reserved slots of their hosts.
    for (&guest, &(host, host_dim)) in plan.embeddings() {
        let gbuf = bindings
            .get(&guest)
            .unwrap_or_else(|| panic!("missing binding for store_at guest"));
        let host_layout = plan.layout_of(graph, host);
        let host_size = graph.tensor(host).shape.dim(host_dim);
        let host_buf_idx = program
            .buffer_for_tensor(host)
            .expect("host buffer exists")
            .0;
        for gidx in gbuf.shape().clone().iter_indices() {
            let mut lidx = gidx.clone();
            lidx.insert(host_dim, host_size);
            let pidx = host_layout
                .logical_to_physical(&lidx)
                .expect("host slot index is concrete");
            let v = gbuf.get(&gidx);
            bufs[host_buf_idx].set(&pidx, v);
        }
    }

    let mut env = Env::new();
    for group in &program.groups {
        exec_nodes(&group.nodes, &mut env, &mut bufs);
    }

    // Unpack every graph tensor back to logical order. Embedded guests
    // are read back out of their host's reserved slot.
    let mut out = HashMap::new();
    for (k, decl) in program.buffers.iter().enumerate() {
        if let BufKind::Tensor(t) = decl.kind {
            if let Some((host, host_dim)) = plan.embedding_of(t) {
                let host_layout = plan.layout_of(graph, host);
                let host_size = graph.tensor(host).shape.dim(host_dim);
                let host_buf = program.buffer_for_tensor(host).expect("host buffer").0;
                let gshape = graph.tensor(t).shape.clone();
                let mut g = NdBuf::zeros(gshape.clone());
                for gidx in gshape.iter_indices() {
                    let mut lidx = gidx.clone();
                    lidx.insert(host_dim, host_size);
                    let pidx = host_layout
                        .logical_to_physical(&lidx)
                        .expect("host slot index is concrete");
                    g.set(&gidx, bufs[host_buf].get(&pidx));
                }
                out.insert(t, g);
                continue;
            }
            let layout = plan.layout_of(graph, t);
            out.insert(t, layout.unpack(&bufs[k]).expect("lowered shapes agree"));
        }
    }
    out
}
