//! Functional interpreter for TIR-lite programs.
//!
//! Executes lowered loop trees over real `f32` buffers, packing inputs and
//! unpacking outputs through their assigned layouts. Used to validate that
//! every layout/loop transformation preserves the reference semantics.

use std::collections::HashMap;

use alt_layout::LayoutPlan;
use alt_tensor::expr::Env;
use alt_tensor::op::ScalarBinOp;
use alt_tensor::{Graph, NdBuf, TensorId, TensorKind};

use crate::tir::{BufId, BufKind, Program, SExpr, Stmt, StoreMode, TirNode};

/// Evaluates an [`SExpr`] against the buffer table.
fn eval_sexpr(e: &SExpr, env: &Env, bufs: &[NdBuf]) -> f32 {
    match e {
        SExpr::Imm(v) => *v,
        SExpr::Load { buf, indices } => {
            let idx: Vec<i64> = indices.iter().map(|i| i.eval(env)).collect();
            bufs[buf.0].get(&idx)
        }
        SExpr::Bin(op, a, b) => {
            let x = eval_sexpr(a, env, bufs);
            let y = eval_sexpr(b, env, bufs);
            match op {
                ScalarBinOp::Add => x + y,
                ScalarBinOp::Sub => x - y,
                ScalarBinOp::Mul => x * y,
                ScalarBinOp::Div => x / y,
                ScalarBinOp::Max => x.max(y),
                ScalarBinOp::Min => x.min(y),
            }
        }
        SExpr::Unary(op, a) => op.apply(eval_sexpr(a, env, bufs)),
        SExpr::Select { cond, then_, else_ } => {
            if cond.eval(env) {
                eval_sexpr(then_, env, bufs)
            } else {
                eval_sexpr(else_, env, bufs)
            }
        }
    }
}

fn exec_stmt(stmt: &Stmt, env: &Env, bufs: &mut [NdBuf]) {
    // Invalid physical slots (padding, unfold overhang) hold zero and are
    // never accumulated into; the value expression is not evaluated for
    // them because its logical indices would be out of bounds.
    if let Some(pred) = &stmt.pred {
        if !pred.eval(env) {
            if stmt.mode == StoreMode::Assign {
                let idx: Vec<i64> = stmt.indices.iter().map(|i| i.eval(env)).collect();
                bufs[stmt.buf.0].set(&idx, 0.0);
            }
            return;
        }
    }
    let idx: Vec<i64> = stmt.indices.iter().map(|i| i.eval(env)).collect();
    let v = eval_sexpr(&stmt.value, env, bufs);
    let b = &mut bufs[stmt.buf.0];
    match stmt.mode {
        StoreMode::Assign => b.set(&idx, v),
        StoreMode::AddAcc => {
            let old = b.get(&idx);
            b.set(&idx, old + v);
        }
        StoreMode::MaxAcc => {
            let old = b.get(&idx);
            b.set(&idx, old.max(v));
        }
    }
}

fn exec_nodes(nodes: &[TirNode], env: &mut Env, bufs: &mut [NdBuf]) {
    for node in nodes {
        match node {
            TirNode::Loop {
                var, extent, body, ..
            } => {
                for i in 0..*extent {
                    env.bind(var, i);
                    exec_nodes(body, env, bufs);
                }
            }
            TirNode::Stmt(s) => exec_stmt(s, env, bufs),
        }
    }
}

/// Allocates the physical buffer table of a program and packs every
/// non-intermediate tensor binding (and every `store_at` guest) into its
/// physical layout. This is the shared entry protocol of the interpreter
/// and the native executor: both engines start from bit-identical
/// physical memory.
///
/// # Panics
///
/// Panics on missing bindings or shape mismatches (caller bugs).
pub fn pack_buffers(
    program: &Program,
    graph: &Graph,
    plan: &LayoutPlan,
    bindings: &HashMap<TensorId, NdBuf>,
) -> Vec<NdBuf> {
    let mut bufs: Vec<NdBuf> = program
        .buffers
        .iter()
        .map(|b| NdBuf::zeros(b.shape.clone()))
        .collect();

    // Pack inputs and parameters.
    for (k, decl) in program.buffers.iter().enumerate() {
        if let BufKind::Tensor(t) = decl.kind {
            let info = graph.tensor(t);
            if info.kind != TensorKind::Intermediate {
                let logical = bindings
                    .get(&t)
                    .unwrap_or_else(|| panic!("missing binding for `{}`", info.name));
                bufs[k] = plan
                    .layout_of(graph, t)
                    .pack(logical)
                    .expect("binding shape matches tensor");
            }
        }
    }

    // Pack `store_at` guests into the reserved slots of their hosts.
    for (&guest, &(host, host_dim)) in plan.embeddings() {
        let gbuf = bindings
            .get(&guest)
            .unwrap_or_else(|| panic!("missing binding for store_at guest"));
        let host_layout = plan.layout_of(graph, host);
        let host_size = graph.tensor(host).shape.dim(host_dim);
        // A truncated program may have pruned the host's buffer along
        // with every group touching it; nothing reads the slot then.
        let Some(BufId(host_buf_idx)) = program.buffer_for_tensor(host) else {
            continue;
        };
        for gidx in gbuf.shape().clone().iter_indices() {
            let mut lidx = gidx.clone();
            lidx.insert(host_dim, host_size);
            let pidx = host_layout
                .logical_to_physical(&lidx)
                .expect("host slot index is concrete");
            let v = gbuf.get(&gidx);
            bufs[host_buf_idx].set(&pidx, v);
        }
    }
    bufs
}

/// Unpacks the executed physical buffer table back to logical tensors:
/// every graph tensor through its layout's inverse, embedded `store_at`
/// guests out of their host's reserved slot. The exit counterpart of
/// [`pack_buffers`], shared by both execution engines.
pub fn unpack_buffers(
    program: &Program,
    graph: &Graph,
    plan: &LayoutPlan,
    bufs: &[NdBuf],
) -> HashMap<TensorId, NdBuf> {
    let mut out = HashMap::new();
    for (k, decl) in program.buffers.iter().enumerate() {
        if let BufKind::Tensor(t) = decl.kind {
            if let Some((host, host_dim)) = plan.embedding_of(t) {
                let host_layout = plan.layout_of(graph, host);
                let host_size = graph.tensor(host).shape.dim(host_dim);
                let host_buf = program.buffer_for_tensor(host).expect("host buffer").0;
                let gshape = graph.tensor(t).shape.clone();
                let mut g = NdBuf::zeros(gshape.clone());
                for gidx in gshape.iter_indices() {
                    let mut lidx = gidx.clone();
                    lidx.insert(host_dim, host_size);
                    let pidx = host_layout
                        .logical_to_physical(&lidx)
                        .expect("host slot index is concrete");
                    g.set(&gidx, bufs[host_buf].get(&pidx));
                }
                out.insert(t, g);
                continue;
            }
            let layout = plan.layout_of(graph, t);
            out.insert(t, layout.unpack(&bufs[k]).expect("lowered shapes agree"));
        }
    }
    out
}

/// Runs a lowered program.
///
/// `bindings` supplies *logical* buffers for every input and parameter;
/// they are packed into their physical layouts before execution. Returns
/// the *logical* contents of every graph tensor (unpacked through its
/// layout), indexable by [`TensorId`].
///
/// # Panics
///
/// Panics on missing bindings or shape mismatches (caller bugs).
pub fn run_program(
    program: &Program,
    graph: &Graph,
    plan: &LayoutPlan,
    bindings: &HashMap<TensorId, NdBuf>,
) -> HashMap<TensorId, NdBuf> {
    let mut bufs = pack_buffers(program, graph, plan, bindings);
    let mut env = Env::new();
    for group in &program.groups {
        exec_nodes(&group.nodes, &mut env, &mut bufs);
    }
    unpack_buffers(program, graph, plan, &bufs)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::lower;
    use crate::schedule::GraphSchedule;
    use crate::tir::BufId;
    use alt_layout::{AssignOutcome, Layout, LayoutPrim, PropagationMode};
    use alt_tensor::exec::{random_bindings, run_graph};
    use alt_tensor::expr::Expr;
    use alt_tensor::op::Cond;
    use alt_tensor::{ops, OpId, Shape};

    /// A predicate that is always false (`1 < 0`).
    fn never() -> Cond {
        Cond::Lt(Expr::c(1), Expr::c(0))
    }

    /// An `SExpr` whose evaluation would panic (out-of-bounds load); used
    /// to prove a path does *not* evaluate the value expression.
    fn poison_value() -> SExpr {
        SExpr::Load {
            buf: BufId(0),
            indices: vec![Expr::c(100)],
        }
    }

    fn sentinel_bufs() -> Vec<NdBuf> {
        vec![NdBuf::from_fn(Shape::new([4]), |_| 7.0)]
    }

    #[test]
    fn pred_false_assign_zeroes_slot_without_evaluating_value() {
        let mut bufs = sentinel_bufs();
        let stmt = Stmt {
            buf: BufId(0),
            indices: vec![Expr::c(2)],
            value: poison_value(),
            mode: StoreMode::Assign,
            pred: Some(never()),
        };
        exec_stmt(&stmt, &Env::new(), &mut bufs);
        assert_eq!(bufs[0].get(&[2]).to_bits(), 0.0f32.to_bits());
        // Neighbouring slots untouched.
        assert_eq!(bufs[0].get(&[1]), 7.0);
        assert_eq!(bufs[0].get(&[3]), 7.0);
    }

    #[test]
    fn pred_false_accumulate_skips_store_and_index_evaluation() {
        for mode in [StoreMode::AddAcc, StoreMode::MaxAcc] {
            let mut bufs = sentinel_bufs();
            let stmt = Stmt {
                buf: BufId(0),
                // Out of bounds: a skipped accumulation must not even
                // evaluate its destination indices.
                indices: vec![Expr::c(100)],
                value: poison_value(),
                mode,
                pred: Some(never()),
            };
            exec_stmt(&stmt, &Env::new(), &mut bufs);
            for i in 0..4 {
                assert_eq!(bufs[0].get(&[i]), 7.0, "{mode:?} mutated the buffer");
            }
        }
    }

    #[test]
    fn pred_true_applies_every_store_mode() {
        let always = Cond::Lt(Expr::c(0), Expr::c(1));
        let cases = [
            (StoreMode::Assign, 3.0f32),
            (StoreMode::AddAcc, 10.0),
            (StoreMode::MaxAcc, 7.0),
        ];
        for (mode, want) in cases {
            let mut bufs = sentinel_bufs();
            let stmt = Stmt {
                buf: BufId(0),
                indices: vec![Expr::c(2)],
                value: SExpr::Imm(3.0),
                mode,
                pred: Some(always.clone()),
            };
            exec_stmt(&stmt, &Env::new(), &mut bufs);
            assert_eq!(bufs[0].get(&[2]), want, "{mode:?}");
        }
    }

    fn gmm_graph(m: i64, k: i64, n: i64) -> (Graph, TensorId, OpId, TensorId) {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([m, k]));
        let b = g.add_param("b", Shape::new([k, n]));
        let y = ops::gmm(&mut g, a, b);
        let op = g.tensor(y).producer.unwrap();
        (g, a, op, y)
    }

    fn exec_all(program: &Program, bufs: &mut [NdBuf]) {
        let mut env = Env::new();
        for group in &program.groups {
            exec_nodes(&group.nodes, &mut env, bufs);
        }
    }

    #[test]
    fn padded_output_slots_hold_zero_and_logical_result_matches() {
        let (g, _, op, y) = gmm_graph(5, 3, 6);
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout = Layout::identity(Shape::new([5, 6]))
            .with(LayoutPrim::Pad {
                dim: 1,
                before: 1,
                after: 2,
            })
            .unwrap();
        plan.assign_output_layout(&g, op, layout);
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let bindings = random_bindings(&g, 7);
        let mut bufs = pack_buffers(&program, &g, &plan, &bindings);
        exec_all(&program, &mut bufs);
        // Physical shape [5, 9]: column 0 and columns 7..9 are pad slots;
        // the pred-false Assign path must leave exactly 0.0 there while
        // the pred-false accumulations never touch them.
        let yb = program.buffer_for_tensor(y).unwrap().0;
        assert_eq!(bufs[yb].shape().dims(), &[5, 9]);
        for i in 0..5 {
            for j in [0, 7, 8] {
                assert_eq!(
                    bufs[yb].get(&[i, j]).to_bits(),
                    0.0f32.to_bits(),
                    "pad slot [{i}, {j}]"
                );
            }
        }
        let out = unpack_buffers(&program, &g, &plan, &bufs);
        let reference = run_graph(&g, &bindings);
        assert!(reference[y.0].max_abs_diff(&out[&y]) <= 1e-4);
    }

    #[test]
    fn unfold_overhang_slots_hold_zero_after_conversion() {
        // a is [9, 4]; Unfold{tile: 4, stride: 3} on dim 0 gives 3 tiles
        // covering rows 0..4, 3..7 and 6..10 — the last tile overhangs by
        // one row, so physical slots [2, 3, *] have no logical source.
        let (g, a, op, y) = gmm_graph(9, 4, 5);
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout = Layout::identity(Shape::new([9, 4]))
            .with(LayoutPrim::Unfold {
                dim: 0,
                tile: 4,
                stride: 3,
            })
            .unwrap();
        let outcome = plan.assign_input_layout(&g, op, a, layout);
        assert_eq!(outcome, AssignOutcome::Conversion);
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let bindings = random_bindings(&g, 11);
        let mut bufs = pack_buffers(&program, &g, &plan, &bindings);
        exec_all(&program, &mut bufs);
        let cb = program
            .buffers
            .iter()
            .position(|b| b.kind == BufKind::Converted(a))
            .expect("conversion buffer exists");
        assert_eq!(bufs[cb].shape().dims(), &[3, 4, 4]);
        let abuf = &bindings[&a];
        for t in 0..3i64 {
            for r in 0..4i64 {
                let row = t * 3 + r;
                for c in 0..4i64 {
                    let got = bufs[cb].get(&[t, r, c]);
                    if row < 9 {
                        // Duplicated rows from overlapping tiles carry the
                        // exact logical value.
                        assert_eq!(got.to_bits(), abuf.get(&[row, c]).to_bits());
                    } else {
                        // Overhang: pred-false Assign wrote exactly 0.0.
                        assert_eq!(got.to_bits(), 0.0f32.to_bits(), "slot [{t}, {r}, {c}]");
                    }
                }
            }
        }
        let out = unpack_buffers(&program, &g, &plan, &bufs);
        let reference = run_graph(&g, &bindings);
        assert!(reference[y.0].max_abs_diff(&out[&y]) <= 1e-4);
    }
}
