//! Lowering: scheduled computational graph -> TIR-lite program.
//!
//! This is the compilation pass described in paper §6. For an operator
//! `Y = F(X...)`:
//!
//! * the loop nest is reconstructed from the *physical* dimensions of `Y`'s
//!   layout (one spatial loop per physical dimension),
//! * logical output indices are recovered via the inverse primitive
//!   sequence `S_Y^{-1}(L')`, and
//! * every access to an input `X` is rewritten to
//!   `S_X(S_Y^{-1}(L'))` — so changing a layout never requires manually
//!   re-implementing the operator.
//!
//! Tiling follows the schedule's multi-level structure
//! (`S0 [init | R0 S1 R1 S2 | epilogue]`), with elementwise consumers fused
//! into the epilogue of their producer's tile loops when layouts align.

use std::collections::HashMap;

use alt_error::AltError;
use alt_layout::{LayoutPlan, VarExtents};
use alt_tensor::expr::{Expr, Var, VarGen};
use alt_tensor::op::{Cond, ReduceKind, ScalarBinOp, ScalarExpr};
use alt_tensor::{Graph, Node, OpId, OpTag, TensorId};

use crate::schedule::GraphSchedule;
use crate::tir::{
    BufId, BufKind, BufferDecl, LoopKind, LoweredGroup, Program, SExpr, Stmt, StoreMode, TirNode,
};

/// Cap on the collapsed parallel extent of a layout-conversion copy nest:
/// outer loops keep collapsing into the parallel band only while the
/// combined trip count stays below this (enough to feed every core many
/// times over without flattening the whole nest).
pub(crate) const PAR_COLLAPSE_CAP: i64 = 512;

/// One tiled axis: per-level loop extents plus the variables bound at each
/// level (extent-1 levels carry no variable).
struct TiledAxis {
    levels: Vec<i64>,
    vars: Vec<Option<Var>>,
}

impl TiledAxis {
    fn new(
        extent: i64,
        tiling: &crate::schedule::AxisTiling,
        vargen: &mut VarGen,
        name: &str,
    ) -> Self {
        let levels = tiling.levels(extent);
        // Loop names encode the axis lineage, not the level position:
        // roles are assigned among the *non-trivial* (extent > 1) levels
        // only, so an axis tiled with trivial factors gets the same names
        // as an untiled one — profiles diff cleanly across equivalent
        // schedules. A single live level keeps the plain axis name;
        // otherwise the outermost is `.o`, the innermost `.i`, and any
        // middle levels `.m0`, `.m1`, ...
        let live: Vec<usize> = levels
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e > 1)
            .map(|(l, _)| l)
            .collect();
        let vars = levels
            .iter()
            .enumerate()
            .map(|(l, &e)| {
                if e > 1 {
                    let role = match live.iter().position(|&x| x == l) {
                        _ if live.len() == 1 => name.to_string(),
                        Some(0) => format!("{name}.o"),
                        Some(p) if p + 1 == live.len() => format!("{name}.i"),
                        Some(p) => format!("{name}.m{}", p - 1),
                        None => unreachable!("live level missing from index"),
                    };
                    Some(vargen.fresh(&role))
                } else {
                    None
                }
            })
            .collect();
        Self { levels, vars }
    }

    /// The reconstructed axis index expression (Horner form over levels).
    fn index_expr(&self) -> Expr {
        let mut e = Expr::c(0);
        for (l, v) in self.vars.iter().enumerate() {
            e = e.mul_c(self.levels[l]);
            if let Some(v) = v {
                e = e.add(&Expr::v(v));
            }
        }
        e
    }

    fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Loop (var, extent) at `level`, if it needs emitting.
    fn loop_at(&self, level: usize) -> Option<(Var, i64)> {
        if level >= self.levels.len() {
            return None;
        }
        self.vars[level]
            .as_ref()
            .map(|v| (v.clone(), self.levels[level]))
    }
}

/// Wraps `body` in the given loops (outermost first).
fn nest(loops: Vec<(Var, i64, LoopKind)>, body: Vec<TirNode>) -> Vec<TirNode> {
    let mut cur = body;
    for (var, extent, kind) in loops.into_iter().rev() {
        cur = vec![TirNode::loop_(var, extent, kind, cur)];
    }
    cur
}

/// Conjunction of a condition list.
fn conj(conds: &[Cond]) -> Option<Cond> {
    let mut it = conds.iter().cloned();
    let first = it.next()?;
    Some(it.fold(first, |a, b| a.and(b)))
}

/// Converts a compute-body [`ScalarExpr`] (logical loads) into an
/// [`SExpr`] (physical buffer loads), rewriting each access through the
/// input tensor's layout.
#[allow(clippy::too_many_arguments)]
fn convert_body(
    expr: &ScalarExpr,
    node: &Node,
    graph: &Graph,
    plan: &LayoutPlan,
    bufs: &HashMap<TensorId, BufId>,
    converted: &HashMap<(TensorId, OpId), BufId>,
    subst: &HashMap<u32, Expr>,
    extents: &VarExtents,
) -> Result<SExpr, AltError> {
    Ok(match expr {
        ScalarExpr::Imm(v) => SExpr::Imm(*v),
        ScalarExpr::Load { input, indices } => {
            let t = node.inputs[*input];
            let mut logical: Vec<Expr> = indices.iter().map(|e| e.subst(subst)).collect();
            // A `store_at` guest lives inside its host's buffer, at the
            // reserved slot along the host dimension.
            if let Some((host, host_dim)) = plan.embedding_of(t) {
                let host_size = graph.tensor(host).shape.dim(host_dim);
                logical.insert(host_dim, Expr::c(host_size));
                let layout = plan.layout_of(graph, host);
                let phys = layout.rewrite_access(&logical, extents)?;
                return Ok(SExpr::Load {
                    buf: bufs[&host],
                    indices: phys,
                });
            }
            let layout = plan.layout_for_read(graph, t, node.id);
            let phys = layout.rewrite_access(&logical, extents)?;
            let buf = converted
                .get(&(t, node.id))
                .copied()
                .unwrap_or_else(|| bufs[&t]);
            SExpr::Load { buf, indices: phys }
        }
        ScalarExpr::Bin(op, a, b) => SExpr::Bin(
            *op,
            Box::new(convert_body(
                a, node, graph, plan, bufs, converted, subst, extents,
            )?),
            Box::new(convert_body(
                b, node, graph, plan, bufs, converted, subst, extents,
            )?),
        ),
        ScalarExpr::Unary(op, a) => SExpr::Unary(
            *op,
            Box::new(convert_body(
                a, node, graph, plan, bufs, converted, subst, extents,
            )?),
        ),
        ScalarExpr::Select { cond, then_, else_ } => SExpr::Select {
            cond: cond.subst(subst),
            then_: Box::new(convert_body(
                then_, node, graph, plan, bufs, converted, subst, extents,
            )?),
            else_: Box::new(convert_body(
                else_, node, graph, plan, bufs, converted, subst, extents,
            )?),
        },
    })
}

/// The lowering context.
struct Lowerer<'g> {
    graph: &'g Graph,
    plan: &'g LayoutPlan,
    sched: &'g GraphSchedule,
    vargen: VarGen,
    program: Program,
    bufs: HashMap<TensorId, BufId>,
    converted: HashMap<(TensorId, OpId), BufId>,
}

/// Lowers a scheduled, layout-annotated graph into a program.
///
/// Panics on invalid layout/schedule combinations; tuning paths that must
/// survive bad candidates use [`try_lower`] instead.
pub fn lower(graph: &Graph, plan: &LayoutPlan, sched: &GraphSchedule) -> Program {
    try_lower(graph, plan, sched).expect("lowering failed")
}

/// Fallible [`lower`]: an invalid candidate yields an [`AltError`] instead
/// of aborting the process.
pub fn try_lower(
    graph: &Graph,
    plan: &LayoutPlan,
    sched: &GraphSchedule,
) -> Result<Program, AltError> {
    try_lower_filtered(graph, plan, sched, None)
}

/// Lowers only the fusion groups rooted at the given operators (all groups
/// when `roots` is `None`). Tuners use this to measure a single operator's
/// group — including its layout-conversion groups — without paying for the
/// rest of the network.
///
/// Panics on invalid layout/schedule combinations; tuning paths use
/// [`try_lower_filtered`].
pub fn lower_filtered(
    graph: &Graph,
    plan: &LayoutPlan,
    sched: &GraphSchedule,
    roots: Option<&std::collections::HashSet<OpId>>,
) -> Program {
    try_lower_filtered(graph, plan, sched, roots).expect("lowering failed")
}

/// Fallible [`lower_filtered`]: layout rewrite failures (rank mismatches,
/// non-invertible access maps) surface as [`AltError::Layout`] and invalid
/// loop structures as [`AltError::Lower`], so the tuner can treat a bad
/// candidate as a recoverable measurement failure.
pub fn try_lower_filtered(
    graph: &Graph,
    plan: &LayoutPlan,
    sched: &GraphSchedule,
    roots: Option<&std::collections::HashSet<OpId>>,
) -> Result<Program, AltError> {
    let mut l = Lowerer {
        graph,
        plan,
        sched,
        vargen: graph.vargen.clone(),
        program: Program::default(),
        bufs: HashMap::new(),
        converted: HashMap::new(),
    };
    l.declare_buffers();
    let groups = l.fusion_groups();
    for (root, fused) in groups {
        if let Some(filter) = roots {
            if !filter.contains(&root) {
                continue;
            }
        }
        l.emit_conversions_for(root)?;
        for &f in &fused {
            l.emit_conversions_for(f)?;
        }
        l.lower_group(root, fused)?;
    }
    Ok(l.program)
}

impl<'g> Lowerer<'g> {
    fn declare_buffers(&mut self) {
        for (k, t) in self.graph.tensors().iter().enumerate() {
            let id = TensorId(k);
            let shape = self.plan.layout_of(self.graph, id).physical_shape();
            let buf = self.program.add_buffer(BufferDecl {
                name: t.name.clone(),
                shape,
                kind: BufKind::Tensor(id),
            });
            self.bufs.insert(id, buf);
        }
    }

    /// Groups operators for fusion: an elementwise op whose schedule asks
    /// for fusion joins its producer's group when it is the sole consumer
    /// and its output layout replicates the producer's (the alignment that
    /// layout propagation establishes — paper Fig. 7).
    fn fusion_groups(&self) -> Vec<(OpId, Vec<OpId>)> {
        let mut assigned = vec![false; self.graph.num_ops()];
        let mut groups = Vec::new();
        for node in self.graph.nodes() {
            if assigned[node.id.0] {
                continue;
            }
            assigned[node.id.0] = true;
            let mut fused = Vec::new();
            let mut tail = node.output;
            loop {
                let consumers = &self.graph.tensor(tail).consumers;
                if consumers.len() != 1 {
                    break;
                }
                let c = consumers[0];
                if assigned[c.0] {
                    break;
                }
                let cn = self.graph.node(c);
                if cn.tag != OpTag::Elementwise || !self.sched.get(c).fuse_into_producer {
                    break;
                }
                // Conversions on the fused edge make fusion meaningless.
                if self.plan.conversion_for(tail, c).is_some() {
                    break;
                }
                let tail_layout = self.plan.layout_of(self.graph, tail);
                let out_layout = self.plan.layout_of(self.graph, cn.output);
                if tail_layout.prims() != out_layout.prims()
                    || tail_layout.logical_shape() != out_layout.logical_shape()
                {
                    break;
                }
                assigned[c.0] = true;
                fused.push(c);
                tail = cn.output;
            }
            groups.push((node.id, fused));
        }
        groups
    }

    /// Emits the runtime layout-conversion groups feeding `op`.
    fn emit_conversions_for(&mut self, op: OpId) -> Result<(), AltError> {
        let node = self.graph.node(op);
        for &t in &node.inputs.clone() {
            let Some(conv) = self.plan.conversion_for(t, op) else {
                continue;
            };
            if self.converted.contains_key(&(t, op)) {
                continue;
            }
            let new_layout = conv.layout.clone();
            let src_layout = self.plan.layout_of(self.graph, t);
            let phys = new_layout.physical_shape();
            let buf = self.program.add_buffer(BufferDecl {
                name: format!("{}_conv", self.graph.tensor(t).name),
                shape: phys.clone(),
                kind: BufKind::Converted(t),
            });
            self.converted.insert((t, op), buf);

            // Simple parallel/vectorized copy nest over the new physical
            // dims. Tensors carry no logical axis names, so the lineage
            // helper's positional `d{k}` fallback names the loops (still
            // deterministic: `d0.o`/`d0.i` for a split leading dim, etc.).
            let dim_names = new_layout.physical_dim_names(&[]);
            let vars: Vec<Var> = (0..phys.ndim())
                .map(|k| self.vargen.fresh(&dim_names[k]))
                .collect();
            let var_exprs: Vec<Expr> = vars.iter().map(Expr::v).collect();
            let (logical, conds) = new_layout.inverse_access(&var_exprs)?;
            let src_phys = src_layout.rewrite_access(&logical, &VarExtents::new())?;
            let stmt = Stmt {
                buf,
                indices: var_exprs.clone(),
                value: SExpr::Load {
                    buf: self.bufs[&t],
                    indices: src_phys,
                },
                mode: StoreMode::Assign,
                pred: conj(&conds),
            };
            // Parallelize outer loops until there is enough parallelism
            // to feed every core, and vectorize the innermost copy loop.
            // The cap is checked on the *post*-multiplication product:
            // the first outer loop always parallelizes, but a further dim
            // collapses into the parallel band only if doing so keeps the
            // combined extent under the cap (checking before multiplying
            // let e.g. 511 x 512 collapse to a 261,632-way band).
            let mut par_extent = 1i64;
            let loops: Vec<(Var, i64, LoopKind)> = vars
                .iter()
                .enumerate()
                .map(|(k, v)| {
                    let grown = par_extent.saturating_mul(phys.dim(k));
                    let kind = if k + 1 < phys.ndim() && (k == 0 || grown < PAR_COLLAPSE_CAP) {
                        par_extent = grown;
                        LoopKind::Parallel
                    } else if k == phys.ndim() - 1 {
                        LoopKind::Vectorized
                    } else {
                        LoopKind::Serial
                    };
                    (v.clone(), phys.dim(k), kind)
                })
                .collect();
            let nodes = nest(loops, vec![TirNode::Stmt(stmt)]);
            self.program.groups.push(LoweredGroup {
                root: op,
                fused: vec![],
                nodes,
                label: format!("convert({})", self.graph.tensor(t).name),
            });
        }
        Ok(())
    }

    fn lower_group(&mut self, root: OpId, fused: Vec<OpId>) -> Result<(), AltError> {
        let node = self.graph.node(root).clone();
        let out_layout = self.plan.layout_of(self.graph, node.output);
        let phys = out_layout.physical_shape();
        let out_buf = self.bufs[&node.output];
        // A schedule authored against a different (since-changed) layout
        // no longer divides the physical dims; fall back to an automatic
        // schedule rather than producing invalid loops.
        let reduce_ext: Vec<i64> = node.compute.reduce_axes.iter().map(|a| a.extent).collect();
        let mut sched = self.sched.get(root);
        if !sched.validate(phys.dims(), &reduce_ext) {
            sched = auto_schedule(&phys, sched.fuse_into_producer);
        }

        // Variable extents for sliding-window (Eq. 1) matching: the
        // reduction variables stay live in the main nest.
        let mut extents = VarExtents::new();
        for ax in &node.compute.reduce_axes {
            extents.insert(ax.var.id(), ax.extent);
        }

        // Tiled spatial axes over the *physical* output dims, named by
        // their logical-axis lineage through the layout's primitive
        // sequence (e.g. a split output channel yields `oc.o` / `oc.i`)
        // so loop-nest paths are stable across runs and schedules.
        let logical_names: Vec<&str> = node.compute.axes.iter().map(|ax| ax.var.name()).collect();
        let dim_names = out_layout.physical_dim_names(&logical_names);
        let spatial: Vec<TiledAxis> = (0..phys.ndim())
            .map(|k| {
                TiledAxis::new(
                    phys.dim(k),
                    &sched.spatial_tiling(k),
                    &mut self.vargen,
                    &dim_names[k],
                )
            })
            .collect();
        let max_s_levels = spatial.iter().map(TiledAxis::num_levels).max().unwrap_or(1);

        // S0 loops (outermost level of every spatial axis).
        let s0_kind = if sched.parallel {
            LoopKind::Parallel
        } else {
            LoopKind::Serial
        };
        let s0_loops: Vec<(Var, i64, LoopKind)> = spatial
            .iter()
            .filter_map(|a| a.loop_at(0))
            .map(|(v, e)| (v, e, s0_kind))
            .collect();

        // Inner spatial loops builder (levels 1..): returns the loop list
        // for a fresh traversal of the tile.
        let inner_spatial_loops = |spatial: &[TiledAxis], vectorize: bool| {
            let mut loops: Vec<(Var, i64, LoopKind)> = Vec::new();
            for level in 1..max_s_levels {
                for a in spatial {
                    if let Some((v, e)) = a.loop_at(level) {
                        loops.push((v, e, LoopKind::Serial));
                    }
                }
            }
            if vectorize {
                if let Some(last) = loops.last_mut() {
                    last.2 = LoopKind::Vectorized;
                }
            }
            loops
        };

        // Physical index expressions and the logical reconstruction.
        let phys_exprs: Vec<Expr> = spatial.iter().map(TiledAxis::index_expr).collect();
        let (logical_exprs, conds) = out_layout.inverse_access(&phys_exprs)?;
        let pred = conj(&conds);

        // Substitution: compute axis vars -> logical index exprs.
        let mut subst = HashMap::new();
        for (ax, e) in node.compute.axes.iter().zip(logical_exprs.iter()) {
            subst.insert(ax.var.id(), e.clone());
        }

        let body = convert_body(
            &node.compute.body,
            &node,
            self.graph,
            self.plan,
            &self.bufs,
            &self.converted,
            &subst,
            &extents,
        )?;

        let mut tile_body: Vec<TirNode> = Vec::new();
        let is_reduce = node.compute.reduce != ReduceKind::None;

        if is_reduce {
            // Init pass over the tile.
            let init_stmt = Stmt {
                buf: out_buf,
                indices: phys_exprs.clone(),
                value: SExpr::Imm(node.compute.init),
                mode: StoreMode::Assign,
                pred: pred.clone(),
            };
            tile_body.extend(nest(
                inner_spatial_loops(&spatial, sched.vectorize),
                vec![TirNode::Stmt(init_stmt)],
            ));

            // Main accumulation nest: R0 S1 R1 S2 ...
            let reduce_axes: Vec<TiledAxis> = node
                .compute
                .reduce_axes
                .iter()
                .enumerate()
                .map(|(k, ax)| {
                    // The level-0 "loop" reuses the original reduce var at
                    // the innermost level so the body expression stays
                    // valid; tiling splits it.
                    TiledAxis::new(
                        ax.extent,
                        &sched.reduce_tiling(k),
                        &mut self.vargen,
                        ax.var.name(),
                    )
                })
                .collect();
            // Reduce axis reconstruction: original reduce var = Horner of
            // level vars; substitute into the body.
            let mut rsubst = HashMap::new();
            for (ax, ta) in node.compute.reduce_axes.iter().zip(reduce_axes.iter()) {
                rsubst.insert(ax.var.id(), ta.index_expr());
            }
            let body_main = subst_sexpr(&body, &rsubst);
            let pred_main = pred.clone().map(|c| c.subst(&rsubst));

            let mode = match node.compute.reduce {
                ReduceKind::Sum => StoreMode::AddAcc,
                ReduceKind::Max => StoreMode::MaxAcc,
                ReduceKind::None => unreachable!(),
            };
            let acc_stmt = Stmt {
                buf: out_buf,
                indices: phys_exprs.clone(),
                value: body_main,
                mode,
                pred: pred_main,
            };
            let max_r_levels = reduce_axes
                .iter()
                .map(TiledAxis::num_levels)
                .max()
                .unwrap_or(1);
            // Interleave as `S0 R0 S1 R1 S2`: reduce level l, then spatial
            // level l+1, holding the *last* spatial level back so it stays
            // innermost (vectorizable).
            let last_s_level = max_s_levels - 1;
            let mut loops: Vec<(Var, i64, LoopKind)> = Vec::new();
            for level in 0..max_r_levels.max(max_s_levels.saturating_sub(1)) {
                for a in &reduce_axes {
                    if let Some((v, e)) = a.loop_at(level) {
                        loops.push((v, e, LoopKind::Serial));
                    }
                }
                if level + 1 < last_s_level {
                    for a in &spatial {
                        if let Some((v, e)) = a.loop_at(level + 1) {
                            loops.push((v, e, LoopKind::Serial));
                        }
                    }
                }
            }
            // The innermost reduce loop can be unrolled.
            if sched.unroll {
                if let Some(last) = loops.last_mut() {
                    last.2 = LoopKind::Unrolled;
                }
            }
            // Deferred last spatial level, innermost and vectorizable.
            if last_s_level > 0 {
                let before = loops.len();
                for a in &spatial {
                    if let Some((v, e)) = a.loop_at(last_s_level) {
                        loops.push((v, e, LoopKind::Serial));
                    }
                }
                if sched.vectorize && loops.len() > before {
                    if let Some(last) = loops.last_mut() {
                        last.2 = LoopKind::Vectorized;
                    }
                }
            }
            tile_body.extend(nest(loops, vec![TirNode::Stmt(acc_stmt)]));
        } else {
            // Pure elementwise/gather root: direct store.
            let stmt = Stmt {
                buf: out_buf,
                indices: phys_exprs.clone(),
                value: body,
                mode: StoreMode::Assign,
                pred: pred.clone(),
            };
            tile_body.extend(nest(
                inner_spatial_loops(&spatial, sched.vectorize),
                vec![TirNode::Stmt(stmt)],
            ));
        }

        // Epilogue: post-scale plus the fused elementwise chain, iterating
        // the same tile.
        let needs_scale = node.compute.post_scale != 1.0;
        if needs_scale || !fused.is_empty() {
            let mut stmts: Vec<TirNode> = Vec::new();
            if needs_scale {
                stmts.push(TirNode::Stmt(Stmt {
                    buf: out_buf,
                    indices: phys_exprs.clone(),
                    value: SExpr::Bin(
                        ScalarBinOp::Mul,
                        Box::new(SExpr::Load {
                            buf: out_buf,
                            indices: phys_exprs.clone(),
                        }),
                        Box::new(SExpr::Imm(node.compute.post_scale)),
                    ),
                    mode: StoreMode::Assign,
                    pred: pred.clone(),
                }));
            }
            for &f in &fused {
                let fnode = self.graph.node(f).clone();
                // The fused op's axes map one-to-one onto the root's
                // logical output indices.
                let mut fsubst = HashMap::new();
                for (ax, e) in fnode.compute.axes.iter().zip(logical_exprs.iter()) {
                    fsubst.insert(ax.var.id(), e.clone());
                }
                let fbuf = self.bufs[&fnode.output];
                // Convert the body; loads of `prev_out` become physical
                // loads at the current tile position (its layout equals
                // the root output layout, so the rewrite yields exactly
                // `phys_exprs` — no special-casing needed).
                let fbody = convert_body(
                    &fnode.compute.body,
                    &fnode,
                    self.graph,
                    self.plan,
                    &self.bufs,
                    &self.converted,
                    &fsubst,
                    &extents,
                )?;
                stmts.push(TirNode::Stmt(Stmt {
                    buf: fbuf,
                    indices: phys_exprs.clone(),
                    value: fbody,
                    mode: StoreMode::Assign,
                    pred: pred.clone(),
                }));
            }
            tile_body.extend(nest(inner_spatial_loops(&spatial, sched.vectorize), stmts));
        }

        let nodes = nest(s0_loops, tile_body);
        let label = if fused.is_empty() {
            node.compute.name.clone()
        } else {
            format!(
                "{}+{}",
                node.compute.name,
                fused
                    .iter()
                    .map(|f| self.graph.node(*f).compute.name.clone())
                    .collect::<Vec<_>>()
                    .join("+")
            )
        };
        self.program.groups.push(LoweredGroup {
            root,
            fused,
            nodes,
            label,
        });
        Ok(())
    }
}

/// Fallback schedule derived from the physical output shape: parallel
/// outer loops and a vectorizable innermost tile.
fn auto_schedule(phys: &alt_tensor::Shape, fuse: bool) -> crate::schedule::OpSchedule {
    let nd = phys.ndim();
    let mut spatial = vec![crate::schedule::AxisTiling::none(); nd];
    if nd > 0 {
        let last = phys.dim(nd - 1);
        // Largest divisor <= 64 keeps the inner loop vector-friendly.
        let mut tile = 1;
        for d in 1..=last.min(64) {
            if last % d == 0 {
                tile = d;
            }
        }
        if tile > 1 {
            spatial[nd - 1] = crate::schedule::AxisTiling::one(tile);
        }
    }
    crate::schedule::OpSchedule {
        spatial,
        reduce: Vec::new(),
        vectorize: true,
        unroll: false,
        parallel: true,
        fuse_into_producer: fuse,
    }
}

/// Substitutes index variables inside an [`SExpr`].
fn subst_sexpr(e: &SExpr, map: &HashMap<u32, Expr>) -> SExpr {
    match e {
        SExpr::Imm(v) => SExpr::Imm(*v),
        SExpr::Load { buf, indices } => SExpr::Load {
            buf: *buf,
            indices: indices.iter().map(|i| i.subst(map)).collect(),
        },
        SExpr::Bin(op, a, b) => SExpr::Bin(
            *op,
            Box::new(subst_sexpr(a, map)),
            Box::new(subst_sexpr(b, map)),
        ),
        SExpr::Unary(op, a) => SExpr::Unary(*op, Box::new(subst_sexpr(a, map))),
        SExpr::Select { cond, then_, else_ } => SExpr::Select {
            cond: cond.subst(map),
            then_: Box::new(subst_sexpr(then_, map)),
            else_: Box::new(subst_sexpr(else_, map)),
        },
    }
}
