//! Canonical structural fingerprint of a lowered [`Program`].
//!
//! The measurement cache (PR 4) keys simulated measurements by program
//! identity: two schedule points that lower to the same loop nest over
//! the same buffers must produce the same key, and any structural
//! difference — a buffer shape, a loop extent or annotation, an index
//! expression, a store mode, a predicate — must change it. `derive(Hash)`
//! is deliberately avoided: the encoding below is explicit and versioned
//! by construction, so the key is stable across refactors that only
//! rearrange type definitions.
//!
//! The fingerprint is a 64-bit FNV-1a hash over a tagged pre-order
//! walk of the program. Every node writes a distinct tag byte before its
//! payload so that adjacent fields cannot alias (e.g. an empty `fused`
//! list followed by a label is distinguishable from a label alone).
//! A 64-bit digest has a ~2^-32 birthday collision probability around
//! 65k distinct programs — far beyond any tuning run's working set —
//! which DESIGN.md documents as an accepted trade-off for a
//! dependency-free hasher.

use alt_tensor::expr::Expr;
use alt_tensor::op::{Cond, ScalarBinOp, UnaryOp};

use crate::tir::{BufKind, Program, SExpr, Stmt, TirNode};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 over tagged byte streams.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a tag byte marking the node kind about to be encoded.
    pub fn tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    pub fn i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by bit pattern (NaN payloads included, so the
    /// encoding never equates distinct bit patterns).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Absorbs an `f32` by bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Absorbs a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

/// Computes the canonical fingerprint of a lowered program.
///
/// Stable across identical lowerings (same layouts + same schedules ⇒
/// same key) and sensitive to every structural field of the TIR. The
/// machine profile is *not* part of this digest; the simulation cache
/// mixes in its own profile fingerprint (see `alt-sim`).
pub fn program_fingerprint(p: &Program) -> u64 {
    let mut h = Fnv1a::new();
    h.tag(0x50); // 'P'
    h.u64(p.buffers.len() as u64);
    for b in &p.buffers {
        h.tag(0x42); // 'B'
        h.str(&b.name);
        h.u64(b.shape.dims().len() as u64);
        for &d in b.shape.dims() {
            h.i64(d);
        }
        match &b.kind {
            BufKind::Tensor(t) => {
                h.tag(0x01);
                h.u64(t.0 as u64);
            }
            BufKind::Converted(t) => {
                h.tag(0x02);
                h.u64(t.0 as u64);
            }
        }
    }
    h.u64(p.groups.len() as u64);
    for g in &p.groups {
        h.tag(0x47); // 'G'
        h.u64(g.root.0 as u64);
        h.u64(g.fused.len() as u64);
        for f in &g.fused {
            h.u64(f.0 as u64);
        }
        h.str(&g.label);
        h.u64(g.nodes.len() as u64);
        for n in &g.nodes {
            hash_node(&mut h, n);
        }
    }
    h.finish()
}

fn hash_node(h: &mut Fnv1a, n: &TirNode) {
    match n {
        TirNode::Loop {
            var,
            extent,
            kind,
            body,
        } => {
            h.tag(0x4c); // 'L'
            h.u64(var.id() as u64);
            h.str(var.name());
            h.i64(*extent);
            h.tag(*kind as u8);
            h.u64(body.len() as u64);
            for c in body {
                hash_node(h, c);
            }
        }
        TirNode::Stmt(s) => {
            h.tag(0x53); // 'S'
            hash_stmt(h, s);
        }
    }
}

fn hash_stmt(h: &mut Fnv1a, s: &Stmt) {
    h.u64(s.buf.0 as u64);
    h.u64(s.indices.len() as u64);
    for e in &s.indices {
        hash_expr(h, e);
    }
    hash_sexpr(h, &s.value);
    h.tag(s.mode as u8);
    match &s.pred {
        None => h.tag(0x00),
        Some(c) => {
            h.tag(0x01);
            hash_cond(h, c);
        }
    }
}

fn hash_expr(h: &mut Fnv1a, e: &Expr) {
    match e {
        Expr::Const(v) => {
            h.tag(0x10);
            h.i64(*v);
        }
        Expr::Var(v) => {
            h.tag(0x11);
            h.u64(v.id() as u64);
        }
        Expr::Bin(op, a, b) => {
            h.tag(0x12);
            h.tag(*op as u8);
            hash_expr(h, a);
            hash_expr(h, b);
        }
    }
}

fn hash_sexpr(h: &mut Fnv1a, e: &SExpr) {
    match e {
        SExpr::Imm(v) => {
            h.tag(0x20);
            h.f32(*v);
        }
        SExpr::Load { buf, indices } => {
            h.tag(0x21);
            h.u64(buf.0 as u64);
            h.u64(indices.len() as u64);
            for i in indices {
                hash_expr(h, i);
            }
        }
        SExpr::Bin(op, a, b) => {
            h.tag(0x22);
            h.tag(scalar_bin_tag(*op));
            hash_sexpr(h, a);
            hash_sexpr(h, b);
        }
        SExpr::Unary(op, a) => {
            h.tag(0x23);
            h.tag(unary_tag(*op));
            hash_sexpr(h, a);
        }
        SExpr::Select { cond, then_, else_ } => {
            h.tag(0x24);
            hash_cond(h, cond);
            hash_sexpr(h, then_);
            hash_sexpr(h, else_);
        }
    }
}

fn hash_cond(h: &mut Fnv1a, c: &Cond) {
    match c {
        Cond::Ge(a, b) => {
            h.tag(0x30);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Cond::Lt(a, b) => {
            h.tag(0x31);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Cond::Eq(a, b) => {
            h.tag(0x32);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Cond::And(a, b) => {
            h.tag(0x33);
            hash_cond(h, a);
            hash_cond(h, b);
        }
    }
}

fn scalar_bin_tag(op: ScalarBinOp) -> u8 {
    match op {
        ScalarBinOp::Add => 0,
        ScalarBinOp::Sub => 1,
        ScalarBinOp::Mul => 2,
        ScalarBinOp::Div => 3,
        ScalarBinOp::Max => 4,
        ScalarBinOp::Min => 5,
    }
}

fn unary_tag(op: UnaryOp) -> u8 {
    match op {
        UnaryOp::Neg => 0,
        UnaryOp::Exp => 1,
        UnaryOp::Sqrt => 2,
        UnaryOp::Rsqrt => 3,
        UnaryOp::Relu => 4,
        UnaryOp::Sigmoid => 5,
        UnaryOp::Tanh => 6,
        UnaryOp::Gelu => 7,
        UnaryOp::Abs => 8,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::schedule::GraphSchedule;
    use crate::{lower, try_lower_filtered};
    use alt_layout::{LayoutPlan, PropagationMode};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, OpId, Shape};

    fn conv_graph() -> (Graph, LayoutPlan) {
        // Two conv groups (relu fuses into the first) so that filtered
        // lowering genuinely drops a group.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 18, 18]));
        let w = g.add_param("w", Shape::new([16, 8, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let r = ops::relu(&mut g, c);
        let w2 = g.add_param("w2", Shape::new([8, 16, 3, 3]));
        let _ = ops::conv2d(&mut g, r, w2, ConvCfg::default());
        let plan = LayoutPlan::new(PropagationMode::Full);
        (g, plan)
    }

    #[test]
    fn identical_lowerings_share_a_fingerprint() {
        let (g, plan) = conv_graph();
        let sched = GraphSchedule::naive();
        let a = lower(&g, &plan, &sched);
        let b = lower(&g, &plan, &sched);
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn schedule_changes_change_the_fingerprint() {
        let (g, plan) = conv_graph();
        let base = GraphSchedule::naive();
        let baseline = program_fingerprint(&lower(&g, &plan, &base));
        // Any schedule that lowers differently must re-key the cache.
        let mut seen = std::collections::HashSet::new();
        seen.insert(baseline);
        // Only complex ops own loop nests; a fused elementwise consumer
        // inherits its root's loops, so toggle schedules on roots only.
        for op in g.complex_ops() {
            let mut sched = base.clone();
            let mut s = sched.get(op);
            s.parallel = !s.parallel;
            sched.set(op, s);
            let fp = program_fingerprint(&lower(&g, &plan, &sched));
            assert!(
                seen.insert(fp),
                "toggling parallel on {op:?} did not change the fingerprint"
            );
        }
    }

    #[test]
    fn filtered_lowering_is_deterministic() {
        let (g, plan) = conv_graph();
        let sched = GraphSchedule::naive();
        let roots: std::collections::HashSet<OpId> = [OpId(0)].into_iter().collect();
        let a = try_lower_filtered(&g, &plan, &sched, Some(&roots)).unwrap();
        let b = try_lower_filtered(&g, &plan, &sched, Some(&roots)).unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
        assert_ne!(
            program_fingerprint(&a),
            program_fingerprint(&lower(&g, &plan, &sched)),
            "restricting lowering to one root must change the fingerprint"
        );
    }

    #[test]
    fn fnv_vectors() {
        // Reference vectors for 64-bit FNV-1a.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }
}
