//! Loop schedules (paper §4.3).
//!
//! A schedule describes, per operator, how the loop nest lowered from its
//! (physical-layout-determined) output dimensions is tiled, ordered,
//! annotated and fused. The structure follows the multi-level tiling
//! sketch used by TVM/Ansor-style tuners: spatial axes are tiled into up
//! to three levels and reduction axes into up to two, interleaved as
//! `S0 R0 S1 R1 S2` with the innermost level vectorizable and the
//! outermost spatial level parallelizable. Operator fusion
//! (`compute_at`-style) attaches elementwise consumers to the tile loops
//! of their producer.

use std::collections::HashMap;

use alt_error::{codes, AltError};
use alt_tensor::OpId;

/// Tiling of one axis: inner factors, outermost-of-the-inner first.
///
/// An axis of extent `E` with `factors = [a, b]` produces the loop levels
/// `E/(a*b), a, b`. Factors must divide the extent (tuners only propose
/// divisors).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AxisTiling {
    /// Inner tile sizes (may be empty for an untiled axis).
    pub factors: Vec<i64>,
}

impl AxisTiling {
    /// No tiling.
    pub fn none() -> Self {
        Self::default()
    }

    /// One-level tiling with inner size `t`.
    pub fn one(t: i64) -> Self {
        Self { factors: vec![t] }
    }

    /// Two-level tiling.
    pub fn two(t1: i64, t2: i64) -> Self {
        Self {
            factors: vec![t1, t2],
        }
    }

    /// Loop-level extents for an axis of extent `e` (outer first).
    ///
    /// # Panics
    ///
    /// Panics if the factors do not divide `e` — schedules are validated
    /// by [`OpSchedule::validate`] before lowering.
    pub fn levels(&self, e: i64) -> Vec<i64> {
        let prod: i64 = self.factors.iter().product();
        assert!(
            prod > 0 && e % prod == 0,
            "tiling {:?} does not divide extent {e}",
            self.factors
        );
        let mut out = vec![e / prod];
        out.extend(self.factors.iter().copied());
        out
    }

    /// Fallible [`AxisTiling::levels`]: returns
    /// `V008_SPLIT_NONDIVISIBLE` instead of panicking when the factors do
    /// not divide `e`.
    pub fn try_levels(&self, e: i64) -> Result<Vec<i64>, AltError> {
        let prod: i64 = self.factors.iter().product();
        if prod <= 0 || e % prod != 0 {
            return Err(AltError::Verify {
                code: codes::V008_SPLIT_NONDIVISIBLE,
                detail: format!("tiling {:?} does not divide extent {e}", self.factors),
            });
        }
        let mut out = vec![e / prod];
        out.extend(self.factors.iter().copied());
        Ok(out)
    }

    /// Whether the factors divide `e`.
    pub fn divides(&self, e: i64) -> bool {
        let prod: i64 = self.factors.iter().product();
        prod > 0 && e % prod == 0
    }
}

/// Schedule of a single operator.
#[derive(Clone, Debug, Default)]
pub struct OpSchedule {
    /// Tiling per physical output dimension (missing entries = untiled).
    pub spatial: Vec<AxisTiling>,
    /// Tiling per reduction axis.
    pub reduce: Vec<AxisTiling>,
    /// Vectorize the innermost loop (subject to the simulator's stride-1
    /// check — a vectorize annotation on a strided loop costs scalar).
    pub vectorize: bool,
    /// Unroll the innermost reduction level.
    pub unroll: bool,
    /// Parallelize the outermost spatial tile loops.
    pub parallel: bool,
    /// Fuse this (elementwise) operator into its producer's tile loops.
    pub fuse_into_producer: bool,
}

impl OpSchedule {
    /// A default schedule: untiled, serial, unfused.
    pub fn naive() -> Self {
        Self::default()
    }

    /// Checks the tilings against concrete extents (see
    /// [`OpSchedule::check`] for the diagnostic-carrying form).
    pub fn validate(&self, spatial_extents: &[i64], reduce_extents: &[i64]) -> bool {
        self.check(spatial_extents, reduce_extents).is_ok()
    }

    /// Fallible [`OpSchedule::validate`]: explains *which* axis reference
    /// or tiling is illegal instead of collapsing to `false`.
    ///
    /// A schedule that tiles more axes than the operator has is a
    /// reference to a nonexistent (or already-consumed, after a layout
    /// change collapsed dimensions) axis — `V016_UNKNOWN_AXIS`; a tiling
    /// whose factors do not divide the extent is
    /// `V008_SPLIT_NONDIVISIBLE`.
    pub fn check(&self, spatial_extents: &[i64], reduce_extents: &[i64]) -> Result<(), AltError> {
        for (what, tilings, extents) in [
            ("spatial", &self.spatial, spatial_extents),
            ("reduce", &self.reduce, reduce_extents),
        ] {
            if tilings.len() > extents.len() {
                return Err(AltError::Verify {
                    code: codes::V016_UNKNOWN_AXIS,
                    detail: format!(
                        "schedule tiles {} {what} axes but the operator has {}",
                        tilings.len(),
                        extents.len()
                    ),
                });
            }
            for (k, (t, &e)) in tilings.iter().zip(extents).enumerate() {
                if !t.divides(e) {
                    return Err(AltError::Verify {
                        code: codes::V008_SPLIT_NONDIVISIBLE,
                        detail: format!(
                            "{what} axis {k}: tiling {:?} does not divide extent {e}",
                            t.factors
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Tiling for spatial axis `k` (untiled when unspecified).
    pub fn spatial_tiling(&self, k: usize) -> AxisTiling {
        self.spatial.get(k).cloned().unwrap_or_default()
    }

    /// Tiling for reduce axis `k` (untiled when unspecified).
    pub fn reduce_tiling(&self, k: usize) -> AxisTiling {
        self.reduce.get(k).cloned().unwrap_or_default()
    }
}

/// Schedules for all operators of a graph.
#[derive(Clone, Debug, Default)]
pub struct GraphSchedule {
    per_op: HashMap<OpId, OpSchedule>,
}

impl GraphSchedule {
    /// All-naive schedules.
    pub fn naive() -> Self {
        Self::default()
    }

    /// Sets the schedule of one operator.
    pub fn set(&mut self, op: OpId, sched: OpSchedule) {
        self.per_op.insert(op, sched);
    }

    /// The schedule of `op` (naive default).
    pub fn get(&self, op: OpId) -> OpSchedule {
        self.per_op.get(&op).cloned().unwrap_or_default()
    }

    /// Whether any operator has a non-default schedule.
    pub fn is_empty(&self) -> bool {
        self.per_op.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn tiling_levels() {
        assert_eq!(AxisTiling::none().levels(12), vec![12]);
        assert_eq!(AxisTiling::one(4).levels(12), vec![3, 4]);
        assert_eq!(AxisTiling::two(2, 3).levels(12), vec![2, 2, 3]);
    }

    #[test]
    fn divides_check() {
        assert!(AxisTiling::one(4).divides(12));
        assert!(!AxisTiling::one(5).divides(12));
    }

    #[test]
    fn schedule_validation() {
        let s = OpSchedule {
            spatial: vec![AxisTiling::one(4), AxisTiling::none()],
            reduce: vec![AxisTiling::one(2)],
            ..OpSchedule::default()
        };
        assert!(s.validate(&[8, 5], &[6]));
        assert!(!s.validate(&[9, 5], &[6]));
    }

    #[test]
    fn try_levels_reports_nondivisible_split() {
        assert_eq!(AxisTiling::one(4).try_levels(12).unwrap(), vec![3, 4]);
        let err = AxisTiling::one(5).try_levels(12).unwrap_err();
        assert_eq!(err.verify_code(), Some(codes::V008_SPLIT_NONDIVISIBLE));
        let err = AxisTiling { factors: vec![0] }.try_levels(12).unwrap_err();
        assert_eq!(err.verify_code(), Some(codes::V008_SPLIT_NONDIVISIBLE));
    }

    #[test]
    fn check_reports_nonexistent_axis() {
        // Tiling three spatial axes of a two-axis operator references an
        // axis that does not exist (e.g. consumed by a layout fuse).
        let s = OpSchedule {
            spatial: vec![AxisTiling::one(2); 3],
            ..OpSchedule::default()
        };
        let err = s.check(&[8, 6], &[]).unwrap_err();
        assert_eq!(err.verify_code(), Some(codes::V016_UNKNOWN_AXIS));
        assert!(err.to_string().contains("3 spatial axes"), "{err}");
    }

    #[test]
    fn check_reports_nondivisible_axis_with_position() {
        let s = OpSchedule {
            reduce: vec![AxisTiling::none(), AxisTiling::one(5)],
            ..OpSchedule::default()
        };
        let err = s.check(&[], &[4, 12]).unwrap_err();
        assert_eq!(err.verify_code(), Some(codes::V008_SPLIT_NONDIVISIBLE));
        assert!(err.to_string().contains("reduce axis 1"), "{err}");
    }
}
