//! Property-based lowering tests: random template layouts combined with
//! random loop schedules must always match the reference executor.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use alt_layout::{presets, LayoutPlan, PropagationMode};
use alt_loopir::{lower, run_program, AxisTiling, GraphSchedule, OpSchedule};
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn divisors(n: i64) -> Vec<i64> {
    (1..=n).filter(|d| n % d == 0).collect()
}

fn pick(divs: &[i64], sel: u64) -> i64 {
    divs[(sel % divs.len() as u64) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random §5.1 template instantiations on a small C2D.
    #[test]
    fn random_c2d_template_layouts_match_reference(
        sel in prop::collection::vec(any::<u64>(), 6),
        seed in any::<u64>(),
    ) {
        let (i_ch, o_ch, hw, k) = (4i64, 8i64, 10i64, 3i64);
        let out_sp = hw - k + 1;
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, i_ch, hw, hw]));
        let w = g.add_param("w", Shape::new([o_ch, i_ch, k, k]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();

        let ht = pick(&divisors(out_sp), sel[0]);
        let wt = pick(&divisors(out_sp), sel[1]);
        let ot = pick(&divisors(o_ch), sel[2]);
        let it = pick(&divisors(i_ch), sel[3]);
        let wit = pick(&divisors(i_ch), sel[4]);
        let wot = pick(&divisors(o_ch), sel[5]);

        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(
            &g,
            conv,
            presets::conv_output_tiled_nd(g.tensor(y).shape.clone(), &[ht, wt], ot).unwrap(),
        );
        plan.assign_input_layout(
            &g,
            conv,
            x,
            presets::conv_input_tiled_nd(
                g.tensor(x).shape.clone(),
                it,
                &[ht, wt],
                &[1, 1],
                &[k, k],
            )
            .unwrap(),
        );
        plan.assign_input_layout(
            &g,
            conv,
            w,
            presets::conv_weight_tiled_nd(g.tensor(w).shape.clone(), wit, wot).unwrap(),
        );

        let bindings = random_bindings(&g, seed);
        let reference = run_graph(&g, &bindings);
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let got = run_program(&program, &g, &plan, &bindings);
        let diff = reference[y.0].max_abs_diff(&got[&y]);
        prop_assert!(diff < 1e-3, "diff {diff} for ht={ht} wt={wt} ot={ot} it={it}");
    }

    /// Random loop schedules (tilings + annotations) on a fixed layout.
    #[test]
    fn random_loop_schedules_match_reference(
        sel in prop::collection::vec(any::<u64>(), 8),
        vectorize in any::<bool>(),
        unroll in any::<bool>(),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let phys = plan.layout_of(&g, y).physical_shape();

        let spatial: Vec<AxisTiling> = (0..phys.ndim())
            .map(|d| {
                let t = pick(&divisors(phys.dim(d)), sel[d]);
                if t > 1 { AxisTiling::one(t) } else { AxisTiling::none() }
            })
            .collect();
        let reduce_ext = [4i64, 3, 3];
        let reduce: Vec<AxisTiling> = (0..3)
            .map(|d| {
                let t = pick(&divisors(reduce_ext[d]), sel[4 + d]);
                if t > 1 { AxisTiling::one(t) } else { AxisTiling::none() }
            })
            .collect();
        let mut sched = GraphSchedule::naive();
        sched.set(
            conv,
            OpSchedule {
                spatial,
                reduce,
                vectorize,
                unroll,
                parallel,
                fuse_into_producer: false,
            },
        );

        let bindings = random_bindings(&g, seed);
        let reference = run_graph(&g, &bindings);
        let program = lower(&g, &plan, &sched);
        let got = run_program(&program, &g, &plan, &bindings);
        let diff = reference[y.0].max_abs_diff(&got[&y]);
        prop_assert!(diff < 1e-3, "diff {diff}");
    }

    /// Random GMM template instantiations.
    #[test]
    fn random_gmm_template_layouts_match_reference(
        sel in prop::collection::vec(any::<u64>(), 3),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = (8i64, 12i64, 16i64);
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([m, k]));
        let b = g.add_param("b", Shape::new([k, n]));
        let c = ops::gmm(&mut g, a, b);
        let op = g.tensor(c).producer.unwrap();
        let mt = pick(&divisors(m), sel[0]);
        let nt = pick(&divisors(n), sel[1]);
        let kt = pick(&divisors(k), sel[2]);
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(&g, op, presets::gmm_tiled(g.tensor(c).shape.clone(), mt, nt).unwrap());
        plan.assign_input_layout(&g, op, a, presets::gmm_tiled(g.tensor(a).shape.clone(), mt, kt).unwrap());
        plan.assign_input_layout(&g, op, b, presets::gmm_tiled(g.tensor(b).shape.clone(), kt, nt).unwrap());

        let bindings = random_bindings(&g, seed);
        let reference = run_graph(&g, &bindings);
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let got = run_program(&program, &g, &plan, &bindings);
        let diff = reference[c.0].max_abs_diff(&got[&c]);
        prop_assert!(diff < 1e-3, "diff {diff} for mt={mt} nt={nt} kt={kt}");
    }
}
