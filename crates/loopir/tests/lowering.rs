//! End-to-end lowering correctness: every combination of layout and loop
//! schedule must produce bit-compatible results with the naive reference
//! executor (up to floating-point reassociation from tiled reductions).

#![allow(clippy::unwrap_used)]

use alt_layout::{presets, Layout, LayoutPlan, PropagationMode};
use alt_loopir::{lower, run_program, AxisTiling, GraphSchedule, OpSchedule};
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, OpId, Shape, TensorId};

const TOL: f32 = 2e-3;

/// Runs both executors and compares every graph tensor.
fn check(graph: &Graph, plan: &LayoutPlan, sched: &GraphSchedule, seed: u64) {
    let bindings = random_bindings(graph, seed);
    let reference = run_graph(graph, &bindings);
    let program = lower(graph, plan, sched);
    let got = run_program(&program, graph, plan, &bindings);
    for (t, buf) in &got {
        let want = &reference[t.0];
        let diff = want.max_abs_diff(buf);
        assert!(
            diff <= TOL,
            "tensor `{}` differs by {diff} (layout {})",
            graph.tensor(*t).name,
            plan.layout_of(graph, *t)
        );
    }
}

fn conv_graph() -> (Graph, TensorId, OpId, TensorId) {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
    let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
    let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let conv = g.tensor(y).producer.unwrap();
    (g, x, conv, y)
}

#[test]
fn naive_conv_matches_reference() {
    let (g, _, _, _) = conv_graph();
    let plan = LayoutPlan::new(PropagationMode::Full);
    check(&g, &plan, &GraphSchedule::naive(), 1);
}

#[test]
fn nhwo_output_layout_matches_reference() {
    let (g, _, conv, y) = conv_graph();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    let layout = presets::nhwo(g.tensor(y).shape.clone()).unwrap();
    plan.assign_output_layout(&g, conv, layout);
    check(&g, &plan, &GraphSchedule::naive(), 2);
}

#[test]
fn hwon_output_layout_matches_reference() {
    let (g, _, conv, y) = conv_graph();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    let layout = presets::hwon(g.tensor(y).shape.clone()).unwrap();
    plan.assign_output_layout(&g, conv, layout);
    check(&g, &plan, &GraphSchedule::naive(), 3);
}

#[test]
fn full_c2d_template_layouts_match_reference() {
    // Output tiled, input unfolded (via a runtime conversion), weight
    // tiled: the §5.1 template end to end.
    let (g, x, conv, y) = conv_graph();
    let w = g.node(conv).inputs[1];
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    let (ht, wt, ot, it) = (4, 4, 4, 2);
    plan.assign_output_layout(
        &g,
        conv,
        presets::c2d_output_tiled(g.tensor(y).shape.clone(), ht, wt, ot).unwrap(),
    );
    let in_layout =
        presets::c2d_input_tiled(g.tensor(x).shape.clone(), it, ht, wt, 1, 3, 3).unwrap();
    plan.assign_input_layout(&g, conv, x, in_layout);
    plan.assign_input_layout(
        &g,
        conv,
        w,
        presets::c2d_weight_tiled(g.tensor(w).shape.clone(), 2, 4).unwrap(),
    );
    check(&g, &plan, &GraphSchedule::naive(), 4);
}

#[test]
fn strided_conv_with_unfolded_input_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 11, 11]));
    let w = g.add_param("w", Shape::new([4, 3, 3, 3]));
    let y = ops::conv2d(&mut g, x, w, ConvCfg::strided(2));
    let conv = g.tensor(y).producer.unwrap();
    // Output spatial = 5; tile by ht=wt... 5 is prime, use channel tiling
    // for the output and unfold for the input tied to stride 2.
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        conv,
        presets::c2d_output_tiled(g.tensor(y).shape.clone(), 5, 1, 2).unwrap(),
    );
    let in_layout = presets::c2d_input_tiled(g.tensor(x).shape.clone(), 3, 5, 1, 2, 3, 3).unwrap();
    plan.assign_input_layout(&g, conv, x, in_layout);
    check(&g, &plan, &GraphSchedule::naive(), 5);
}

#[test]
fn tiled_schedule_matches_reference() {
    let (g, _, conv, _) = conv_graph();
    let plan = LayoutPlan::new(PropagationMode::Full);
    let mut sched = GraphSchedule::naive();
    sched.set(
        conv,
        OpSchedule {
            // Physical dims: [N=1, O=8, H=8, W=8].
            spatial: vec![
                AxisTiling::none(),
                AxisTiling::one(4),
                AxisTiling::two(2, 2),
                AxisTiling::one(8),
            ],
            reduce: vec![AxisTiling::one(2), AxisTiling::none(), AxisTiling::none()],
            vectorize: true,
            unroll: true,
            parallel: true,
            fuse_into_producer: false,
        },
    );
    check(&g, &plan, &sched, 6);
}

#[test]
fn tiled_schedule_and_tiled_layout_together() {
    let (g, _, conv, y) = conv_graph();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        conv,
        presets::c2d_output_tiled(g.tensor(y).shape.clone(), 2, 4, 4).unwrap(),
    );
    let mut sched = GraphSchedule::naive();
    sched.set(
        conv,
        OpSchedule {
            // Physical dims: [1, H/2=4, W/4=2, O/4=2, 2, 4, 4].
            spatial: vec![
                AxisTiling::none(),
                AxisTiling::one(2),
                AxisTiling::none(),
                AxisTiling::none(),
                AxisTiling::none(),
                AxisTiling::one(4),
                AxisTiling::one(4),
            ],
            reduce: vec![AxisTiling::one(4), AxisTiling::none(), AxisTiling::none()],
            vectorize: true,
            unroll: false,
            parallel: true,
            fuse_into_producer: false,
        },
    );
    check(&g, &plan, &sched, 7);
}

#[test]
fn fused_conv_bias_relu_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 8, 8]));
    let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
    let b = g.add_param("b", Shape::new([8]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let ba = ops::bias_add(&mut g, c, b, 1);
    let r = ops::relu(&mut g, ba);
    let conv = g.tensor(c).producer.unwrap();
    let bias_op = g.tensor(ba).producer.unwrap();
    let relu_op = g.tensor(r).producer.unwrap();

    let mut plan = LayoutPlan::new(PropagationMode::Full);
    // Propagate a tiled output layout through bias+relu for fusion
    // alignment (paper Figs. 6/7).
    let applied = plan.assign_output_layout(
        &g,
        conv,
        presets::c2d_output_tiled(g.tensor(c).shape.clone(), 3, 2, 4).unwrap(),
    );
    assert_eq!(applied.len(), 3, "propagation should cover bias and relu");

    let mut sched = GraphSchedule::naive();
    let fuse = OpSchedule {
        fuse_into_producer: true,
        ..OpSchedule::default()
    };
    sched.set(bias_op, fuse.clone());
    sched.set(relu_op, fuse);
    check(&g, &plan, &sched, 8);

    // The lowered program must contain a single fused group.
    let program = lower(&g, &plan, &sched);
    assert_eq!(program.groups.len(), 1, "conv+bias+relu should fuse");
    assert_eq!(program.groups[0].fused.len(), 2);
}

#[test]
fn padding_absorbs_conversion_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 8, 8]));
    let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
    let p = ops::pad2d_spatial(&mut g, x, 1);
    let c = ops::conv2d(&mut g, p, w, ConvCfg::default());
    let conv = g.tensor(c).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    let layout = presets::nhwo(g.tensor(p).shape.clone()).unwrap();
    let outcome = plan.assign_input_layout(&g, conv, p, layout);
    assert_eq!(outcome, alt_layout::AssignOutcome::Absorbed);
    check(&g, &plan, &GraphSchedule::naive(), 9);
    // No conversion group should exist: the pad op writes NHWO directly.
    let program = lower(&g, &plan, &GraphSchedule::naive());
    assert!(program
        .groups
        .iter()
        .all(|gr| !gr.label.starts_with("convert")));
}

#[test]
fn explicit_conversion_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 8, 8]));
    let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
    let p = ops::pad2d_spatial(&mut g, x, 1);
    let c = ops::conv2d(&mut g, p, w, ConvCfg::default());
    let conv = g.tensor(c).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::None);
    let layout = presets::nhwo(g.tensor(p).shape.clone()).unwrap();
    let outcome = plan.assign_input_layout(&g, conv, p, layout);
    assert_eq!(outcome, alt_layout::AssignOutcome::Conversion);
    check(&g, &plan, &GraphSchedule::naive(), 10);
    let program = lower(&g, &plan, &GraphSchedule::naive());
    assert!(program
        .groups
        .iter()
        .any(|gr| gr.label.starts_with("convert")));
}

#[test]
fn gmm_nkn_layouts_match_reference() {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([8, 12]));
    let b = g.add_param("b", Shape::new([12, 16]));
    let c = ops::gmm(&mut g, a, b);
    let op = g.tensor(c).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        op,
        presets::gmm_tiled(g.tensor(c).shape.clone(), 4, 4).unwrap(),
    );
    plan.assign_input_layout(
        &g,
        op,
        a,
        presets::gmm_tiled(g.tensor(a).shape.clone(), 4, 4).unwrap(),
    );
    plan.assign_input_layout(
        &g,
        op,
        b,
        presets::gmm_tiled(g.tensor(b).shape.clone(), 4, 4).unwrap(),
    );
    check(&g, &plan, &GraphSchedule::naive(), 11);
}

#[test]
fn gmm_transposed_b_matches_reference() {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([6, 10]));
    let b = g.add_param("b", Shape::new([10, 6]));
    let c = ops::gmm(&mut g, a, b);
    let op = g.tensor(c).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_input_layout(
        &g,
        op,
        b,
        presets::transposed2d(g.tensor(b).shape.clone()).unwrap(),
    );
    check(&g, &plan, &GraphSchedule::naive(), 12);
}

#[test]
fn depthwise_conv_channel_tiled_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 8, 9, 9]));
    let w = g.add_param("w", Shape::new([8, 1, 3, 3]));
    let y = ops::conv2d(
        &mut g,
        x,
        w,
        ConvCfg {
            groups: 8,
            ..ConvCfg::default()
        },
    );
    let conv = g.tensor(y).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        conv,
        presets::channel_tiled(g.tensor(y).shape.clone(), 4).unwrap(),
    );
    check(&g, &plan, &GraphSchedule::naive(), 13);
}

#[test]
fn tconv2d_nhwo_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 5, 5]));
    let w = g.add_param("w", Shape::new([4, 6, 3, 3]));
    let y = ops::tconv2d(&mut g, x, w, 2);
    let op = g.tensor(y).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(&g, op, presets::nhwo(g.tensor(y).shape.clone()).unwrap());
    check(&g, &plan, &GraphSchedule::naive(), 14);
}

#[test]
fn conv3d_ndhwo_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 6, 6, 6]));
    let w = g.add_param("w", Shape::new([4, 3, 3, 3, 3]));
    let y = ops::conv3d(&mut g, x, w, ConvCfg::default());
    let op = g.tensor(y).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(&g, op, presets::ndhwo(g.tensor(y).shape.clone()).unwrap());
    check(&g, &plan, &GraphSchedule::naive(), 15);
}

#[test]
fn pooling_softmax_layernorm_lower_correctly() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([2, 4, 8, 8]));
    let p = ops::max_pool2d(&mut g, x, 2, 2);
    let a = ops::avg_pool2d(&mut g, p, 2, 2);
    let flat = ops::reshape(&mut g, a, Shape::new([2, 16]));
    let sm = ops::softmax_lastdim(&mut g, flat);
    let gamma = g.add_param("gamma", Shape::new([16]));
    let beta = g.add_param("beta", Shape::new([16]));
    let _ln = ops::layernorm_lastdim(&mut g, sm, gamma, beta, 1e-5);
    let plan = LayoutPlan::new(PropagationMode::Full);
    check(&g, &plan, &GraphSchedule::naive(), 16);
}

#[test]
fn residual_add_fusion_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 6, 6]));
    let w = g.add_param("w", Shape::new([4, 4, 3, 3]));
    let p = ops::pad2d_spatial(&mut g, x, 1);
    let c = ops::conv2d(&mut g, p, w, ConvCfg::default());
    // Residual: add the conv result to the original input.
    let s = ops::add(&mut g, c, x);
    let conv = g.tensor(c).producer.unwrap();
    let add_op = g.tensor(s).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        conv,
        presets::channel_tiled(g.tensor(c).shape.clone(), 2).unwrap(),
    );
    let mut sched = GraphSchedule::naive();
    sched.set(
        add_op,
        OpSchedule {
            fuse_into_producer: true,
            ..OpSchedule::default()
        },
    );
    check(&g, &plan, &sched, 17);
    let program = lower(&g, &plan, &sched);
    // pad group + fused conv+add group.
    let conv_group = program
        .groups
        .iter()
        .find(|gr| gr.root == conv)
        .expect("conv group");
    assert_eq!(conv_group.fused.len(), 1, "residual add should fuse");
}

#[test]
fn batch_gmm_matches_reference() {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([3, 4, 6]));
    let b = g.add_input("b", Shape::new([3, 6, 5]));
    let _ = ops::batch_gmm(&mut g, a, b);
    let plan = LayoutPlan::new(PropagationMode::Full);
    check(&g, &plan, &GraphSchedule::naive(), 18);
}

#[test]
fn conv1d_nwo_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([2, 3, 12]));
    let w = g.add_param("w", Shape::new([4, 3, 3]));
    let y = ops::conv1d(&mut g, x, w, ConvCfg::default());
    let op = g.tensor(y).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(&g, op, presets::nwo(g.tensor(y).shape.clone()).unwrap());
    check(&g, &plan, &GraphSchedule::naive(), 19);
}

#[test]
fn dilated_conv_matches_reference() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 12, 12]));
    let w = g.add_param("w", Shape::new([4, 3, 3, 3]));
    let y = ops::conv2d(
        &mut g,
        x,
        w,
        ConvCfg {
            dilation: 2,
            ..ConvCfg::default()
        },
    );
    let op = g.tensor(y).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    // Output spatial is 8: tile it and unfold the input with the dilated
    // window (window = (3-1)*2 + 1 = 5).
    let (op_, out_layout) = conv_out_tiled(&g, y, 4, 4, 2);
    assert_eq!(op_, op);
    plan.assign_output_layout(&g, op, out_layout);
    let in_layout = presets::c2d_input_tiled(g.tensor(x).shape.clone(), 3, 4, 4, 1, 5, 5).unwrap();
    plan.assign_input_layout(&g, op, x, in_layout);
    check(&g, &plan, &GraphSchedule::naive(), 20);
}

/// Helper so the dilated test reads naturally.
fn conv_out_tiled(g: &Graph, y: TensorId, ht: i64, wt: i64, ot: i64) -> (OpId, Layout) {
    let op = g.tensor(y).producer.unwrap();
    (
        op,
        presets::c2d_output_tiled(g.tensor(y).shape.clone(), ht, wt, ot).unwrap(),
    )
}

#[test]
fn store_at_bias_in_weight_matches_reference() {
    // The paper's store_at example: attach the bias vector of a fully
    // connected layer to the weight matrix so the inner product and the
    // bias addition read the same cache lines.
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([6, 10]));
    let w = g.add_param("w", Shape::new([10, 8]));
    let c = ops::gmm(&mut g, a, w);
    let b = g.add_param("b", Shape::new([8]));
    let out = ops::bias_add(&mut g, c, b, 1);
    let gmm_op = g.tensor(c).producer.unwrap();
    let bias_op = g.tensor(out).producer.unwrap();

    let mut plan = LayoutPlan::new(PropagationMode::Full);
    // Attach bias to the weight matrix along K (dim 0): each bias element
    // sits below its weight column.
    plan.store_at(&g, w, b, 0).expect("store_at valid");

    let mut sched = GraphSchedule::naive();
    sched.set(
        bias_op,
        OpSchedule {
            fuse_into_producer: true,
            ..OpSchedule::default()
        },
    );
    let _ = gmm_op;
    check(&g, &plan, &sched, 31);
    // The host buffer physically reserves one extra row.
    let program = lower(&g, &plan, &sched);
    let host_buf = program.buffer_for_tensor(w).unwrap();
    assert_eq!(program.buffer(host_buf).shape.dims(), &[11, 8]);
}

#[test]
fn store_at_rejects_invalid_pairs() {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([6, 10]));
    let w = g.add_param("w", Shape::new([10, 8]));
    let b = g.add_param("b", Shape::new([7]));
    let _ = ops::gmm(&mut g, a, w);
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    // Wrong guest shape.
    assert!(plan.store_at(&g, w, b, 0).is_err());
    // Non-constant host.
    assert!(plan.store_at(&g, a, b, 0).is_err());
}

#[test]
fn diamond_mixed_producer_layouts_match_reference() {
    // Two convolutions with *different* tuned output layouts feeding one
    // add: the add reads each input through its own layout (no
    // conversion operator is required for reads).
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 8, 10, 10]));
    let w1 = g.add_param("w1", Shape::new([8, 8, 1, 1]));
    let w2 = g.add_param("w2", Shape::new([8, 8, 1, 1]));
    let c1 = ops::conv2d(&mut g, x, w1, ConvCfg::default());
    let c2 = ops::conv2d(&mut g, x, w2, ConvCfg::default());
    let _s = ops::add(&mut g, c1, c2);
    let op1 = g.tensor(c1).producer.unwrap();
    let op2 = g.tensor(c2).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        op1,
        presets::channel_tiled(g.tensor(c1).shape.clone(), 4).unwrap(),
    );
    plan.assign_output_layout(&g, op2, presets::nhwo(g.tensor(c2).shape.clone()).unwrap());
    check(&g, &plan, &GraphSchedule::naive(), 41);
}

/// Collects the sorted loop-variable names of every group.
fn loop_names(program: &alt_loopir::Program) -> Vec<Vec<String>> {
    fn walk(nodes: &[alt_loopir::TirNode], out: &mut Vec<String>) {
        for n in nodes {
            if let alt_loopir::TirNode::Loop { var, body, .. } = n {
                out.push(var.name().to_string());
                walk(body, out);
            }
        }
    }
    program
        .groups
        .iter()
        .map(|g| {
            let mut out = Vec::new();
            walk(&g.nodes, &mut out);
            out.sort();
            // Init/main/epilogue passes of a reduce nest re-emit the same
            // tile loops; the stable property is the *name set*.
            out.dedup();
            out
        })
        .collect()
}

#[test]
fn loop_names_stable_across_equivalent_schedules() {
    // A trivially-tiled schedule (tile factor = full extent, so the outer
    // level has extent 1 and only one live loop remains per axis) must
    // produce the same loop *names* as the untiled one: role suffixes are
    // assigned among non-trivial levels only, so profiles keyed on loop
    // paths diff cleanly instead of showing a positional rename.
    let (g, _, conv, y) = conv_graph();
    let plan = LayoutPlan::new(PropagationMode::Full);
    let naive = lower(&g, &plan, &GraphSchedule::naive());

    let ndim = g.tensor(y).shape.ndim();
    let mut sched = GraphSchedule::naive();
    let mut spatial = vec![AxisTiling::none(); ndim];
    // Physical dim 1 (output channels) has extent 8: "tile" it by 8.
    spatial[1] = AxisTiling::one(8);
    sched.set(
        conv,
        OpSchedule {
            spatial,
            ..sched.get(conv)
        },
    );
    let tiled = lower(&g, &plan, &sched);
    assert_eq!(loop_names(&naive), loop_names(&tiled));
}

#[test]
fn loop_names_follow_axis_lineage() {
    // Channel-tiled output layout: the split output-channel axis shows up
    // as `o.o` / `o.i` in the loop nest, and a scheduled 2-level tiling of
    // a physical dim appends `.o`/`.i` role suffixes to the lineage name.
    let (g, _, conv, y) = conv_graph();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        conv,
        presets::channel_tiled(g.tensor(y).shape.clone(), 4).unwrap(),
    );
    let program = lower(&g, &plan, &GraphSchedule::naive());
    let conv_group = program
        .groups
        .iter()
        .find(|gr| gr.root == conv && gr.label.starts_with("c2d"))
        .expect("conv group present");
    let mut names = Vec::new();
    fn collect(nodes: &[alt_loopir::TirNode], out: &mut Vec<String>) {
        for n in nodes {
            if let alt_loopir::TirNode::Loop { var, body, .. } = n {
                out.push(var.name().to_string());
                collect(body, out);
            }
        }
    }
    collect(&conv_group.nodes, &mut names);
    assert!(
        names.iter().any(|n| n == "o.o") && names.iter().any(|n| n == "o.i"),
        "split channel lineage missing from {names:?}"
    );
    // Reduce loops carry the compute's own reduce-axis names.
    assert!(
        names.iter().any(|n| n.starts_with("ri")),
        "reduce lineage missing from {names:?}"
    );
}

#[test]
fn conversion_parallel_collapse_respects_cap_post_multiplication() {
    // A conversion copy nest over physical dims [511, 512, 8]: the old
    // pre-multiplication guard saw par_extent = 511 < 512 and collapsed
    // the second dim too, yielding a 511 x 512 = 261,632-way parallel
    // band. The clamp must be applied *after* multiplying, so only the
    // first dim parallelizes here.
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([511, 4096]));
    let b = g.add_param("b", Shape::new([4096, 4]));
    let c = ops::gmm(&mut g, a, b);
    let op = g.tensor(c).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::None);
    let layout = Layout::identity(Shape::new([511, 4096]))
        .with(alt_layout::LayoutPrim::Split {
            dim: 1,
            factors: vec![512, 8],
        })
        .unwrap();
    let outcome = plan.assign_input_layout(&g, op, a, layout);
    assert_eq!(outcome, alt_layout::AssignOutcome::Conversion);
    let program = lower(&g, &plan, &GraphSchedule::naive());
    let conv = program
        .groups
        .iter()
        .find(|gr| gr.label.starts_with("convert"))
        .expect("conversion group");

    fn kinds(nodes: &[alt_loopir::TirNode], out: &mut Vec<(i64, alt_loopir::LoopKind)>) {
        for n in nodes {
            if let alt_loopir::TirNode::Loop {
                extent, kind, body, ..
            } = n
            {
                out.push((*extent, *kind));
                kinds(body, out);
            }
        }
    }
    let mut ks = Vec::new();
    kinds(&conv.nodes, &mut ks);
    assert_eq!(ks.len(), 3, "{ks:?}");
    assert_eq!(ks[0], (511, alt_loopir::LoopKind::Parallel), "{ks:?}");
    // The collapsed parallel extent must stay under the cap: the second
    // dim may not join the parallel band.
    assert_eq!(ks[1], (512, alt_loopir::LoopKind::Serial), "{ks:?}");
    assert_eq!(ks[2], (8, alt_loopir::LoopKind::Vectorized), "{ks:?}");
    let par: i64 = ks
        .iter()
        .filter(|(_, k)| *k == alt_loopir::LoopKind::Parallel)
        .map(|(e, _)| e)
        .product();
    assert!(par < 512, "collapsed parallel extent {par} blew the cap");
}

#[test]
fn conversion_parallel_collapse_still_collapses_small_dims() {
    // Under the cap, consecutive outer dims still collapse into the
    // parallel band (4 x 16 = 64 < 512).
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([4, 128]));
    let b = g.add_param("b", Shape::new([128, 4]));
    let c = ops::gmm(&mut g, a, b);
    let op = g.tensor(c).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::None);
    let layout = Layout::identity(Shape::new([4, 128]))
        .with(alt_layout::LayoutPrim::Split {
            dim: 1,
            factors: vec![16, 8],
        })
        .unwrap();
    assert_eq!(
        plan.assign_input_layout(&g, op, a, layout),
        alt_layout::AssignOutcome::Conversion
    );
    let program = lower(&g, &plan, &GraphSchedule::naive());
    let conv = program
        .groups
        .iter()
        .find(|gr| gr.label.starts_with("convert"))
        .expect("conversion group");
    let mut ks = Vec::new();
    fn kinds(nodes: &[alt_loopir::TirNode], out: &mut Vec<alt_loopir::LoopKind>) {
        for n in nodes {
            if let alt_loopir::TirNode::Loop { kind, body, .. } = n {
                out.push(*kind);
                kinds(body, out);
            }
        }
    }
    kinds(&conv.nodes, &mut ks);
    assert_eq!(
        ks,
        vec![
            alt_loopir::LoopKind::Parallel,
            alt_loopir::LoopKind::Parallel,
            alt_loopir::LoopKind::Vectorized,
        ]
    );
}
