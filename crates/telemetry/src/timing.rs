//! Wall-clock self-profiling for the tuning pipeline (PR 8).
//!
//! PR 3's profiler explains every *simulated* nanosecond of a measured
//! program; this module explains where the tuner's *own* wall-clock time
//! goes — candidate generation, lowering, verification, GBT scoring,
//! simulation, store I/O, checkpointing. Two aggregation shapes:
//!
//! * a **phase tree** ([`PhaseNode`]): RAII [`PhaseGuard`]s opened via
//!   [`Timing::phase`] aggregate by name into a per-run tree with call
//!   counts and inclusive microseconds (exclusive time is derived), and
//! * **latency histograms** through the PR 1 [`CounterRegistry`]
//!   (`Timing::observe_us`, or the shared registry handle attached to
//!   the store and the simulation memo cache).
//!
//! The phase tree is deliberately single-threaded: guards live on the
//! tuner's sequential accounting thread only, which is what makes the
//! conservation law hold (the children of a phase can never sum to more
//! than the phase itself — concurrent worker wall-time can). Worker-side
//! timings go into the thread-safe histograms instead.
//!
//! Timing is **observation-only**. It writes to its own sink
//! ([`Timing::emit_to`]) and never the deterministic trace or journal
//! streams; attaching it cannot change a run's winners, transcripts or
//! budgets (property-tested in `alt-autotune`). The clock is injectable
//! ([`Clock`]) so tests are deterministic: production uses
//! [`MonotonicClock`], tests use [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::counters::CounterRegistry;
use crate::record::{Record, TimingRecord};
use crate::sink::Telemetry;

/// A monotonic microsecond clock. Injectable so the phase tree is
/// testable with a deterministic [`ManualClock`].
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since construction, monotonic.
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// One aggregated node of the per-run phase tree.
///
/// Phases with the same name under the same parent merge: `count` is how
/// many guards closed there and `inclusive_us` their summed wall time.
/// The conservation law — checked by [`PhaseNode::is_conserved`] and CI —
/// is that children can never sum past their parent, which holds because
/// guards are strictly nested on one thread.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseNode {
    /// Phase name, e.g. `loop_stage` or `measure`.
    pub name: String,
    /// Number of guards aggregated into this node.
    pub count: u64,
    /// Total wall time spent inside this phase, children included.
    pub inclusive_us: u64,
    /// Child phases, in first-entry order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            count: 0,
            inclusive_us: 0,
            children: Vec::new(),
        }
    }

    /// Wall time spent in this phase *outside* any child phase.
    pub fn exclusive_us(&self) -> u64 {
        self.inclusive_us.saturating_sub(self.children_us())
    }

    /// Summed inclusive time of the direct children.
    pub fn children_us(&self) -> u64 {
        self.children.iter().map(|c| c.inclusive_us).sum()
    }

    /// Direct child by name.
    pub fn child(&self, name: &str) -> Option<&PhaseNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// First node with this name anywhere in the subtree (pre-order).
    pub fn find(&self, name: &str) -> Option<&PhaseNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Checks the conservation law recursively: in every node the
    /// children's inclusive times sum to at most the node's own.
    pub fn is_conserved(&self) -> bool {
        self.children_us() <= self.inclusive_us && self.children.iter().all(PhaseNode::is_conserved)
    }

    /// Merges `other` into this node's children (matching by name,
    /// recursively).
    fn merge_child(&mut self, other: PhaseNode) {
        match self.children.iter_mut().find(|c| c.name == other.name) {
            Some(c) => {
                c.count += other.count;
                c.inclusive_us += other.inclusive_us;
                for grandchild in other.children {
                    c.merge_child(grandchild);
                }
            }
            None => self.children.push(other),
        }
    }
}

/// An open frame on the (single-threaded) phase stack.
struct Frame {
    name: String,
    start_us: u64,
    /// Children already closed under this frame.
    closed: PhaseNode,
}

struct TimingState {
    /// Closed top-level phases accumulate into this root's children.
    root: PhaseNode,
    stack: Vec<Frame>,
    /// Clock reading when timing was enabled (the root's start).
    t0_us: u64,
}

struct TimingInner {
    clock: Box<dyn Clock>,
    state: Mutex<TimingState>,
    /// Wall-clock latency histograms (`wall.*`), shareable with the
    /// store and the simulation memo cache.
    registry: Arc<CounterRegistry>,
}

/// Cheap clonable handle to the run's wall-clock self-profile. Disabled
/// by default ([`Timing::disabled`]): every operation is a no-op and
/// costs no clock read.
#[derive(Clone)]
pub struct Timing {
    inner: Option<Arc<TimingInner>>,
}

impl std::fmt::Debug for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timing")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Timing {
    /// The disabled handle: no clock, no allocation, no output.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle on the production monotonic clock.
    pub fn enabled() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// An enabled handle on an injected clock (tests).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        let t0_us = clock.now_us();
        Self {
            inner: Some(Arc::new(TimingInner {
                clock,
                state: Mutex::new(TimingState {
                    root: PhaseNode::new("run"),
                    stack: Vec::new(),
                    t0_us,
                }),
                registry: Arc::new(CounterRegistry::new("wall")),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock reading (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_us())
    }

    /// Opens a phase. The returned RAII guard closes it on drop and
    /// merges it into the tree. Phases must be opened and closed on one
    /// thread (the tuner's accounting thread); guards dropped out of
    /// LIFO order fold any still-open inner phases into themselves, so
    /// the tree stays conserved even under misuse.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        let depth = match &self.inner {
            None => 0,
            Some(inner) => {
                let now = inner.clock.now_us();
                let mut st = inner.state.lock().expect("timing state poisoned");
                st.stack.push(Frame {
                    name: name.to_string(),
                    start_us: now,
                    closed: PhaseNode::new(""),
                });
                st.stack.len()
            }
        };
        PhaseGuard {
            timing: self.clone(),
            depth,
        }
    }

    /// Records one wall-clock observation (microseconds) into the named
    /// histogram. Thread-safe; this is the worker-side channel that
    /// keeps concurrent timings out of the phase tree.
    pub fn observe_us(&self, name: &str, us: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, us as f64);
        }
    }

    /// Shared histogram registry, for attaching to the store / memo
    /// cache. `None` when disabled.
    pub fn registry(&self) -> Option<Arc<CounterRegistry>> {
        self.inner.as_ref().map(|i| i.registry.clone())
    }

    /// Snapshot of the phase tree. The root spans from enablement to
    /// now; still-open frames are folded in as partial phases so the
    /// snapshot is conserved at any point. `None` when disabled.
    pub fn snapshot(&self) -> Option<PhaseNode> {
        let inner = self.inner.as_ref()?;
        let now = inner.clock.now_us();
        let st = inner.state.lock().expect("timing state poisoned");
        let mut root = st.root.clone();
        root.count = 1;
        root.inclusive_us = now.saturating_sub(st.t0_us);
        let mut open: Option<PhaseNode> = None;
        for frame in st.stack.iter().rev() {
            let mut node = PhaseNode {
                name: frame.name.clone(),
                count: 1,
                inclusive_us: now.saturating_sub(frame.start_us),
                children: frame.closed.children.clone(),
            };
            if let Some(inner_node) = open.take() {
                node.merge_child(inner_node);
            }
            open = Some(node);
        }
        if let Some(node) = open {
            root.merge_child(node);
        }
        Some(root)
    }

    /// Machine-readable per-run manifest: the phase tree, every wall
    /// histogram/counter, caller-supplied environment facts, and the
    /// run's configuration fingerprint. `None` when disabled.
    pub fn manifest(
        &self,
        env: &[(&str, serde_json::Value)],
        config_fp: u64,
    ) -> Option<serde_json::Value> {
        let inner = self.inner.as_ref()?;
        let phases = self.snapshot()?;
        let mut wall: Vec<(String, serde_json::Value)> = inner
            .registry
            .histograms()
            .into_iter()
            .map(|(name, h)| {
                (
                    name,
                    serde_json::json!({
                        "count": h.count,
                        "sum_us": h.sum,
                        "min_us": h.min,
                        "max_us": h.max,
                        "mean_us": h.mean(),
                        "p50_us": h.p50,
                        "p95_us": h.p95,
                        "p99_us": h.p99,
                        "sampled": h.sampled,
                    }),
                )
            })
            .collect();
        wall.extend(
            inner
                .registry
                .snapshot()
                .into_iter()
                .map(|(name, v)| (name, serde_json::json!(v))),
        );
        Some(serde_json::json!({
            "alt_timing_manifest": 1,
            "config_fp": format!("{config_fp:016x}"),
            "env": serde_json::Value::Object(
                env.iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .collect(),
            ),
            "phases": phase_to_json(&phases),
            "wall": serde_json::Value::Object(wall.into_iter().collect()),
        }))
    }

    /// Emits the phase tree (one [`TimingRecord`]) plus every wall
    /// histogram/counter into `sink` — the timing stream's **own** sink,
    /// never the deterministic trace. Clears the registry.
    pub fn emit_to(&self, sink: &Telemetry) {
        let Some(inner) = &self.inner else { return };
        if let Some(phases) = self.snapshot() {
            sink.emit(Record::Timing(TimingRecord { phases }));
        }
        inner.registry.flush_to(sink);
        sink.flush();
    }
}

/// Renders a [`PhaseNode`] as a `serde_json` value (the manifest's
/// `phases` field; `exclusive_us` is materialized for consumers).
pub fn phase_to_json(node: &PhaseNode) -> serde_json::Value {
    serde_json::json!({
        "name": node.name.clone(),
        "count": node.count,
        "inclusive_us": node.inclusive_us,
        "exclusive_us": node.exclusive_us(),
        "children": node.children.iter().map(phase_to_json).collect::<Vec<_>>(),
    })
}

/// RAII guard for one open phase; see [`Timing::phase`].
pub struct PhaseGuard {
    timing: Timing,
    /// Stack depth right after this guard's frame was pushed (1-based);
    /// 0 when timing is disabled.
    depth: usize,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.timing.inner else {
            return;
        };
        if self.depth == 0 {
            return;
        }
        let now = inner.clock.now_us();
        let mut st = inner.state.lock().expect("timing state poisoned");
        // Close everything down to (and including) this guard's frame.
        // Inner frames still open (guards leaked or dropped out of
        // order) fold into their parents here, keeping conservation.
        while st.stack.len() >= self.depth {
            let frame = st.stack.pop().expect("stack length checked");
            let node = PhaseNode {
                name: frame.name,
                count: 1,
                inclusive_us: now.saturating_sub(frame.start_us),
                children: frame.closed.children,
            };
            match st.stack.last_mut() {
                Some(parent) => parent.closed.merge_child(node),
                None => st.root.merge_child(node),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Timing, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        struct Shared(Arc<ManualClock>);
        impl Clock for Shared {
            fn now_us(&self) -> u64 {
                self.0.now_us()
            }
        }
        let timing = Timing::with_clock(Box::new(Shared(clock.clone())));
        (timing, clock)
    }

    #[test]
    fn disabled_timing_is_inert() {
        let t = Timing::disabled();
        assert!(!t.is_enabled());
        let _g = t.phase("anything");
        t.observe_us("lat", 5);
        assert!(t.snapshot().is_none());
        assert!(t.registry().is_none());
        assert!(t.manifest(&[], 0).is_none());
    }

    #[test]
    fn nested_phases_aggregate_with_counts_and_exclusive_time() {
        let (t, clock) = manual();
        for _ in 0..2 {
            let _outer = t.phase("outer");
            clock.advance_us(10);
            {
                let _inner = t.phase("inner");
                clock.advance_us(5);
            }
            clock.advance_us(1);
        }
        clock.advance_us(3);
        let root = t.snapshot().expect("enabled");
        assert_eq!(root.inclusive_us, 35);
        let outer = root.child("outer").expect("outer recorded");
        assert_eq!(outer.count, 2);
        assert_eq!(outer.inclusive_us, 32);
        let inner = outer.child("inner").expect("inner nested");
        assert_eq!(inner.count, 2);
        assert_eq!(inner.inclusive_us, 10);
        assert_eq!(outer.exclusive_us(), 22);
        assert_eq!(root.exclusive_us(), 3);
        assert!(root.is_conserved());
    }

    #[test]
    fn out_of_order_drops_fold_open_children_and_stay_conserved() {
        let (t, clock) = manual();
        let outer = t.phase("outer");
        clock.advance_us(4);
        let inner = t.phase("inner");
        clock.advance_us(6);
        drop(outer); // closes `inner` too
        drop(inner); // stale guard: no-op
        let root = t.snapshot().expect("enabled");
        let outer = root.child("outer").expect("outer recorded");
        assert_eq!(outer.inclusive_us, 10);
        assert_eq!(outer.child("inner").expect("folded in").inclusive_us, 6);
        assert!(root.is_conserved());
    }

    #[test]
    fn snapshot_includes_open_frames_and_is_conserved() {
        let (t, clock) = manual();
        let _outer = t.phase("outer");
        clock.advance_us(7);
        let _inner = t.phase("inner");
        clock.advance_us(2);
        let root = t.snapshot().expect("enabled");
        assert_eq!(root.inclusive_us, 9);
        let outer = root.child("outer").expect("open frame visible");
        assert_eq!(outer.inclusive_us, 9);
        assert_eq!(outer.child("inner").expect("open child").inclusive_us, 2);
        assert!(root.is_conserved());
    }

    #[test]
    fn histograms_flow_through_the_shared_registry() {
        let (t, _clock) = manual();
        let reg = t.registry().expect("enabled");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for k in 0..8 {
                        reg.observe("store.append_us", (i * 8 + k) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        t.observe_us("verify_us", 3);
        let h = reg.histogram("store.append_us").expect("observed");
        assert_eq!(h.count, 32);
        assert_eq!(reg.histogram("verify_us").expect("observed").count, 1);
    }

    #[test]
    fn manifest_carries_phases_env_and_wall_histograms() {
        let (t, clock) = manual();
        {
            let _g = t.phase("tune");
            clock.advance_us(11);
        }
        t.observe_us("sim.cold_us", 9);
        let m = t
            .manifest(&[("jobs", serde_json::json!(8))], 0xabcd)
            .expect("enabled");
        assert_eq!(m["alt_timing_manifest"], serde_json::json!(1));
        assert_eq!(m["config_fp"], serde_json::json!("000000000000abcd"));
        assert_eq!(m["env"]["jobs"], serde_json::json!(8));
        assert_eq!(m["phases"]["name"], "run");
        assert_eq!(m["phases"]["inclusive_us"].as_u64(), Some(11));
        let tune = &m["phases"]["children"][0];
        assert_eq!(tune["name"], "tune");
        assert_eq!(tune["exclusive_us"].as_u64(), Some(11));
        assert_eq!(m["wall"]["sim.cold_us"]["count"].as_u64(), Some(1));
    }

    #[test]
    fn emit_to_writes_only_the_timing_sink() {
        let (t, clock) = manual();
        {
            let _g = t.phase("tune");
            clock.advance_us(5);
        }
        t.observe_us("lat_us", 5);
        let (sink, mem) = Telemetry::memory();
        t.emit_to(&sink);
        let records = mem.records();
        match &records[0] {
            Record::Timing(rec) => {
                assert_eq!(rec.phases.child("tune").expect("tune").inclusive_us, 5);
                assert!(rec.phases.is_conserved());
            }
            other => panic!("expected timing record first, got {other:?}"),
        }
        // 8 histogram stats for `lat_us` follow.
        assert_eq!(records.len(), 9);
        // Round-trip through the wire format.
        let line = serde_json::to_string(&records[0]).expect("serialize");
        let back: Record = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, records[0]);
    }

    #[test]
    fn phase_tree_conservation_proptest() {
        // Deterministic pseudo-random walks over enter/exit/advance ops:
        // conservation and total-time accounting must hold for every
        // interleaving, including walks that leave frames open.
        let mut rng = 0x243f6a8885a308d3u64;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545F4914F6CDD1D)
        };
        for _case in 0..64 {
            let (t, clock) = manual();
            let mut guards: Vec<PhaseGuard> = Vec::new();
            let mut advanced = 0u64;
            for _step in 0..200 {
                match next() % 4 {
                    0 | 1 => {
                        let name = format!("p{}", next() % 5);
                        guards.push(t.phase(&name));
                    }
                    2 => {
                        guards.pop();
                    }
                    _ => {
                        let us = next() % 50;
                        clock.advance_us(us);
                        advanced += us;
                    }
                }
                let snap = t.snapshot().expect("enabled");
                assert!(snap.is_conserved(), "mid-walk conservation");
            }
            guards.clear();
            let root = t.snapshot().expect("enabled");
            assert!(root.is_conserved(), "final conservation");
            assert_eq!(root.inclusive_us, advanced, "root covers the whole run");
        }
    }
}
