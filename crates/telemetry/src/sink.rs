//! Pluggable trace sinks and the cheap `Telemetry` handle.
//!
//! A [`Telemetry`] handle is what instrumented code holds. It is either
//! disabled (the default — one `Option` check per emit, no allocation)
//! or wraps an `Arc<dyn Sink>` shared across threads.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::record::Record;

/// Destination for trace records. Implementations must be safe to share
/// across tuning threads.
pub trait Sink: Send + Sync {
    /// Accepts one record. Called on the hot measurement path, so
    /// implementations should be cheap or buffered.
    fn record(&self, record: &Record);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Thread-safe in-memory collector, mainly for tests and for embedding a
/// run summary in benchmark output.
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("memory sink poisoned").clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().expect("memory sink poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, record: &Record) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(record.clone());
    }
}

/// Appends one compact-JSON line per record to a file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, record: &Record) {
        let line = serde_json::to_string(record).expect("record serializes");
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Discards everything. Exists so a sink can be configured explicitly
/// "off" where an API requires a concrete sink.
#[derive(Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _record: &Record) {}
}

/// Cheap, clonable handle instrumented code emits through.
///
/// The disabled (`noop`) handle costs one branch per emit and is the
/// default everywhere, so uninstrumented runs pay essentially nothing.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn Sink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// Disabled handle; emits are dropped before any work happens.
    pub fn noop() -> Self {
        Self { sink: None }
    }

    /// Wraps an existing shared sink.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Collects records in memory; returns the handle and the sink for
    /// later inspection.
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Self::new(sink.clone()), sink)
    }

    /// Streams records to a JSONL trace file.
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Arc::new(JsonlSink::create(path)?)))
    }

    /// Whether emits reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Sends one record to the sink, if any.
    pub fn emit(&self, record: Record) {
        if let Some(sink) = &self.sink {
            sink.record(&record);
        }
    }

    /// Flushes the underlying sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CounterRecord, EventRecord};

    fn event(name: &str) -> Record {
        Record::Event(EventRecord {
            name: name.to_string(),
            depth: 0,
            t_us: 0,
            fields: Vec::new(),
        })
    }

    #[test]
    fn noop_handle_drops_records() {
        let t = Telemetry::noop();
        assert!(!t.is_enabled());
        t.emit(event("ignored"));
        t.flush();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let (t, sink) = Telemetry::memory();
        assert!(t.is_enabled());
        t.emit(event("a"));
        t.emit(event("b"));
        let records = sink.records();
        assert_eq!(records.len(), 2);
        match &records[0] {
            Record::Event(e) => assert_eq!(e.name, "a"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_emit_is_thread_safe() {
        let (t, sink) = Telemetry::memory();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        t.emit(Record::Counter(CounterRecord {
                            scope: format!("thread{i}"),
                            name: format!("n{j}"),
                            value: j as f64,
                        }));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(sink.len(), 800);
    }
}
