//! RAII spans and point events with monotonic timestamps.
//!
//! Timestamps are microseconds since a process-wide epoch captured on
//! first use, so all records within a run share one clock. Nesting depth
//! is tracked per thread: a span entered while another is open records
//! `depth + 1`.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

use crate::record::{EventRecord, Record, SpanRecord};
use crate::sink::Telemetry;

static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// Microseconds since the process telemetry epoch.
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Current per-thread span nesting depth.
pub fn current_depth() -> u64 {
    DEPTH.with(|d| d.get())
}

/// An open timed region. Emits a [`SpanRecord`] when dropped.
pub struct Span {
    telemetry: Telemetry,
    name: String,
    depth: u64,
    start_us: u64,
}

impl Span {
    /// Opens a span. Cheap when telemetry is disabled (no clock read).
    pub fn enter(telemetry: &Telemetry, name: impl Into<String>) -> Self {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let start_us = if telemetry.is_enabled() { now_us() } else { 0 };
        Self {
            telemetry: telemetry.clone(),
            name: name.into(),
            depth,
            start_us,
        }
    }

    /// Emits a point event inside this span with key/value fields.
    pub fn event(&self, name: impl Into<String>, fields: &[(&str, String)]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.emit(Record::Event(EventRecord {
            name: name.into(),
            depth: self.depth + 1,
            t_us: now_us(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if self.telemetry.is_enabled() {
            let end = now_us();
            self.telemetry.emit(Record::Span(SpanRecord {
                name: std::mem::take(&mut self.name),
                depth: self.depth,
                start_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_depth() {
        let (t, sink) = Telemetry::memory();
        {
            let outer = Span::enter(&t, "outer");
            outer.event("tick", &[("k", "v".to_string())]);
            {
                let _inner = Span::enter(&t, "inner");
            }
        }
        let records = sink.records();
        // Event first, then inner span closes, then outer.
        assert_eq!(records.len(), 3);
        match &records[0] {
            Record::Event(e) => {
                assert_eq!(e.name, "tick");
                assert_eq!(e.depth, 1);
                assert_eq!(e.fields, vec![("k".to_string(), "v".to_string())]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &records[1] {
            Record::Span(s) => {
                assert_eq!(s.name, "inner");
                assert_eq!(s.depth, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &records[2] {
            Record::Span(s) => {
                assert_eq!(s.name, "outer");
                assert_eq!(s.depth, 0);
                assert!(s.dur_us >= records[1].span_dur());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    impl Record {
        fn span_dur(&self) -> u64 {
            match self {
                Record::Span(s) => s.dur_us,
                _ => 0,
            }
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn spawned_threads_start_at_depth_zero() {
        let (t, sink) = Telemetry::memory();
        let _outer = Span::enter(&t, "outer");
        assert_eq!(current_depth(), 1);
        let t2 = t.clone();
        std::thread::spawn(move || {
            // Depth is per-thread: the parent's open span is invisible.
            assert_eq!(current_depth(), 0);
            let _child = Span::enter(&t2, "child");
            assert_eq!(current_depth(), 1);
        })
        .join()
        .expect("spawned thread");
        assert_eq!(current_depth(), 1);
        match &sink.records()[0] {
            Record::Span(s) => {
                assert_eq!(s.name, "child");
                assert_eq!(s.depth, 0, "spawned thread starts at depth 0");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interleaved_spans_on_two_threads_record_independent_depths() {
        use std::sync::mpsc;
        let (t, sink) = Telemetry::memory();
        // Lockstep interleaving: A opens a0, then B opens b0+b1 and
        // closes both, then A opens and closes a1, then a0 closes.
        let (to_b, b_rx) = mpsc::channel::<()>();
        let (to_a, a_rx) = mpsc::channel::<()>();
        let tb = t.clone();
        let b = std::thread::spawn(move || {
            b_rx.recv().expect("a0 open");
            let b0 = Span::enter(&tb, "b0");
            {
                let _b1 = Span::enter(&tb, "b1");
                assert_eq!(current_depth(), 2);
            }
            drop(b0);
            to_a.send(()).expect("signal a");
        });
        {
            let _a0 = Span::enter(&t, "a0");
            to_b.send(()).expect("signal b");
            a_rx.recv().expect("b done");
            let _a1 = Span::enter(&t, "a1");
            assert_eq!(current_depth(), 2);
        }
        b.join().expect("thread b");
        let depth_of = |name: &str| {
            sink.records()
                .iter()
                .find_map(|r| match r {
                    Record::Span(s) if s.name == name => Some(s.depth),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        // B's depths never see A's open a0; A's never see B's spans.
        assert_eq!(depth_of("b0"), 0);
        assert_eq!(depth_of("b1"), 1);
        assert_eq!(depth_of("a0"), 0);
        assert_eq!(depth_of("a1"), 1);
    }

    #[test]
    fn disabled_spans_leave_no_records_but_track_depth() {
        let t = Telemetry::noop();
        assert_eq!(current_depth(), 0);
        {
            let _s = Span::enter(&t, "quiet");
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
    }
}
