//! Typed trace record schema for tuning runs.
//!
//! One JSONL line per record. Every record carries a `type` tag so a
//! trace file can be read back without out-of-band schema knowledge:
//!
//! ```text
//! {"type":"measurement","seq":1,"op":"conv2d#0","stage":"Joint",...}
//! {"type":"ppo_update","op":"conv2d#0","episode":1,...}
//! {"type":"cost_model","op":"conv2d#0","round":3,"spearman":0.82,...}
//! ```

use serde::{Deserialize, Serialize};

/// Which tuning stage issued a measurement (the paper's two-stage split).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Joint layout + loop stage (Fig. 8 cross-exploration).
    Joint,
    /// Loop-only refinement stage with frozen layouts.
    Loop,
}

/// Simulator counters aggregated over one measured program.
///
/// Mirrors `alt_sim::Counters` but lives here so the telemetry schema has
/// no dependency on the simulator crate (the conversion happens at the
/// instrumentation site).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Dynamic instructions (vector ops count once).
    pub instructions: f64,
    /// Scalar floating-point operations.
    pub flops: f64,
    /// L1 load instructions.
    pub l1_loads: f64,
    /// L1 store instructions.
    pub l1_stores: f64,
    /// L1 miss line-fill events (after prefetching).
    pub l1_misses: f64,
    /// L2 miss line-fill events.
    pub l2_misses: f64,
    /// Lines the hardware prefetcher was modeled to fetch.
    pub prefetch_issued: f64,
    /// Prefetched lines that absorbed a would-be demand miss.
    pub prefetch_useful: f64,
    /// Fraction of issued instructions running at full SIMD width
    /// (instruction-weighted, in `[0, 1]`).
    pub simd_utilization: f64,
}

/// One budget unit: a single candidate measured on the hardware model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementRecord {
    /// Budget unit index, 1-based; the paper's x-axis in Fig. 11.
    pub seq: u64,
    /// Operator tag, e.g. `conv2d#3`.
    pub op: String,
    /// Tuning stage that spent this unit.
    pub stage: Stage,
    /// Tuning round within the stage (one round measures up to top-k).
    pub round: u64,
    /// Compact candidate-point summary (layout or loop knob indices).
    pub candidate: String,
    /// GBT-predicted score for this candidate, when the model ranked it.
    pub predicted_cost: Option<f64>,
    /// Simulated latency of the measured program (seconds).
    pub latency_s: f64,
    /// Best latency seen for this op so far, including this measurement.
    pub best_so_far_s: f64,
    /// Simulator counters for the measured program.
    pub counters: SimCounters,
}

/// One PPO policy update (an "episode" of the layout actor).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PpoUpdateRecord {
    /// Operator whose layout actor updated.
    pub op: String,
    /// Update index for this actor, 1-based.
    pub episode: u64,
    /// Transitions consumed by the update.
    pub transitions: u64,
    /// Mean reward over the consumed transitions.
    pub reward_mean: f64,
    /// Mean clipped surrogate policy loss (lower is better).
    pub policy_loss: f64,
    /// Critic mean squared error before the update.
    pub value_loss: f64,
    /// Gaussian policy entropy (nats per action dimension).
    pub entropy: f64,
}

/// Cost-model ranking quality for one tuning round.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModelRecord {
    /// Operator being tuned.
    pub op: String,
    /// Stage the round belongs to.
    pub stage: Stage,
    /// Round index, 1-based, counted per op.
    pub round: u64,
    /// Candidates measured this round (the top-k).
    pub measured: u64,
    /// Spearman rank correlation between the GBT scores and the measured
    /// quality of this round's top-k. `1.0` = the model ranked the
    /// measured candidates perfectly.
    pub spearman: f64,
    /// Training-set size of the model that produced the ranking.
    pub train_size: u64,
}

/// A named span (timed region) that closed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `joint_stage` or `compile`.
    pub name: String,
    /// Nesting depth at entry (0 = top level).
    pub depth: u64,
    /// Start time, microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
}

/// A point event with free-form key/value fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Nesting depth of the enclosing span stack.
    pub depth: u64,
    /// Timestamp, microseconds since the process telemetry epoch.
    pub t_us: u64,
    /// Key/value payload.
    pub fields: Vec<(String, String)>,
}

/// One aggregated counter flushed from a registry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Registry scope, e.g. `sim` or `tuner`.
    pub scope: String,
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: f64,
}

/// A failed measurement: one consumed budget unit that produced no
/// usable latency (injected fault, invalid candidate, timeout).
///
/// Preserves the one-record-per-budget-unit invariant: every unit emits
/// either a [`MeasurementRecord`] or a [`MeasurementFailureRecord`] with
/// the same `seq` numbering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementFailureRecord {
    /// Budget unit index, 1-based, shared with [`MeasurementRecord::seq`].
    pub seq: u64,
    /// Operator tag being tuned when the failure occurred.
    pub op: String,
    /// Tuning stage that spent this unit.
    pub stage: Stage,
    /// Tuning round within the stage.
    pub round: u64,
    /// Compact candidate-point summary.
    pub candidate: String,
    /// Failure class (`AltError::kind`): `injected_compile`, `timeout`,
    /// `layout`, `lower`, `sim`.
    pub kind: String,
    /// Human-readable error description.
    pub error: String,
    /// Retry attempt number for this candidate (1 = first attempt).
    pub attempt: u64,
    /// Virtual exponential backoff the tuner charged before the next
    /// attempt (microseconds; 0 when the candidate was abandoned).
    pub backoff_us: u64,
}

/// A candidate rejected by the static verifier before measurement.
///
/// Unlike a [`MeasurementFailureRecord`], a verify rejection consumes
/// *no* budget unit (it has no `seq`): the candidate never reached the
/// simulator. The `code` is a stable diagnostic code from
/// `alt_error::codes`, so traces can be aggregated per violation class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerifyRejectionRecord {
    /// Operator tag being tuned when the candidate was rejected.
    pub op: String,
    /// Tuning stage that generated the candidate.
    pub stage: Stage,
    /// Tuning round within the stage.
    pub round: u64,
    /// Compact candidate-point summary.
    pub candidate: String,
    /// Stable diagnostic code, e.g. `V007_PAD_UNDERCOVERS`.
    pub code: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// One node of a simulated-execution cost profile: a lowered group
/// (`path == ""`) or one statement leaf attributed to its loop-nest path.
///
/// Component seconds are an additive decomposition of `latency_s`; group
/// nodes additionally carry the fork/join or kernel-launch `overhead_s`
/// so a trace consumer can reconstruct exact totals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileNodeRecord {
    /// Lowered-group label, e.g. `c2d#0` or `convert(x)`.
    pub op: String,
    /// Loop-nest path (`o.o@par/h/w/o.i@vec`), empty on group nodes.
    pub path: String,
    /// Buffer the leaf statement writes, empty on group nodes.
    pub store: String,
    /// Modeled latency of this node in seconds.
    pub latency_s: f64,
    /// Instruction-issue seconds.
    pub compute_s: f64,
    /// L1-miss line fills served from L2.
    pub l2_transfer_s: f64,
    /// L2-miss line fills served from DRAM.
    pub dram_transfer_s: f64,
    /// Exposed L2 hit latency.
    pub l2_latency_s: f64,
    /// Exposed DRAM latency.
    pub dram_latency_s: f64,
    /// Group fork/join or kernel-launch overhead (group nodes only).
    pub overhead_s: f64,
    /// Scalar floating-point operations.
    pub flops: f64,
    /// L1 miss line-fill events (after prefetching).
    pub l1_misses: f64,
    /// L2 miss line-fill events.
    pub l2_misses: f64,
    /// Would-be demand misses absorbed by the modeled prefetcher.
    pub prefetch_hidden: f64,
    /// Instruction-weighted SIMD lane utilization in `[0, 1]`.
    pub simd_utilization: f64,
    /// Seconds lost to GPU shared-memory bank conflicts (diagnostic,
    /// already inside `compute_s`).
    pub bank_conflict_s: f64,
}

/// Roofline position of a profiled program on its machine profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RooflineRecord {
    /// Machine profile name.
    pub machine: String,
    /// Arithmetic intensity in FLOP per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Attained GFLOP/s.
    pub attained_gflops: f64,
    /// Machine peak GFLOP/s.
    pub peak_gflops: f64,
    /// DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Roofline at this intensity: `min(peak, AI x bandwidth)`.
    pub ceiling_gflops: f64,
    /// Binding ceiling: `compute` or `bandwidth`.
    pub binding: String,
}

/// End-of-run summary written by the compiler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummaryRecord {
    /// Configured joint-stage budget.
    pub joint_budget: u64,
    /// Configured loop-stage budget.
    pub loop_budget: u64,
    /// Measurements actually consumed.
    pub measurements: u64,
    /// Final tuned end-to-end latency (seconds).
    pub best_latency_s: f64,
    /// Compilation wall time (seconds).
    pub wall_s: f64,
}

/// The wall-clock phase tree of one run (PR 8).
///
/// Written only to the timing stream's own sink ([`crate::Timing`]), never
/// the deterministic trace — timing is observation-only.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingRecord {
    /// Root of the aggregated phase tree (named `run`).
    pub phases: crate::timing::PhaseNode,
}

/// Any trace record. Serialized as the payload object plus a `type` tag.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    Measurement(MeasurementRecord),
    MeasurementFailure(MeasurementFailureRecord),
    VerifyRejection(VerifyRejectionRecord),
    PpoUpdate(PpoUpdateRecord),
    CostModel(CostModelRecord),
    Span(SpanRecord),
    Event(EventRecord),
    Counter(CounterRecord),
    ProfileNode(ProfileNodeRecord),
    Roofline(RooflineRecord),
    RunSummary(RunSummaryRecord),
    Timing(TimingRecord),
}

impl Record {
    /// The `type` tag used on the wire.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Record::Measurement(_) => "measurement",
            Record::MeasurementFailure(_) => "measurement_failure",
            Record::VerifyRejection(_) => "verify_rejection",
            Record::PpoUpdate(_) => "ppo_update",
            Record::CostModel(_) => "cost_model",
            Record::Span(_) => "span",
            Record::Event(_) => "event",
            Record::Counter(_) => "counter",
            Record::ProfileNode(_) => "profile_node",
            Record::Roofline(_) => "roofline",
            Record::RunSummary(_) => "run_summary",
            Record::Timing(_) => "timing",
        }
    }
}

impl Serialize for Record {
    fn to_value(&self) -> serde::Value {
        let inner = match self {
            Record::Measurement(r) => r.to_value(),
            Record::MeasurementFailure(r) => r.to_value(),
            Record::VerifyRejection(r) => r.to_value(),
            Record::PpoUpdate(r) => r.to_value(),
            Record::CostModel(r) => r.to_value(),
            Record::Span(r) => r.to_value(),
            Record::Event(r) => r.to_value(),
            Record::Counter(r) => r.to_value(),
            Record::ProfileNode(r) => r.to_value(),
            Record::Roofline(r) => r.to_value(),
            Record::RunSummary(r) => r.to_value(),
            Record::Timing(r) => r.to_value(),
        };
        let mut fields = vec![(
            "type".to_string(),
            serde::Value::Str(self.type_tag().to_string()),
        )];
        if let serde::Value::Object(obj) = inner {
            fields.extend(obj);
        }
        serde::Value::Object(fields.into())
    }
}

impl Deserialize for Record {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let tag = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| serde::Error("record has no `type` tag".to_string()))?;
        Ok(match tag {
            "measurement" => Record::Measurement(MeasurementRecord::from_value(v)?),
            "measurement_failure" => {
                Record::MeasurementFailure(MeasurementFailureRecord::from_value(v)?)
            }
            "verify_rejection" => Record::VerifyRejection(VerifyRejectionRecord::from_value(v)?),
            "ppo_update" => Record::PpoUpdate(PpoUpdateRecord::from_value(v)?),
            "cost_model" => Record::CostModel(CostModelRecord::from_value(v)?),
            "span" => Record::Span(SpanRecord::from_value(v)?),
            "event" => Record::Event(EventRecord::from_value(v)?),
            "counter" => Record::Counter(CounterRecord::from_value(v)?),
            "profile_node" => Record::ProfileNode(ProfileNodeRecord::from_value(v)?),
            "roofline" => Record::Roofline(RooflineRecord::from_value(v)?),
            "run_summary" => Record::RunSummary(RunSummaryRecord::from_value(v)?),
            "timing" => Record::Timing(TimingRecord::from_value(v)?),
            other => return Err(serde::Error(format!("unknown record type `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement() -> Record {
        Record::Measurement(MeasurementRecord {
            seq: 7,
            op: "conv2d#0".into(),
            stage: Stage::Joint,
            round: 2,
            candidate: "[1,0,3]".into(),
            predicted_cost: Some(1.25),
            latency_s: 3.5e-4,
            best_so_far_s: 3.0e-4,
            counters: SimCounters {
                instructions: 1e6,
                flops: 2e6,
                l1_loads: 5e5,
                l1_stores: 1e5,
                l1_misses: 1e4,
                l2_misses: 2e3,
                prefetch_issued: 3e4,
                prefetch_useful: 2.5e4,
                simd_utilization: 0.75,
            },
        })
    }

    #[test]
    fn records_roundtrip_through_jsonl() {
        let records = vec![
            sample_measurement(),
            Record::PpoUpdate(PpoUpdateRecord {
                op: "gmm#1".into(),
                episode: 1,
                transitions: 16,
                reward_mean: 1.1,
                policy_loss: -0.05,
                value_loss: 0.3,
                entropy: 0.9,
            }),
            Record::MeasurementFailure(MeasurementFailureRecord {
                seq: 8,
                op: "conv2d#0".into(),
                stage: Stage::Loop,
                round: 3,
                candidate: "[2,1]".into(),
                kind: "injected_compile".into(),
                error: "injected compile failure for candidate [2,1]".into(),
                attempt: 2,
                backoff_us: 2000,
            }),
            Record::VerifyRejection(VerifyRejectionRecord {
                op: "conv2d#0".into(),
                stage: Stage::Joint,
                round: 2,
                candidate: "[4,1]".into(),
                code: "V007_PAD_UNDERCOVERS".into(),
                detail: "load of `x` dim 2: index range [0, 9] escapes extent 8".into(),
            }),
            Record::CostModel(CostModelRecord {
                op: "conv2d#0".into(),
                stage: Stage::Loop,
                round: 4,
                measured: 8,
                spearman: 0.82,
                train_size: 64,
            }),
            Record::Span(SpanRecord {
                name: "joint_stage".into(),
                depth: 1,
                start_us: 10,
                dur_us: 1500,
            }),
            Record::Event(EventRecord {
                name: "layout_committed".into(),
                depth: 2,
                t_us: 900,
                fields: vec![("op".into(), "conv2d#0".into())],
            }),
            Record::Counter(CounterRecord {
                scope: "sim".into(),
                name: "l1_misses".into(),
                value: 12345.0,
            }),
            Record::ProfileNode(ProfileNodeRecord {
                op: "c2d#0".into(),
                path: "o.o@par/h/w/ri/o.i@vec".into(),
                store: "y".into(),
                latency_s: 1.5e-4,
                compute_s: 1.0e-4,
                l2_transfer_s: 2.0e-5,
                dram_transfer_s: 2.0e-5,
                l2_latency_s: 5.0e-6,
                dram_latency_s: 5.0e-6,
                overhead_s: 0.0,
                flops: 2e8,
                l1_misses: 1e4,
                l2_misses: 2e3,
                prefetch_hidden: 9e3,
                simd_utilization: 0.8,
                bank_conflict_s: 0.0,
            }),
            Record::Roofline(RooflineRecord {
                machine: "intel-xeon-avx512".into(),
                arithmetic_intensity: 14.2,
                attained_gflops: 812.0,
                peak_gflops: 4608.0,
                bandwidth_gbs: 120.0,
                ceiling_gflops: 1704.0,
                binding: "bandwidth".into(),
            }),
            Record::RunSummary(RunSummaryRecord {
                joint_budget: 300,
                loop_budget: 700,
                measurements: 1000,
                best_latency_s: 1e-3,
                wall_s: 42.0,
            }),
            Record::Timing(TimingRecord {
                phases: crate::timing::PhaseNode {
                    name: "run".into(),
                    count: 1,
                    inclusive_us: 120,
                    children: vec![crate::timing::PhaseNode {
                        name: "loop_stage".into(),
                        count: 3,
                        inclusive_us: 90,
                        children: vec![],
                    }],
                },
            }),
        ];
        for r in &records {
            let line = serde_json::to_string(r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(*r, back, "line {line}");
        }
    }

    #[test]
    fn type_tag_is_first_field() {
        let line = serde_json::to_string(&sample_measurement()).unwrap();
        assert!(line.starts_with(r#"{"type":"measurement""#), "{line}");
    }

    #[test]
    fn optional_predicted_cost_serializes_as_null() {
        let mut r = match sample_measurement() {
            Record::Measurement(m) => m,
            _ => unreachable!(),
        };
        r.predicted_cost = None;
        let line = serde_json::to_string(&Record::Measurement(r)).unwrap();
        assert!(line.contains(r#""predicted_cost":null"#), "{line}");
        let back: Record = serde_json::from_str(&line).unwrap();
        match back {
            Record::Measurement(m) => assert_eq!(m.predicted_cost, None),
            other => panic!("wrong variant {other:?}"),
        }
    }
}
