//! Chrome-trace (Perfetto) export of tuning traces.
//!
//! Converts a recorded [`Record`] stream into the Trace Event Format
//! consumed by `ui.perfetto.dev` and `chrome://tracing`: a JSON object
//! with a `traceEvents` array of `"X"` (complete) slices and `"i"`
//! (instant) marks.
//!
//! Two processes are emitted:
//!
//! * **pid 1 — tuning run**: real wall-clock spans and events on thread 1,
//!   plus one thread per tuned operator carrying its measurements laid out
//!   along *simulated* time (each trial's slice duration is its simulated
//!   latency; failures and PPO updates appear as instants at the op's
//!   simulated-time cursor).
//! * **pid 2 — simulated execution**: the per-op cost profile
//!   ([`crate::ProfileNodeRecord`]) as nested slices — one slice per
//!   lowered group, containing one slice per loop-nest leaf — with the
//!   roofline summary as an instant. Conservation of the breakdown makes
//!   the nesting exact: children never overflow their parent slice.
//!
//! Every event carries `name`, `ph` and `ts`; every `"X"` slice carries
//! `dur`. Timestamps are microseconds, as the format requires.

use serde::Value;
use serde_json::json;

use crate::record::Record;

const PID_TUNING: u64 = 1;
const PID_SIM: u64 = 2;
/// Tuning-run wall-clock thread.
const TID_WALL: u64 = 1;
/// Aggregated pipeline-timing phase tree (PR 8), flame-style.
const TID_TIMING: u64 = 2;
/// First per-operator measurement thread.
const TID_OPS: u64 = 10;

/// Builds the Chrome-trace JSON value for a record stream.
pub fn chrome_trace(records: &[Record]) -> Value {
    let mut events: Vec<Value> = Vec::new();

    events.push(meta_process(PID_TUNING, "tuning run"));
    events.push(meta_process(PID_SIM, "simulated execution"));
    events.push(meta_thread(PID_TUNING, TID_WALL, "wall clock"));

    // Per-op measurement threads: tids in first-seen order, slice start
    // cursors in simulated microseconds.
    let mut op_tid: Vec<(String, u64)> = Vec::new();
    let mut op_cursor: Vec<f64> = Vec::new();

    // Simulated-execution timeline (pid 2): `sim_cursor` is where the
    // next leaf slice starts; `group_end` is where the next *group*
    // slice starts. They differ when a group carries overhead beyond the
    // sum of its leaves — the next group must not overlap that slack.
    let mut sim_cursor = 0.0f64;
    let mut group_end = 0.0f64;

    for r in records {
        match r {
            Record::Span(s) => events.push(json!({
                "name": s.name.clone(),
                "cat": "tuning",
                "ph": "X",
                "ts": s.start_us as f64,
                "dur": s.dur_us as f64,
                "pid": PID_TUNING,
                "tid": TID_WALL,
                "args": json!({"depth": s.depth}),
            })),
            Record::Event(e) => {
                let mut args: Vec<(String, Value)> = Vec::new();
                for (k, v) in &e.fields {
                    args.push((k.clone(), Value::Str(v.clone())));
                }
                events.push(json!({
                    "name": e.name.clone(),
                    "cat": "tuning",
                    "ph": "i",
                    "ts": e.t_us as f64,
                    "s": "t",
                    "pid": PID_TUNING,
                    "tid": TID_WALL,
                    "args": Value::Object(args.into()),
                }));
            }
            Record::Measurement(m) => {
                let i = op_index(&m.op, &mut op_tid, &mut op_cursor, &mut events);
                let dur = m.latency_s * 1e6;
                events.push(json!({
                    "name": format!("trial {}", m.seq),
                    "cat": "measurement",
                    "ph": "X",
                    "ts": op_cursor[i],
                    "dur": dur,
                    "pid": PID_TUNING,
                    "tid": op_tid[i].1,
                    "args": json!({
                        "stage": format!("{:?}", m.stage),
                        "round": m.round,
                        "candidate": m.candidate.clone(),
                        "latency_s": m.latency_s,
                        "best_so_far_s": m.best_so_far_s,
                        "simd_utilization": m.counters.simd_utilization,
                    }),
                }));
                op_cursor[i] += dur;
            }
            Record::MeasurementFailure(f) => {
                let i = op_index(&f.op, &mut op_tid, &mut op_cursor, &mut events);
                events.push(json!({
                    "name": format!("fail {} ({})", f.seq, f.kind.clone()),
                    "cat": "failure",
                    "ph": "i",
                    "ts": op_cursor[i],
                    "s": "t",
                    "pid": PID_TUNING,
                    "tid": op_tid[i].1,
                    "args": json!({
                        "kind": f.kind.clone(),
                        "error": f.error.clone(),
                        "attempt": f.attempt,
                        "backoff_us": f.backoff_us,
                    }),
                }));
            }
            Record::VerifyRejection(v) => {
                let i = op_index(&v.op, &mut op_tid, &mut op_cursor, &mut events);
                events.push(json!({
                    "name": format!("verify reject ({})", v.code.clone()),
                    "cat": "verify",
                    "ph": "i",
                    "ts": op_cursor[i],
                    "s": "t",
                    "pid": PID_TUNING,
                    "tid": op_tid[i].1,
                    "args": json!({
                        "code": v.code.clone(),
                        "candidate": v.candidate.clone(),
                        "detail": v.detail.clone(),
                    }),
                }));
            }
            Record::PpoUpdate(u) => {
                let i = op_index(&u.op, &mut op_tid, &mut op_cursor, &mut events);
                events.push(json!({
                    "name": format!("ppo update {}", u.episode),
                    "cat": "ppo",
                    "ph": "i",
                    "ts": op_cursor[i],
                    "s": "t",
                    "pid": PID_TUNING,
                    "tid": op_tid[i].1,
                    "args": json!({
                        "reward_mean": u.reward_mean,
                        "policy_loss": u.policy_loss,
                        "entropy": u.entropy,
                    }),
                }));
            }
            Record::CostModel(c) => {
                let i = op_index(&c.op, &mut op_tid, &mut op_cursor, &mut events);
                events.push(json!({
                    "name": format!("cost model r{}", c.round),
                    "cat": "cost_model",
                    "ph": "i",
                    "ts": op_cursor[i],
                    "s": "t",
                    "pid": PID_TUNING,
                    "tid": op_tid[i].1,
                    "args": json!({"spearman": c.spearman, "train_size": c.train_size}),
                }));
            }
            Record::ProfileNode(n) => {
                let dur = n.latency_s * 1e6;
                if n.path.is_empty() {
                    // Group node: a new enclosing slice on the simulated
                    // timeline; leaves that follow nest inside it.
                    sim_cursor = group_end;
                    group_end += dur;
                    events.push(json!({
                        "name": n.op.clone(),
                        "cat": "profile",
                        "ph": "X",
                        "ts": sim_cursor,
                        "dur": dur,
                        "pid": PID_SIM,
                        "tid": TID_WALL,
                        "args": json!({
                            "latency_s": n.latency_s,
                            "overhead_s": n.overhead_s,
                            "compute_s": n.compute_s,
                            "l2_transfer_s": n.l2_transfer_s,
                            "dram_transfer_s": n.dram_transfer_s,
                            "l2_latency_s": n.l2_latency_s,
                            "dram_latency_s": n.dram_latency_s,
                        }),
                    }));
                } else {
                    // Leaf: nested inside the current group slice.
                    events.push(json!({
                        "name": n.path.clone(),
                        "cat": "profile",
                        "ph": "X",
                        "ts": sim_cursor,
                        "dur": dur,
                        "pid": PID_SIM,
                        "tid": TID_WALL,
                        "args": json!({
                            "op": n.op.clone(),
                            "store": n.store.clone(),
                            "latency_s": n.latency_s,
                            "compute_s": n.compute_s,
                            "l2_transfer_s": n.l2_transfer_s,
                            "dram_transfer_s": n.dram_transfer_s,
                            "l2_latency_s": n.l2_latency_s,
                            "dram_latency_s": n.dram_latency_s,
                            "flops": n.flops,
                            "l1_misses": n.l1_misses,
                            "l2_misses": n.l2_misses,
                            "prefetch_hidden": n.prefetch_hidden,
                            "simd_utilization": n.simd_utilization,
                            "bank_conflict_s": n.bank_conflict_s,
                        }),
                    }));
                    sim_cursor += dur;
                }
            }
            Record::Roofline(rl) => events.push(json!({
                "name": format!("roofline: {} bound", rl.binding.clone()),
                "cat": "profile",
                "ph": "i",
                "ts": sim_cursor,
                "s": "p",
                "pid": PID_SIM,
                "tid": TID_WALL,
                "args": json!({
                    "machine": rl.machine.clone(),
                    "arithmetic_intensity": rl.arithmetic_intensity,
                    "attained_gflops": rl.attained_gflops,
                    "peak_gflops": rl.peak_gflops,
                    "bandwidth_gbs": rl.bandwidth_gbs,
                    "ceiling_gflops": rl.ceiling_gflops,
                }),
            })),
            Record::Counter(c) => events.push(json!({
                "name": format!("{}/{}", c.scope.clone(), c.name.clone()),
                "cat": "counter",
                "ph": "C",
                "ts": 0.0,
                "pid": PID_TUNING,
                "tid": TID_WALL,
                "args": json!({"value": c.value}),
            })),
            Record::Timing(t) => {
                // Aggregated wall-clock phase tree, rendered flame-style:
                // children laid out sequentially from their parent's
                // start. Conservation (children sum <= parent) keeps the
                // nesting exact, like the simulated-execution profile.
                events.push(meta_thread(
                    PID_TUNING,
                    TID_TIMING,
                    "pipeline timing (wall)",
                ));
                push_phase_slices(&t.phases, 0.0, &mut events);
            }
            Record::RunSummary(s) => events.push(json!({
                "name": "run summary",
                "cat": "tuning",
                "ph": "i",
                "ts": s.wall_s * 1e6,
                "s": "g",
                "pid": PID_TUNING,
                "tid": TID_WALL,
                "args": json!({
                    "joint_budget": s.joint_budget,
                    "loop_budget": s.loop_budget,
                    "measurements": s.measurements,
                    "best_latency_s": s.best_latency_s,
                }),
            })),
        }
    }

    json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms",
    })
}

/// Renders [`chrome_trace`] to a file (pretty-printed JSON).
pub fn write_chrome_trace(path: &str, records: &[Record]) -> std::io::Result<()> {
    let v = chrome_trace(records);
    let text = serde_json::to_string_pretty(&v)
        .map_err(|e| std::io::Error::other(format!("serialize chrome trace: {e:?}")))?;
    std::fs::write(path, text)
}

/// Emits one `"X"` slice per phase-tree node on the pipeline-timing
/// thread, recursing with children packed from the parent's start.
fn push_phase_slices(node: &crate::timing::PhaseNode, ts: f64, events: &mut Vec<Value>) {
    events.push(json!({
        "name": node.name.clone(),
        "cat": "timing",
        "ph": "X",
        "ts": ts,
        "dur": node.inclusive_us as f64,
        "pid": PID_TUNING,
        "tid": TID_TIMING,
        "args": json!({
            "count": node.count,
            "exclusive_us": node.exclusive_us(),
        }),
    }));
    let mut cursor = ts;
    for c in &node.children {
        push_phase_slices(c, cursor, events);
        cursor += c.inclusive_us as f64;
    }
}

/// Index of `op`'s measurement thread, registering a new tid (and its
/// thread-name metadata event) on first sight.
fn op_index(
    op: &str,
    op_tid: &mut Vec<(String, u64)>,
    op_cursor: &mut Vec<f64>,
    events: &mut Vec<Value>,
) -> usize {
    if let Some(i) = op_tid.iter().position(|(o, _)| o == op) {
        return i;
    }
    let tid = TID_OPS + op_tid.len() as u64;
    events.push(meta_thread(PID_TUNING, tid, &format!("measure {op}")));
    op_tid.push((op.to_string(), tid));
    op_cursor.push(0.0);
    op_tid.len() - 1
}

fn meta_process(pid: u64, name: &str) -> Value {
    json!({
        "name": "process_name",
        "ph": "M",
        "ts": 0.0,
        "pid": pid,
        "tid": 0,
        "args": json!({"name": name}),
    })
}

fn meta_thread(pid: u64, tid: u64, name: &str) -> Value {
    json!({
        "name": "thread_name",
        "ph": "M",
        "ts": 0.0,
        "pid": pid,
        "tid": tid,
        "args": json!({"name": name}),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::*;

    fn measurement(seq: u64, op: &str, latency_s: f64) -> Record {
        Record::Measurement(MeasurementRecord {
            seq,
            op: op.into(),
            stage: Stage::Joint,
            round: 1,
            candidate: "[0]".into(),
            predicted_cost: None,
            latency_s,
            best_so_far_s: latency_s,
            counters: SimCounters::default(),
        })
    }

    fn profile_group(op: &str, latency_s: f64) -> Record {
        Record::ProfileNode(ProfileNodeRecord {
            op: op.into(),
            path: String::new(),
            store: String::new(),
            latency_s,
            compute_s: latency_s,
            l2_transfer_s: 0.0,
            dram_transfer_s: 0.0,
            l2_latency_s: 0.0,
            dram_latency_s: 0.0,
            overhead_s: 0.0,
            flops: 0.0,
            l1_misses: 0.0,
            l2_misses: 0.0,
            prefetch_hidden: 0.0,
            simd_utilization: 0.0,
            bank_conflict_s: 0.0,
        })
    }

    fn events(v: &Value) -> &[Value] {
        match v.get("traceEvents") {
            Some(Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        }
    }

    #[test]
    fn every_event_has_required_fields() {
        let records = vec![
            Record::Span(SpanRecord {
                name: "compile".into(),
                depth: 0,
                start_us: 0,
                dur_us: 100,
            }),
            measurement(1, "c2d#0", 1e-4),
            Record::MeasurementFailure(MeasurementFailureRecord {
                seq: 2,
                op: "c2d#0".into(),
                stage: Stage::Joint,
                round: 1,
                candidate: "[1]".into(),
                kind: "timeout".into(),
                error: "injected".into(),
                attempt: 1,
                backoff_us: 100,
            }),
            profile_group("c2d#0", 2e-4),
            Record::Roofline(RooflineRecord {
                machine: "intel".into(),
                arithmetic_intensity: 10.0,
                attained_gflops: 100.0,
                peak_gflops: 1000.0,
                bandwidth_gbs: 100.0,
                ceiling_gflops: 1000.0,
                binding: "compute".into(),
            }),
            Record::Timing(TimingRecord {
                phases: crate::timing::PhaseNode {
                    name: "run".into(),
                    count: 1,
                    inclusive_us: 100,
                    children: vec![crate::timing::PhaseNode {
                        name: "loop_stage".into(),
                        count: 2,
                        inclusive_us: 60,
                        children: vec![],
                    }],
                },
            }),
        ];
        let trace = chrome_trace(&records);
        let evs = events(&trace);
        assert!(evs.len() >= records.len());
        for e in evs {
            assert!(e.get("name").is_some(), "missing name: {e:?}");
            assert!(e.get("ph").is_some(), "missing ph: {e:?}");
            assert!(e.get("ts").is_some(), "missing ts: {e:?}");
            assert!(e.get("pid").is_some(), "missing pid: {e:?}");
            assert!(e.get("tid").is_some(), "missing tid: {e:?}");
            if e.get("ph").and_then(Value::as_str) == Some("X") {
                assert!(e.get("dur").is_some(), "X without dur: {e:?}");
            }
        }
    }

    #[test]
    fn measurements_lay_out_along_simulated_time_per_op() {
        let records = vec![
            measurement(1, "a", 1e-6),
            measurement(2, "b", 5e-6),
            measurement(3, "a", 2e-6),
        ];
        let trace = chrome_trace(&records);
        let slices: Vec<(&str, f64, f64)> = events(&trace)
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("measurement"))
            .map(|e| {
                (
                    e.get("name").and_then(Value::as_str).unwrap(),
                    e.get("ts").and_then(Value::as_f64).unwrap(),
                    e.get("dur").and_then(Value::as_f64).unwrap(),
                )
            })
            .collect();
        assert_eq!(slices.len(), 3);
        // Op `a`: trial 1 at 0, trial 3 starts where trial 1 ended.
        assert_eq!(slices[0].1, 0.0);
        assert_eq!(slices[2].1, slices[0].2);
        // Op `b` has its own timeline starting at 0.
        assert_eq!(slices[1].1, 0.0);
    }

    #[test]
    fn profile_leaves_nest_inside_group_slices() {
        let mut leaf = match profile_group("c2d#0", 1e-4) {
            Record::ProfileNode(n) => n,
            _ => unreachable!(),
        };
        leaf.path = "o@par/h/w".into();
        leaf.latency_s = 4e-5;
        let records = vec![profile_group("c2d#0", 1e-4), Record::ProfileNode(leaf)];
        let trace = chrome_trace(&records);
        let prof: Vec<&Value> = events(&trace)
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("profile"))
            .collect();
        assert_eq!(prof.len(), 2);
        let (gts, gdur) = (
            prof[0].get("ts").and_then(Value::as_f64).unwrap(),
            prof[0].get("dur").and_then(Value::as_f64).unwrap(),
        );
        let (lts, ldur) = (
            prof[1].get("ts").and_then(Value::as_f64).unwrap(),
            prof[1].get("dur").and_then(Value::as_f64).unwrap(),
        );
        assert!(lts >= gts && lts + ldur <= gts + gdur, "leaf escapes group");
    }

    #[test]
    fn timing_tree_renders_nested_wall_slices() {
        let rec = Record::Timing(TimingRecord {
            phases: crate::timing::PhaseNode {
                name: "run".into(),
                count: 1,
                inclusive_us: 100,
                children: vec![
                    crate::timing::PhaseNode {
                        name: "joint_stage".into(),
                        count: 1,
                        inclusive_us: 30,
                        children: vec![],
                    },
                    crate::timing::PhaseNode {
                        name: "loop_stage".into(),
                        count: 4,
                        inclusive_us: 50,
                        children: vec![crate::timing::PhaseNode {
                            name: "measure".into(),
                            count: 8,
                            inclusive_us: 20,
                            children: vec![],
                        }],
                    },
                ],
            },
        });
        let trace = chrome_trace(&[rec]);
        let slices: Vec<(&str, f64, f64)> = events(&trace)
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("timing"))
            .map(|e| {
                (
                    e.get("name").and_then(Value::as_str).unwrap(),
                    e.get("ts").and_then(Value::as_f64).unwrap(),
                    e.get("dur").and_then(Value::as_f64).unwrap(),
                )
            })
            .collect();
        assert_eq!(slices.len(), 4);
        let run = slices.iter().find(|s| s.0 == "run").unwrap();
        // Siblings pack sequentially; every child stays inside its
        // parent slice.
        let joint = slices.iter().find(|s| s.0 == "joint_stage").unwrap();
        let lp = slices.iter().find(|s| s.0 == "loop_stage").unwrap();
        let measure = slices.iter().find(|s| s.0 == "measure").unwrap();
        assert_eq!(joint.1, run.1);
        assert_eq!(lp.1, joint.1 + joint.2);
        assert_eq!(measure.1, lp.1);
        assert!(lp.1 + lp.2 <= run.1 + run.2);
        assert!(measure.1 + measure.2 <= lp.1 + lp.2);
    }

    #[test]
    fn trace_json_roundtrips() {
        let records = vec![measurement(1, "a", 1e-5), profile_group("a", 1e-5)];
        let text = serde_json::to_string(&chrome_trace(&records)).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert!(back.get("traceEvents").is_some());
    }
}
