//! Small statistics helpers used when producing trace records.

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j are tied; their mean 1-based rank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation between two equal-length samples.
///
/// Returns 0 for degenerate inputs (fewer than two points, or either
/// side constant), which reads as "no ranking signal".
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman inputs must pair up");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = ra.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        let dx = x - mean;
        let dy = y - mean;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [9.0, 7.0, 5.0, 3.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_mean_rank() {
        assert_eq!(ranks(&[3.0, 1.0, 3.0]), vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn tied_values_use_average_ranks() {
        // With a = [1, 2, 2, 3] the tied pair takes rank 2.5 on both
        // slots, giving rho = 4.5 / sqrt(4.5 * 5) = sqrt(0.9) against a
        // strictly increasing partner — not 1.0, which a naive
        // first-occurrence ranking would report.
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let want = 0.9f64.sqrt();
        assert!((spearman(&a, &b) - want).abs() < 1e-12);
        // Symmetric in its arguments.
        assert!((spearman(&b, &a) - want).abs() < 1e-12);
        // Ties on both sides at matching positions still correlate
        // perfectly.
        let c = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&a, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_read_as_zero() {
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
