//! Counter and histogram registries.
//!
//! A [`CounterRegistry`] aggregates named scalar counters (summed) and
//! histograms (distribution summaries) across an arbitrary number of
//! contributing sites — e.g. simulator cache statistics accumulated over
//! every program measured inside a tuning run — and flushes them to a
//! sink as [`CounterRecord`]s.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::record::{CounterRecord, Record};
use crate::sink::Telemetry;

/// Summary statistics of an observed distribution.
///
/// Percentiles use the nearest-rank method over retained samples; see
/// [`CounterRegistry::observe`] for the retention cap.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// `true` when the histogram overflowed the retention cap: `count`,
    /// `sum`, `min`, `max`, and `mean` remain exact, but the percentiles
    /// were computed over only the first `SAMPLE_CAP` observations and
    /// are approximations.
    pub sampled: bool,
}

impl HistogramSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Retained-sample cap per histogram: percentiles are exact up to this
/// many observations and computed over the first `SAMPLE_CAP` afterwards
/// (bounded memory beats reservoir noise for deterministic tuning runs).
const SAMPLE_CAP: usize = 65536;

#[derive(Default)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Hist {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(v);
        }
    }

    fn summary(&self) -> HistogramSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            // Nearest-rank: the smallest value with at least q of the
            // mass at or below it.
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            sampled: self.count as usize > self.samples.len(),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Hist>,
}

/// Thread-safe registry of named counters and histograms under one scope.
pub struct CounterRegistry {
    scope: String,
    inner: Mutex<Registry>,
}

impl CounterRegistry {
    /// Creates an empty registry; `scope` prefixes flushed record names.
    pub fn new(scope: impl Into<String>) -> Self {
        Self {
            scope: scope.into(),
            inner: Mutex::new(Registry::default()),
        }
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter, or 0 if never touched.
    pub fn get(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Snapshot of a histogram's summary (including p50/p95/p99
    /// percentiles), if it has observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .histograms
            .get(name)
            .map(Hist::summary)
    }

    /// Emits every counter (and histogram
    /// count/sum/min/max/mean/p50/p95/p99) as [`CounterRecord`]s, then
    /// clears the registry. A histogram that overflowed the retention
    /// cap additionally emits a `{name}.sampled = 1` marker so readers
    /// know its percentiles are approximate.
    pub fn flush_to(&self, telemetry: &Telemetry) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (name, value) in &inner.counters {
            telemetry.emit(Record::Counter(CounterRecord {
                scope: self.scope.clone(),
                name: name.clone(),
                value: *value,
            }));
        }
        for (name, h) in &inner.histograms {
            let s = h.summary();
            for (suffix, value) in [
                ("count", s.count as f64),
                ("sum", s.sum),
                ("min", s.min),
                ("max", s.max),
                ("mean", s.mean()),
                ("p50", s.p50),
                ("p95", s.p95),
                ("p99", s.p99),
            ] {
                telemetry.emit(Record::Counter(CounterRecord {
                    scope: self.scope.clone(),
                    name: format!("{name}.{suffix}"),
                    value,
                }));
            }
            if s.sampled {
                telemetry.emit(Record::Counter(CounterRecord {
                    scope: self.scope.clone(),
                    name: format!("{name}.sampled"),
                    value: 1.0,
                }));
            }
        }
        inner.counters.clear();
        inner.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_adds() {
        let reg = CounterRegistry::new("sim");
        reg.add("l1_misses", 10.0);
        reg.add("l1_misses", 5.0);
        reg.add("l2_misses", 1.0);
        assert_eq!(reg.get("l1_misses"), 15.0);
        assert_eq!(
            reg.snapshot(),
            vec![
                ("l1_misses".to_string(), 15.0),
                ("l2_misses".to_string(), 1.0)
            ]
        );
    }

    #[test]
    fn histograms_track_min_max_mean() {
        let reg = CounterRegistry::new("sim");
        for v in [2.0, 6.0, 4.0] {
            reg.observe("latency_us", v);
        }
        let h = reg.histogram("latency_us").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.p50, 4.0);
        assert_eq!(h.p99, 6.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let reg = CounterRegistry::new("sim");
        for v in 1..=100 {
            reg.observe("lat", v as f64);
        }
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        // A single observation is every percentile.
        let reg1 = CounterRegistry::new("sim");
        reg1.observe("one", 42.0);
        let h1 = reg1.histogram("one").unwrap();
        assert_eq!((h1.p50, h1.p95, h1.p99), (42.0, 42.0, 42.0));
    }

    #[test]
    fn overflowing_the_sample_cap_sets_the_sampled_flag() {
        let reg = CounterRegistry::new("sim");
        for v in 0..(SAMPLE_CAP + 10) {
            reg.observe("lat", v as f64);
        }
        let h = reg.histogram("lat").unwrap();
        assert!(h.sampled, "percentiles cover only the first SAMPLE_CAP");
        // Exact moments stay exact past the cap...
        assert_eq!(h.count, (SAMPLE_CAP + 10) as u64);
        assert_eq!(h.max, (SAMPLE_CAP + 9) as f64);
        // ...while percentiles reflect only retained samples.
        assert_eq!(h.p99, (0.99 * SAMPLE_CAP as f64).ceil() - 1.0);
        // A truncated histogram flushes an extra `.sampled` marker.
        let (t, sink) = Telemetry::memory();
        reg.flush_to(&t);
        assert_eq!(sink.len(), 9);
        let names: Vec<String> = sink
            .records()
            .iter()
            .map(|r| match r {
                Record::Counter(c) => c.name.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(names.contains(&"lat.sampled".to_string()));
    }

    #[test]
    fn small_histograms_are_exact_and_unflagged() {
        let reg = CounterRegistry::new("sim");
        reg.observe("lat", 1.0);
        assert!(!reg.histogram("lat").unwrap().sampled);
        let (t, sink) = Telemetry::memory();
        reg.flush_to(&t);
        // No `.sampled` marker when percentiles are exact.
        assert_eq!(sink.len(), 8);
    }

    #[test]
    fn flush_emits_and_clears() {
        let reg = CounterRegistry::new("sim");
        reg.add("hits", 7.0);
        reg.observe("util", 0.5);
        let (t, sink) = Telemetry::memory();
        reg.flush_to(&t);
        // 1 counter + 8 histogram stats.
        assert_eq!(sink.len(), 9);
        assert_eq!(reg.get("hits"), 0.0);
        let records = sink.records();
        match &records[0] {
            Record::Counter(c) => {
                assert_eq!(c.scope, "sim");
                assert_eq!(c.name, "hits");
                assert_eq!(c.value, 7.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let reg = std::sync::Arc::new(CounterRegistry::new("x"));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.add("n", 1.0);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(reg.get("n"), 8000.0);
    }
}
