//! Counter and histogram registries.
//!
//! A [`CounterRegistry`] aggregates named scalar counters (summed) and
//! histograms (distribution summaries) across an arbitrary number of
//! contributing sites — e.g. simulator cache statistics accumulated over
//! every program measured inside a tuning run — and flushes them to a
//! sink as [`CounterRecord`]s.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::record::{CounterRecord, Record};
use crate::sink::Telemetry;

/// Summary statistics of an observed distribution.
///
/// Percentiles use the nearest-rank method over retained samples; see
/// [`CounterRegistry::observe`] for the retention cap.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// `true` when the histogram overflowed the retention cap: `count`,
    /// `sum`, `min`, `max`, and `mean` remain exact, but the percentiles
    /// were computed over a uniform `SAMPLE_CAP`-sized reservoir of the
    /// observations and are approximations.
    pub sampled: bool,
}

impl HistogramSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Retained-sample cap per histogram: percentiles are exact up to this
/// many observations. Past the cap, retention switches to reservoir
/// sampling (Algorithm R) so every observation — early or late — has the
/// same `SAMPLE_CAP / count` chance of being retained; first-N retention
/// would skew a long run's percentiles toward its warm-up.
const SAMPLE_CAP: usize = 65536;

/// FNV-1a of the histogram name: the reservoir's deterministic seed, so
/// identically-fed registries summarize identically.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Lemire's multiply-shift reduction of a uniform `u64` draw onto
/// `[0, n)`: the high 64 bits of `x * n`. Unlike `x % n` it weights every
/// index within one part in `2^64 / n` of uniform instead of favoring
/// indices below `2^64 mod n`.
fn lemire(x: u64, n: u64) -> u64 {
    ((u128::from(x) * u128::from(n)) >> 64) as u64
}

struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    /// xorshift64* state driving reservoir replacement; seeded from the
    /// histogram name, so summaries are a pure function of the
    /// observation sequence.
    rng: u64,
}

impl Hist {
    fn new(name: &str) -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            samples: Vec::new(),
            // xorshift64* requires a nonzero state.
            rng: fnv1a(name).max(1),
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(v);
        } else {
            // Algorithm R: keep the new observation with probability
            // SAMPLE_CAP / count, evicting a uniformly random slot. The
            // draw uses Lemire's multiply-shift reduction — `x % count`
            // would favor small indices whenever `count` does not divide
            // 2^64, biasing eviction toward early slots. One RNG draw
            // per observation either way, so summaries stay a pure
            // function of the observation sequence.
            let j = lemire(self.next_rand(), self.count) as usize;
            if j < SAMPLE_CAP {
                self.samples[j] = v;
            }
        }
    }

    fn summary(&self) -> HistogramSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            // Nearest-rank: the smallest value with at least q of the
            // mass at or below it.
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            sampled: self.count as usize > self.samples.len(),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Hist>,
}

/// Thread-safe registry of named counters and histograms under one scope.
pub struct CounterRegistry {
    scope: String,
    inner: Mutex<Registry>,
}

impl CounterRegistry {
    /// Creates an empty registry; `scope` prefixes flushed record names.
    pub fn new(scope: impl Into<String>) -> Self {
        Self {
            scope: scope.into(),
            inner: Mutex::new(Registry::default()),
        }
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Hist::new(name))
            .observe(value);
    }

    /// Current value of a counter, or 0 if never touched.
    pub fn get(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Summaries of every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect()
    }

    /// Snapshot of a histogram's summary (including p50/p95/p99
    /// percentiles), if it has observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .histograms
            .get(name)
            .map(Hist::summary)
    }

    /// Emits every counter (and histogram
    /// count/sum/min/max/mean/p50/p95/p99) as [`CounterRecord`]s, then
    /// clears the registry. A histogram that overflowed the retention
    /// cap additionally emits a `{name}.sampled = 1` marker so readers
    /// know its percentiles are approximate.
    pub fn flush_to(&self, telemetry: &Telemetry) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (name, value) in &inner.counters {
            telemetry.emit(Record::Counter(CounterRecord {
                scope: self.scope.clone(),
                name: name.clone(),
                value: *value,
            }));
        }
        for (name, h) in &inner.histograms {
            let s = h.summary();
            for (suffix, value) in [
                ("count", s.count as f64),
                ("sum", s.sum),
                ("min", s.min),
                ("max", s.max),
                ("mean", s.mean()),
                ("p50", s.p50),
                ("p95", s.p95),
                ("p99", s.p99),
            ] {
                telemetry.emit(Record::Counter(CounterRecord {
                    scope: self.scope.clone(),
                    name: format!("{name}.{suffix}"),
                    value,
                }));
            }
            if s.sampled {
                telemetry.emit(Record::Counter(CounterRecord {
                    scope: self.scope.clone(),
                    name: format!("{name}.sampled"),
                    value: 1.0,
                }));
            }
        }
        inner.counters.clear();
        inner.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_adds() {
        let reg = CounterRegistry::new("sim");
        reg.add("l1_misses", 10.0);
        reg.add("l1_misses", 5.0);
        reg.add("l2_misses", 1.0);
        assert_eq!(reg.get("l1_misses"), 15.0);
        assert_eq!(
            reg.snapshot(),
            vec![
                ("l1_misses".to_string(), 15.0),
                ("l2_misses".to_string(), 1.0)
            ]
        );
    }

    #[test]
    fn histograms_track_min_max_mean() {
        let reg = CounterRegistry::new("sim");
        for v in [2.0, 6.0, 4.0] {
            reg.observe("latency_us", v);
        }
        let h = reg.histogram("latency_us").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.p50, 4.0);
        assert_eq!(h.p99, 6.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let reg = CounterRegistry::new("sim");
        for v in 1..=100 {
            reg.observe("lat", v as f64);
        }
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        // A single observation is every percentile.
        let reg1 = CounterRegistry::new("sim");
        reg1.observe("one", 42.0);
        let h1 = reg1.histogram("one").unwrap();
        assert_eq!((h1.p50, h1.p95, h1.p99), (42.0, 42.0, 42.0));
    }

    #[test]
    fn overflowing_the_sample_cap_sets_the_sampled_flag() {
        let reg = CounterRegistry::new("sim");
        let n = 2 * SAMPLE_CAP;
        for v in 0..n {
            reg.observe("lat", v as f64);
        }
        let h = reg.histogram("lat").unwrap();
        assert!(h.sampled, "percentiles are over a reservoir, not exact");
        // Exact moments stay exact past the cap...
        assert_eq!(h.count, n as u64);
        assert_eq!(h.max, (n - 1) as f64);
        // ...and the reservoir retains late observations too: first-N
        // retention would pin p99 below SAMPLE_CAP, uniform sampling of
        // a 0..2*CAP ramp puts it near the top.
        assert!(
            h.p99 > SAMPLE_CAP as f64,
            "p99 {} stuck in the first-N prefix",
            h.p99
        );
        assert!(
            h.p50 > 0.35 * n as f64 && h.p50 < 0.65 * n as f64,
            "{}",
            h.p50
        );
        // A truncated histogram flushes an extra `.sampled` marker.
        let (t, sink) = Telemetry::memory();
        reg.flush_to(&t);
        assert_eq!(sink.len(), 9);
        let names: Vec<String> = sink
            .records()
            .iter()
            .map(|r| match r {
                Record::Counter(c) => c.name.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(names.contains(&"lat.sampled".to_string()));
    }

    #[test]
    fn lemire_reduction_is_in_range_and_unbiased_across_buckets() {
        // Boundary behavior: the reduction never reaches n and maps the
        // extremes of the u64 range to the extremes of [0, n).
        for n in [1u64, 2, 3, 65536, 65537, (1 << 33) - 1] {
            assert_eq!(lemire(0, n), 0);
            assert_eq!(lemire(u64::MAX, n), n - 1);
            assert!(lemire(0x9E3779B97F4A7C15, n) < n);
        }
        // Evenly spaced draws land evenly in every bucket — `x % n`
        // instead would map this entire sweep onto a sliver of small
        // indices for n close to (but not dividing) a power of two.
        let n = (1u64 << 33) - 11;
        let mut counts = [0u32; 8];
        let draws = 1u64 << 14;
        for k in 0..draws {
            // Stride the full u64 range.
            let x = k.wrapping_mul(u64::MAX / draws);
            let j = lemire(x, n);
            assert!(j < n);
            counts[(j * 8 / n) as usize] += 1;
        }
        let per_bucket = (draws / 8) as u32;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c.abs_diff(per_bucket) <= per_bucket / 8,
                "bucket {b}: {c} of {draws} draws (expected ~{per_bucket})"
            );
        }
    }

    #[test]
    fn reservoir_sampling_is_deterministic_given_the_sequence() {
        let mk = || {
            let reg = CounterRegistry::new("sim");
            for v in 0..(SAMPLE_CAP + 5000) {
                reg.observe("lat", ((v * 31) % 1013) as f64);
            }
            reg.histogram("lat").unwrap()
        };
        // Same name, same observation order => identical summary bits.
        assert_eq!(mk(), mk());
    }

    #[test]
    fn small_histograms_are_exact_and_unflagged() {
        let reg = CounterRegistry::new("sim");
        reg.observe("lat", 1.0);
        assert!(!reg.histogram("lat").unwrap().sampled);
        let (t, sink) = Telemetry::memory();
        reg.flush_to(&t);
        // No `.sampled` marker when percentiles are exact.
        assert_eq!(sink.len(), 8);
    }

    #[test]
    fn flush_emits_and_clears() {
        let reg = CounterRegistry::new("sim");
        reg.add("hits", 7.0);
        reg.observe("util", 0.5);
        let (t, sink) = Telemetry::memory();
        reg.flush_to(&t);
        // 1 counter + 8 histogram stats.
        assert_eq!(sink.len(), 9);
        assert_eq!(reg.get("hits"), 0.0);
        let records = sink.records();
        match &records[0] {
            Record::Counter(c) => {
                assert_eq!(c.scope, "sim");
                assert_eq!(c.name, "hits");
                assert_eq!(c.value, 7.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let reg = std::sync::Arc::new(CounterRegistry::new("x"));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.add("n", 1.0);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(reg.get("n"), 8000.0);
    }
}
