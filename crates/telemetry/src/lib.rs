//! Structured observability for ALT tuning runs.
//!
//! This crate is the telemetry layer the rest of the workspace emits
//! into. It deliberately depends on nothing but the (vendored) serde
//! pair, so any crate — simulator, tuner, compiler driver — can adopt it
//! without cycles.
//!
//! The pieces:
//!
//! * [`Telemetry`] — a cheap clonable handle; disabled by default
//!   (`Telemetry::noop()`), or backed by a [`MemorySink`] /
//!   [`JsonlSink`] shared across threads.
//! * [`Record`] — the typed trace schema: one record per measurement
//!   ([`MeasurementRecord`]), PPO policy updates, cost-model ranking
//!   accuracy, spans/events, counters, and a run summary.
//! * [`Span`] — RAII timed regions with per-thread nesting depth and
//!   monotonic microsecond timestamps.
//! * [`CounterRegistry`] — named counter/histogram aggregation (e.g.
//!   simulator cache statistics summed over a whole tuning run), flushed
//!   to a sink as [`CounterRecord`]s.
//! * [`report`] — reads a JSONL trace back and renders the plain-text
//!   report behind `altc report`.
//! * [`Timing`] — the pipeline's wall-clock self-profile (PR 8): an
//!   injectable-clock phase tree plus latency histograms, written to its
//!   own sink so the deterministic trace/journal streams never change.

pub mod counters;
pub mod perfetto;
pub mod record;
pub mod report;
pub mod sink;
pub mod span;
pub mod stats;
pub mod timing;

pub use counters::{CounterRegistry, HistogramSummary};
pub use perfetto::{chrome_trace, write_chrome_trace};
pub use record::{
    CostModelRecord, CounterRecord, EventRecord, MeasurementFailureRecord, MeasurementRecord,
    PpoUpdateRecord, ProfileNodeRecord, Record, RooflineRecord, RunSummaryRecord, SimCounters,
    SpanRecord, Stage, TimingRecord, VerifyRejectionRecord,
};
pub use report::{fmt_latency, read_jsonl, render_report};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink, Telemetry};
pub use span::{current_depth, now_us, Span};
pub use stats::spearman;
pub use timing::{Clock, ManualClock, MonotonicClock, PhaseGuard, PhaseNode, Timing};
