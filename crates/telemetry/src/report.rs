//! Trace-file inspection: the library behind `altc report`.
//!
//! Reads a JSONL trace back into [`Record`]s and renders a plain-text
//! report: the best-so-far latency curve per op (the data behind the
//! paper's Fig. 11 curves), budget spent per stage, fault-tolerance
//! activity (failed measurements by kind, retries, quarantined
//! candidates), cost-model ranking accuracy per round, and the top
//! simulator counters.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::record::{Record, Stage};

/// Reads a JSONL trace file into records.
///
/// A line that fails to parse aborts with `InvalidData` naming the line,
/// so schema drift is caught loudly rather than silently skipped.
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<Record>> {
    let file = std::fs::File::open(path)?;
    let mut records = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("trace line {}: {}", idx + 1, e.0),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Formats seconds with an adaptive unit.
pub fn fmt_latency(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "inf".to_string();
    }
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Renders the full plain-text report for a trace.
pub fn render_report(records: &[Record]) -> String {
    let mut out = String::new();
    render_summary(records, &mut out);
    render_latency_curves(records, &mut out);
    render_budget(records, &mut out);
    render_attempts(records, &mut out);
    render_cache(records, &mut out);
    render_store(records, &mut out);
    render_faults(records, &mut out);
    render_cost_model(records, &mut out);
    render_timing(records, &mut out);
    render_counters(records, &mut out);
    out
}

/// Wall-clock self-profiling: the phase tree recorded by the timing
/// layer (inclusive/exclusive micros and call counts per phase) plus
/// the `wall` scope latency histograms (store append/fsync, memoized
/// vs cold simulation, per-candidate lower/verify). Silent for traces
/// recorded without timing enabled.
fn render_timing(records: &[Record], out: &mut String) {
    let tree = records.iter().find_map(|r| match r {
        Record::Timing(t) => Some(&t.phases),
        _ => None,
    });
    let wall: Vec<(String, f64)> = records
        .iter()
        .filter_map(|r| match r {
            Record::Counter(c) if c.scope == "wall" => Some((c.name.clone(), c.value)),
            _ => None,
        })
        .collect();
    if tree.is_none() && wall.is_empty() {
        return;
    }
    out.push_str("--- pipeline timing (wall clock) ---\n");
    if let Some(root) = tree {
        push_phase_lines(root, 0, root.inclusive_us, out);
    }
    let (families, plain) = fold_histogram_families(wall);
    if !families.is_empty() {
        out.push_str("latency histograms (p50/p95/p99 nearest-rank):\n");
        for (base, stats) in &families {
            let g = |k: &str| stats.get(k).copied().unwrap_or(0.0);
            let us = |k: &str| fmt_latency(g(k) * 1e-6);
            let note = if g("sampled") != 0.0 {
                " (percentiles sampled)"
            } else {
                ""
            };
            out.push_str(&format!(
                "    {base}: n={:.0} p50={} p95={} p99={} max={}{note}\n",
                g("count"),
                us("p50"),
                us("p95"),
                us("p99"),
                us("max"),
            ));
        }
    }
    for (name, value) in &plain {
        out.push_str(&format!("    {name} = {value:.3e}\n"));
    }
    out.push('\n');
}

/// One indented line per phase: inclusive time, call count, share of
/// the run, and exclusive (self) time not attributed to any child.
fn push_phase_lines(
    node: &crate::timing::PhaseNode,
    indent: usize,
    total_us: u64,
    out: &mut String,
) {
    let pct = if total_us > 0 {
        node.inclusive_us as f64 / total_us as f64 * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "{:indent$}{}: {} x{} ({pct:.1}%), self {}\n",
        "",
        node.name,
        fmt_latency(node.inclusive_us as f64 * 1e-6),
        node.count,
        fmt_latency(node.exclusive_us() as f64 * 1e-6),
        indent = indent * 4
    ));
    for child in &node.children {
        push_phase_lines(child, indent + 1, total_us, out);
    }
}

fn render_summary(records: &[Record], out: &mut String) {
    out.push_str("=== tuning run report ===\n");
    for r in records {
        if let Record::RunSummary(s) = r {
            out.push_str(&format!(
                "budget: joint {} + loop {} = {} units; consumed {}\n",
                s.joint_budget,
                s.loop_budget,
                s.joint_budget + s.loop_budget,
                s.measurements
            ));
            out.push_str(&format!(
                "best end-to-end latency: {}; compile wall time {:.2} s\n",
                fmt_latency(s.best_latency_s),
                s.wall_s
            ));
        }
    }
    out.push('\n');
}

/// Best-so-far latency at ~8 evenly spaced checkpoints per op.
fn render_latency_curves(records: &[Record], out: &mut String) {
    // op -> Vec<(seq, best_so_far)>, in trace order.
    let mut curves: BTreeMap<&str, Vec<(u64, f64)>> = BTreeMap::new();
    for r in records {
        if let Record::Measurement(m) = r {
            curves
                .entry(&m.op)
                .or_default()
                .push((m.seq, m.best_so_far_s));
        }
    }
    if curves.is_empty() {
        out.push_str("no measurement records in trace\n\n");
        return;
    }
    out.push_str("--- best-latency curve per op (seq -> best so far) ---\n");
    for (op, points) in &curves {
        let n = points.len();
        let checkpoints: Vec<(u64, f64)> = if n <= 8 {
            points.clone()
        } else {
            (0..8).map(|i| points[(i * (n - 1)) / 7]).collect()
        };
        let first = points.first().map(|p| p.1).unwrap_or(f64::INFINITY);
        let last = points.last().map(|p| p.1).unwrap_or(f64::INFINITY);
        let speedup = if last > 0.0 { first / last } else { 1.0 };
        out.push_str(&format!(
            "{op}: {} measurements, {} -> {} ({speedup:.2}x)\n",
            n,
            fmt_latency(first),
            fmt_latency(last)
        ));
        let curve: Vec<String> = checkpoints
            .iter()
            .map(|(seq, best)| format!("@{seq} {}", fmt_latency(*best)))
            .collect();
        out.push_str(&format!("    {}\n", curve.join("  ")));
    }
    out.push('\n');
}

fn render_budget(records: &[Record], out: &mut String) {
    let mut per_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut per_op_stage: BTreeMap<(&str, &'static str), u64> = BTreeMap::new();
    for r in records {
        if let Record::Measurement(m) = r {
            let stage = match m.stage {
                Stage::Joint => "joint",
                Stage::Loop => "loop",
            };
            *per_stage.entry(stage).or_insert(0) += 1;
            *per_op_stage.entry((&m.op, stage)).or_insert(0) += 1;
        }
    }
    if per_stage.is_empty() {
        return;
    }
    out.push_str("--- budget spent per stage ---\n");
    for (stage, n) in &per_stage {
        out.push_str(&format!("{stage}: {n} measurements\n"));
    }
    for ((op, stage), n) in &per_op_stage {
        out.push_str(&format!("    {op} [{stage}]: {n}\n"));
    }
    out.push('\n');
}

/// Attempts vs successes per op: every budgeted attempt (successful
/// measurements plus failed ones) and the zero-budget static-verifier
/// rejections, so an op whose candidates keep failing or getting
/// rejected is visible at a glance.
fn render_attempts(records: &[Record], out: &mut String) {
    // op -> (successes, failures, verify rejections)
    let mut per_op: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for r in records {
        match r {
            Record::Measurement(m) => per_op.entry(&m.op).or_default().0 += 1,
            Record::MeasurementFailure(f) => per_op.entry(&f.op).or_default().1 += 1,
            Record::VerifyRejection(v) => per_op.entry(&v.op).or_default().2 += 1,
            _ => {}
        }
    }
    if per_op.is_empty() {
        return;
    }
    out.push_str("--- attempts vs successes per op ---\n");
    for (op, (ok, failed, rejected)) in &per_op {
        let attempts = ok + failed;
        let rate = if attempts > 0 {
            *ok as f64 / attempts as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{op}: {attempts} attempts -> {ok} successes ({rate:.1}%), \
             {failed} failed, {rejected} verify-rejected\n"
        ));
    }
    out.push('\n');
}

/// Measurement-cache effectiveness: the memoized-simulation hit/miss
/// counters flushed by the measurer. A hit means a budgeted measurement
/// repeated an earlier one and skipped re-simulation (it still consumed
/// a budget unit and emitted a measurement record). Silent for traces
/// that predate the cache.
fn render_cache(records: &[Record], out: &mut String) {
    let mut hits = None;
    let mut misses = None;
    for r in records {
        if let Record::Counter(c) = r {
            if c.scope == "sim" {
                match c.name.as_str() {
                    "cache.hits" => hits = Some(c.value),
                    "cache.misses" => misses = Some(c.value),
                    _ => {}
                }
            }
        }
    }
    if hits.is_none() && misses.is_none() {
        return;
    }
    // A run with zero hits (or zero misses) never creates that counter.
    let hits = hits.unwrap_or(0.0);
    let misses = misses.unwrap_or(0.0);
    let total = hits + misses;
    let rate = if total > 0.0 {
        hits / total * 100.0
    } else {
        0.0
    };
    out.push_str("--- measurement cache ---\n");
    out.push_str(&format!(
        "{total:.0} simulation lookups: {hits:.0} hits, {misses:.0} misses (hit rate {rate:.1}%)\n"
    ));
    out.push('\n');
}

/// Durable-store effectiveness: hits served from the on-disk tuning
/// store without simulating, and misses that simulated then published.
/// Silent for runs without a store attached (the counters only exist
/// when one is).
fn render_store(records: &[Record], out: &mut String) {
    let mut hits = None;
    let mut misses = None;
    for r in records {
        if let Record::Counter(c) = r {
            if c.scope == "sim" {
                match c.name.as_str() {
                    "store.hits" => hits = Some(c.value),
                    "store.misses" => misses = Some(c.value),
                    _ => {}
                }
            }
        }
    }
    if hits.is_none() && misses.is_none() {
        return;
    }
    let hits = hits.unwrap_or(0.0);
    let misses = misses.unwrap_or(0.0);
    let total = hits + misses;
    let rate = if total > 0.0 {
        hits / total * 100.0
    } else {
        0.0
    };
    out.push_str("--- durable tuning store ---\n");
    out.push_str(&format!(
        "{total:.0} store lookups: {hits:.0} served from store, {misses:.0} simulated \
         and published (hit rate {rate:.1}%)\n"
    ));
    out.push('\n');
}

/// Fault-tolerance activity: failed measurements broken down by error
/// kind, plus the tuner's retry/quarantine counters. Silent when the run
/// was fault-free.
fn render_faults(records: &[Record], out: &mut String) {
    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    let mut max_attempt = 0u64;
    for r in records {
        if let Record::MeasurementFailure(f) = r {
            *by_kind.entry(&f.kind).or_insert(0) += 1;
            max_attempt = max_attempt.max(f.attempt);
        }
    }
    let tuner_counters: Vec<(&str, f64)> = records
        .iter()
        .filter_map(|r| match r {
            Record::Counter(c) if c.scope == "tuner" => Some((c.name.as_str(), c.value)),
            _ => None,
        })
        .collect();
    if by_kind.is_empty() && tuner_counters.is_empty() {
        return;
    }
    let failed: u64 = by_kind.values().sum();
    out.push_str(
        "--- fault tolerance ---
",
    );
    out.push_str(&format!(
        "failed measurements: {failed} (each consumed one budget unit)
"
    ));
    for (kind, n) in &by_kind {
        out.push_str(&format!(
            "    {kind}: {n}
"
        ));
    }
    if max_attempt > 1 {
        out.push_str(&format!(
            "deepest retry chain: {max_attempt} attempts
"
        ));
    }
    for (name, value) in &tuner_counters {
        out.push_str(&format!(
            "{name}: {value:.0}
"
        ));
    }
    out.push('\n');
}

fn render_cost_model(records: &[Record], out: &mut String) {
    // round -> (sum of spearman, count)
    let mut per_round: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for r in records {
        if let Record::CostModel(c) = r {
            let e = per_round.entry(c.round).or_insert((0.0, 0));
            e.0 += c.spearman;
            e.1 += 1;
        }
    }
    if per_round.is_empty() {
        return;
    }
    out.push_str("--- cost-model top-k rank correlation per round ---\n");
    for (round, (sum, n)) in &per_round {
        out.push_str(&format!(
            "round {round}: mean spearman {:+.3} over {n} op-round(s)\n",
            sum / *n as f64
        ));
    }
    out.push('\n');
}

/// Histogram families flushed by `CounterRegistry` arrive as eight
/// suffixed counters per histogram (nine when the retention cap
/// truncated percentile samples); fold each family back into one
/// entry with its percentiles instead of eight noisy counters. Names
/// that lack the histogram shape (e.g. a plain counter someone named
/// `x.max`) fall back to the plain list.
#[allow(clippy::type_complexity)]
fn fold_histogram_families(
    flushed: Vec<(String, f64)>,
) -> (
    BTreeMap<String, BTreeMap<&'static str, f64>>,
    Vec<(String, f64)>,
) {
    let mut families: BTreeMap<String, BTreeMap<&'static str, f64>> = BTreeMap::new();
    let mut plain: Vec<(String, f64)> = Vec::new();
    const SUFFIXES: [&str; 9] = [
        "count", "sum", "min", "max", "mean", "p50", "p95", "p99", "sampled",
    ];
    for (name, value) in flushed {
        match name.rsplit_once('.').and_then(|(base, suffix)| {
            SUFFIXES
                .iter()
                .find(|s| **s == suffix)
                .map(|s| (base.to_string(), *s))
        }) {
            Some((base, suffix)) => {
                families.entry(base).or_default().insert(suffix, value);
            }
            None => plain.push((name, value)),
        }
    }
    families.retain(|base, stats| {
        if stats.contains_key("count") && stats.contains_key("p50") {
            true
        } else {
            for (suffix, value) in stats.iter() {
                plain.push((format!("{base}.{suffix}"), *value));
            }
            false
        }
    });
    (families, plain)
}

fn render_counters(records: &[Record], out: &mut String) {
    // Aggregate simulator counters over every measured program.
    let mut total = crate::record::SimCounters::default();
    let mut simd_weighted = 0.0f64;
    let mut measured = 0u64;
    for r in records {
        if let Record::Measurement(m) = r {
            let c = &m.counters;
            total.instructions += c.instructions;
            total.flops += c.flops;
            total.l1_loads += c.l1_loads;
            total.l1_stores += c.l1_stores;
            total.l1_misses += c.l1_misses;
            total.l2_misses += c.l2_misses;
            total.prefetch_issued += c.prefetch_issued;
            total.prefetch_useful += c.prefetch_useful;
            simd_weighted += c.simd_utilization * c.instructions;
            measured += 1;
        }
    }
    // `wall` scope counters belong to the pipeline-timing section.
    let flushed: Vec<(String, f64)> = records
        .iter()
        .filter_map(|r| match r {
            Record::Counter(c) if c.scope != "wall" => {
                Some((format!("{}/{}", c.scope, c.name), c.value))
            }
            _ => None,
        })
        .collect();
    if measured == 0 && flushed.is_empty() {
        return;
    }
    out.push_str("--- cache / prefetch counters (all measured programs) ---\n");
    if measured > 0 {
        let accesses = total.l1_loads + total.l1_stores;
        let miss_rate = if accesses > 0.0 {
            total.l1_misses / accesses
        } else {
            0.0
        };
        let pf_acc = if total.prefetch_issued > 0.0 {
            total.prefetch_useful / total.prefetch_issued
        } else {
            0.0
        };
        let simd = if total.instructions > 0.0 {
            simd_weighted / total.instructions
        } else {
            0.0
        };
        out.push_str(&format!(
            "l1 accesses {:.3e} (miss rate {:.2}%), l2 misses {:.3e}\n",
            accesses,
            miss_rate * 100.0,
            total.l2_misses
        ));
        out.push_str(&format!(
            "prefetch issued {:.3e}, useful {:.3e} (accuracy {:.1}%)\n",
            total.prefetch_issued,
            total.prefetch_useful,
            pf_acc * 100.0
        ));
        out.push_str(&format!(
            "mean SIMD lane utilization {:.1}% over {measured} programs\n",
            simd * 100.0
        ));
    }
    let (families, mut plain) = fold_histogram_families(flushed);
    if !families.is_empty() {
        out.push_str("histograms (p50/p95/p99 nearest-rank):\n");
        for (base, stats) in &families {
            let g = |k: &str| stats.get(k).copied().unwrap_or(0.0);
            // A `.sampled` marker means the histogram overflowed its
            // retention cap: percentiles cover only the first samples
            // and are rendered as approximate.
            let t = if g("sampled") != 0.0 { "~" } else { "" };
            let note = if g("sampled") != 0.0 {
                " (percentiles sampled)"
            } else {
                ""
            };
            out.push_str(&format!(
                "    {base}: n={:.0} mean={:.3e} {t}p50={:.3e} {t}p95={:.3e} {t}p99={:.3e} \
                 max={:.3e}{note}\n",
                g("count"),
                g("mean"),
                g("p50"),
                g("p95"),
                g("p99"),
                g("max"),
            ));
        }
    }
    if !plain.is_empty() {
        plain.sort_by(|a, b| b.1.total_cmp(&a.1));
        out.push_str("top flushed counters:\n");
        for (name, value) in plain.iter().take(10) {
            out.push_str(&format!("    {name} = {value:.3e}\n"));
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::*;

    fn measurement(seq: u64, op: &str, stage: Stage, lat: f64, best: f64) -> Record {
        Record::Measurement(MeasurementRecord {
            seq,
            op: op.to_string(),
            stage,
            round: 1,
            candidate: "[0]".to_string(),
            predicted_cost: None,
            latency_s: lat,
            best_so_far_s: best,
            counters: SimCounters {
                instructions: 100.0,
                flops: 200.0,
                l1_loads: 50.0,
                l1_stores: 10.0,
                l1_misses: 5.0,
                l2_misses: 1.0,
                prefetch_issued: 8.0,
                prefetch_useful: 6.0,
                simd_utilization: 0.5,
            },
        })
    }

    #[test]
    fn report_contains_all_sections() {
        let records = vec![
            measurement(1, "conv2d#0", Stage::Joint, 2e-3, 2e-3),
            measurement(2, "conv2d#0", Stage::Joint, 1e-3, 1e-3),
            measurement(3, "conv2d#0", Stage::Loop, 5e-4, 5e-4),
            Record::CostModel(CostModelRecord {
                op: "conv2d#0".to_string(),
                stage: Stage::Loop,
                round: 1,
                measured: 8,
                spearman: 0.5,
                train_size: 32,
            }),
            Record::Counter(CounterRecord {
                scope: "sim".to_string(),
                name: "l1.accesses".to_string(),
                value: 1234.0,
            }),
            Record::MeasurementFailure(MeasurementFailureRecord {
                seq: 4,
                op: "conv2d#0".to_string(),
                stage: Stage::Loop,
                round: 2,
                candidate: "[1]".to_string(),
                kind: "injected_compile".to_string(),
                error: "injected compile failure".to_string(),
                attempt: 2,
                backoff_us: 100,
            }),
            Record::Counter(CounterRecord {
                scope: "tuner".to_string(),
                name: "retries".to_string(),
                value: 1.0,
            }),
            Record::RunSummary(RunSummaryRecord {
                joint_budget: 2,
                loop_budget: 1,
                measurements: 3,
                best_latency_s: 5e-4,
                wall_s: 0.1,
            }),
        ];
        let report = render_report(&records);
        assert!(report.contains("best-latency curve"), "{report}");
        assert!(report.contains("conv2d#0: 3 measurements"), "{report}");
        assert!(report.contains("4.00x"), "{report}");
        assert!(report.contains("joint: 2 measurements"), "{report}");
        assert!(report.contains("loop: 1 measurements"), "{report}");
        assert!(report.contains("mean spearman +0.500"), "{report}");
        assert!(report.contains("sim/l1.accesses"), "{report}");
        assert!(report.contains("prefetch issued"), "{report}");
        assert!(report.contains("SIMD lane utilization 50.0%"), "{report}");
        assert!(report.contains("consumed 3"), "{report}");
        assert!(report.contains("fault tolerance"), "{report}");
        assert!(report.contains("injected_compile: 1"), "{report}");
        assert!(
            report.contains("deepest retry chain: 2 attempts"),
            "{report}"
        );
        assert!(report.contains("retries: 1"), "{report}");
    }

    #[test]
    fn attempts_vs_successes_counts_failures_and_rejections() {
        let records = vec![
            measurement(1, "conv2d#0", Stage::Joint, 2e-3, 2e-3),
            measurement(2, "conv2d#0", Stage::Loop, 1e-3, 1e-3),
            Record::MeasurementFailure(MeasurementFailureRecord {
                seq: 3,
                op: "conv2d#0".to_string(),
                stage: Stage::Loop,
                round: 2,
                candidate: "[1]".to_string(),
                kind: "injected_timeout".to_string(),
                error: "injected timeout".to_string(),
                attempt: 1,
                backoff_us: 0,
            }),
            Record::VerifyRejection(VerifyRejectionRecord {
                op: "conv2d#0".to_string(),
                stage: Stage::Loop,
                round: 2,
                candidate: "[2]".to_string(),
                code: "V201".to_string(),
                detail: "illegal layout".to_string(),
            }),
            measurement(4, "gmm#1", Stage::Loop, 5e-4, 5e-4),
        ];
        let report = render_report(&records);
        assert!(
            report.contains("--- attempts vs successes per op ---"),
            "{report}"
        );
        assert!(
            report.contains(
                "conv2d#0: 3 attempts -> 2 successes (66.7%), 1 failed, 1 verify-rejected"
            ),
            "{report}"
        );
        assert!(
            report
                .contains("gmm#1: 1 attempts -> 1 successes (100.0%), 0 failed, 0 verify-rejected"),
            "{report}"
        );
    }

    #[test]
    fn fault_free_trace_has_no_fault_section() {
        let records = vec![measurement(1, "conv2d#0", Stage::Joint, 1e-3, 1e-3)];
        let report = render_report(&records);
        assert!(!report.contains("fault tolerance"), "{report}");
    }

    #[test]
    fn long_curves_are_downsampled_to_eight_points() {
        let records: Vec<Record> = (1..=100)
            .map(|i| measurement(i, "gmm#0", Stage::Loop, 1e-3, 1e-3 / i as f64))
            .collect();
        let report = render_report(&records);
        let curve_line = report
            .lines()
            .find(|l| l.trim_start().starts_with("@"))
            .unwrap();
        assert_eq!(curve_line.matches('@').count(), 8, "{curve_line}");
        assert!(curve_line.contains("@1 "), "{curve_line}");
        assert!(curve_line.contains("@100 "), "{curve_line}");
    }

    #[test]
    fn histogram_families_fold_into_one_line() {
        let mut records = vec![measurement(1, "op", Stage::Joint, 1e-3, 1e-3)];
        let reg = crate::CounterRegistry::new("sim");
        for v in 1..=100 {
            reg.observe("trial_latency_us", v as f64);
        }
        let (t, sink) = crate::Telemetry::memory();
        reg.flush_to(&t);
        records.extend(sink.records());
        let report = render_report(&records);
        assert!(report.contains("sim/trial_latency_us: n=100"), "{report}");
        assert!(report.contains("p95=9.500e1"), "{report}");
        // The eight suffixed counters do not leak into the flat list.
        assert!(!report.contains("trial_latency_us.p95"), "{report}");
        // A lone `.max`-named counter is not mistaken for a histogram.
        let records2 = vec![
            measurement(1, "op", Stage::Joint, 1e-3, 1e-3),
            Record::Counter(CounterRecord {
                scope: "sim".into(),
                name: "queue.max".into(),
                value: 7.0,
            }),
        ];
        let report2 = render_report(&records2);
        assert!(report2.contains("sim/queue.max = 7.000e0"), "{report2}");
    }

    #[test]
    fn cache_counters_render_a_hit_rate_section() {
        let counter = |name: &str, value: f64| {
            Record::Counter(CounterRecord {
                scope: "sim".into(),
                name: name.into(),
                value,
            })
        };
        let records = vec![
            measurement(1, "op", Stage::Joint, 1e-3, 1e-3),
            counter("cache.hits", 3.0),
            counter("cache.misses", 7.0),
        ];
        let report = render_report(&records);
        assert!(report.contains("--- measurement cache ---"), "{report}");
        assert!(
            report.contains("10 simulation lookups: 3 hits, 7 misses (hit rate 30.0%)"),
            "{report}"
        );
        // Hit-free runs never create `cache.hits`; the section still renders.
        let report2 = render_report(&[counter("cache.misses", 5.0)]);
        assert!(
            report2.contains("5 simulation lookups: 0 hits, 5 misses (hit rate 0.0%)"),
            "{report2}"
        );
        // Pre-cache traces have no section.
        let report3 = render_report(&[measurement(1, "op", Stage::Joint, 1e-3, 1e-3)]);
        assert!(!report3.contains("measurement cache"), "{report3}");
    }

    #[test]
    fn store_counters_render_their_own_section() {
        let counter = |name: &str, value: f64| {
            Record::Counter(CounterRecord {
                scope: "sim".into(),
                name: name.into(),
                value,
            })
        };
        let records = vec![
            measurement(1, "op", Stage::Joint, 1e-3, 1e-3),
            counter("store.hits", 6.0),
            counter("store.misses", 2.0),
        ];
        let report = render_report(&records);
        assert!(report.contains("--- durable tuning store ---"), "{report}");
        assert!(
            report.contains(
                "8 store lookups: 6 served from store, 2 simulated \
                 and published (hit rate 75.0%)"
            ),
            "{report}"
        );
        // Store-less runs have no section.
        let report2 = render_report(&[measurement(1, "op", Stage::Joint, 1e-3, 1e-3)]);
        assert!(!report2.contains("durable tuning store"), "{report2}");
    }

    #[test]
    fn truncated_histograms_render_approximate_percentiles() {
        let mut records = vec![measurement(1, "op", Stage::Joint, 1e-3, 1e-3)];
        let stats: &[(&str, f64)] = &[
            ("count", 70000.0),
            ("sum", 70000.0),
            ("min", 1.0),
            ("max", 1.0),
            ("mean", 1.0),
            ("p50", 1.0),
            ("p95", 1.0),
            ("p99", 1.0),
            ("sampled", 1.0),
        ];
        for (suffix, value) in stats {
            records.push(Record::Counter(CounterRecord {
                scope: "sim".into(),
                name: format!("lat.{suffix}"),
                value: *value,
            }));
        }
        let report = render_report(&records);
        assert!(report.contains("~p50="), "{report}");
        assert!(report.contains("(percentiles sampled)"), "{report}");
        // The marker folds into the family line rather than leaking.
        assert!(!report.contains("lat.sampled"), "{report}");
    }

    #[test]
    fn timing_records_render_a_pipeline_timing_section() {
        use crate::timing::PhaseNode;
        let mut root = PhaseNode {
            name: "run".to_string(),
            count: 1,
            inclusive_us: 1_000_000,
            children: Vec::new(),
        };
        root.children.push(PhaseNode {
            name: "loop_stage".to_string(),
            count: 1,
            inclusive_us: 800_000,
            children: vec![PhaseNode {
                name: "measure".to_string(),
                count: 40,
                inclusive_us: 600_000,
                children: Vec::new(),
            }],
        });
        let mut records = vec![Record::Timing(TimingRecord { phases: root })];
        let reg = crate::CounterRegistry::new("wall");
        for v in 1..=100 {
            reg.observe("store.append_us", v as f64);
        }
        let (t, sink) = crate::Telemetry::memory();
        reg.flush_to(&t);
        records.extend(sink.records());
        let report = render_report(&records);
        assert!(
            report.contains("--- pipeline timing (wall clock) ---"),
            "{report}"
        );
        assert!(report.contains("run: 1.000 s x1 (100.0%)"), "{report}");
        // The loop stage is indented under the run and shows its share.
        assert!(
            report.contains("    loop_stage: 800.000 ms x1 (80.0%), self 200.000 ms"),
            "{report}"
        );
        assert!(
            report.contains("        measure: 600.000 ms x40 (60.0%)"),
            "{report}"
        );
        // Wall histograms render in the timing section with time units,
        // not in the generic counters section.
        assert!(
            report.contains("store.append_us: n=100 p50=50.000 us p95=95.000 us"),
            "{report}"
        );
        assert!(!report.contains("wall/store.append_us"), "{report}");
        // A trace without timing has no section.
        let plain = render_report(&[measurement(1, "op", Stage::Joint, 1e-3, 1e-3)]);
        assert!(!plain.contains("pipeline timing"), "{plain}");
    }

    #[test]
    fn fmt_latency_picks_units() {
        assert_eq!(fmt_latency(2.5), "2.500 s");
        assert_eq!(fmt_latency(2.5e-3), "2.500 ms");
        assert_eq!(fmt_latency(2.5e-6), "2.500 us");
        assert_eq!(fmt_latency(2.5e-8), "25.0 ns");
    }

    #[test]
    fn jsonl_roundtrip_through_file() {
        let dir = std::env::temp_dir().join("alt-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        {
            let t = crate::Telemetry::jsonl(&path).unwrap();
            t.emit(measurement(1, "op", Stage::Joint, 1e-3, 1e-3));
            t.emit(Record::RunSummary(RunSummaryRecord {
                joint_budget: 1,
                loop_budget: 0,
                measurements: 1,
                best_latency_s: 1e-3,
                wall_s: 0.0,
            }));
            t.flush();
        }
        let records = read_jsonl(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert!(matches!(records[0], Record::Measurement(_)));
        assert!(matches!(records[1], Record::RunSummary(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_jsonl_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("alt-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"type\":\"nope\"}\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
