//! Differential harness: the native executor must be **bit-identical**
//! to the TIR interpreter — same stores, same accumulation order, same
//! predicated-slot semantics — on every machine profile, across random
//! layout/schedule chains and real model graphs.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use proptest::prelude::*;

use alt_codegen::compile;
use alt_layout::{presets, Layout, LayoutPlan, LayoutPrim, PropagationMode};
use alt_loopir::{lower, run_program, AxisTiling, GraphSchedule, OpSchedule, Program};
use alt_models::all_models;
use alt_sim::{all_profiles, MachineProfile};
use alt_tensor::exec::random_bindings;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, NdBuf, OpId, Shape, TensorId};

/// Runs interpreter and native executor on the same program and asserts
/// every unpacked tensor matches bit for bit.
fn assert_bit_identical(
    program: &Program,
    g: &Graph,
    plan: &LayoutPlan,
    bindings: &HashMap<TensorId, NdBuf>,
    profile: &MachineProfile,
    threads: usize,
    what: &str,
) {
    let want = run_program(program, g, plan, bindings);
    let kernel = compile(program, profile);
    let (got, _) = kernel.run(program, g, plan, bindings, threads);
    assert_eq!(want.len(), got.len(), "{what}: tensor set differs");
    for (t, w) in &want {
        let n = &got[t];
        assert_eq!(w.shape().dims(), n.shape().dims(), "{what}: shape");
        for (i, (a, b)) in w.data().iter().zip(n.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: tensor `{}` flat index {i} on {}: interp {a} vs native {b}",
                g.tensor(*t).name,
                profile.name
            );
        }
    }
}

fn gmm_graph(m: i64, k: i64, n: i64) -> (Graph, TensorId, OpId, TensorId) {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([m, k]));
    let b = g.add_param("b", Shape::new([k, n]));
    let y = ops::gmm(&mut g, a, b);
    let op = g.tensor(y).producer.unwrap();
    (g, a, op, y)
}

/// A schedule that turns on `@par` and `@vec` for every operator so the
/// parallel and vector-chunk paths are exercised.
fn par_vec_schedule(g: &Graph) -> GraphSchedule {
    let mut sched = GraphSchedule::naive();
    for k in 0..g.num_ops() {
        sched.set(
            OpId(k),
            OpSchedule {
                vectorize: true,
                parallel: true,
                ..OpSchedule::default()
            },
        );
    }
    sched
}

#[test]
fn naive_gmm_is_bit_identical_on_every_profile() {
    let (g, _, _, _) = gmm_graph(6, 8, 10);
    let plan = LayoutPlan::new(PropagationMode::Full);
    let program = lower(&g, &plan, &GraphSchedule::naive());
    let bindings = random_bindings(&g, 1);
    for p in all_profiles() {
        assert_bit_identical(&program, &g, &plan, &bindings, &p, 4, "naive gmm");
    }
}

#[test]
fn tiled_conv_with_par_vec_is_bit_identical() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
    let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
    let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let conv = g.tensor(y).producer.unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(&g, conv, presets::nhwo(g.tensor(y).shape.clone()).unwrap());
    let mut sched = par_vec_schedule(&g);
    sched.set(
        conv,
        OpSchedule {
            spatial: vec![
                AxisTiling::none(),
                AxisTiling::one(4),
                AxisTiling::one(2),
                AxisTiling::none(),
            ],
            vectorize: true,
            parallel: true,
            ..OpSchedule::default()
        },
    );
    let program = lower(&g, &plan, &sched);
    let bindings = random_bindings(&g, 2);
    for p in all_profiles() {
        assert_bit_identical(&program, &g, &plan, &bindings, &p, 4, "tiled conv");
    }
}

#[test]
fn padded_and_unfolded_layouts_are_bit_identical() {
    // Pad on the output exercises the pred-false Assign (zeroing) path;
    // Unfold-with-overhang on the input exercises conversion nests with
    // invalid slots.
    let (g, a, op, y) = gmm_graph(9, 4, 5);
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        &g,
        op,
        Layout::identity(g.tensor(y).shape.clone())
            .with(LayoutPrim::Pad {
                dim: 1,
                before: 1,
                after: 2,
            })
            .unwrap(),
    );
    plan.assign_input_layout(
        &g,
        op,
        a,
        Layout::identity(g.tensor(a).shape.clone())
            .with(LayoutPrim::Unfold {
                dim: 0,
                tile: 4,
                stride: 3,
            })
            .unwrap(),
    );
    let program = lower(&g, &plan, &par_vec_schedule(&g));
    let bindings = random_bindings(&g, 3);
    for p in all_profiles() {
        assert_bit_identical(&program, &g, &plan, &bindings, &p, 4, "pad+unfold gmm");
    }
}

#[test]
fn swizzled_morton_and_blockdiag_layouts_are_bit_identical() {
    // The PR-10 advanced primitives: XOR swizzle and block-diagonal
    // remap on the GMM weight's packed tiles, Morton interleave on the
    // output. All three are bijective, so interpreter and native must
    // agree bit for bit through the pack/compute/unpack pipeline.
    let (g, a, op, y) = gmm_graph(8, 8, 16);
    let b = g.tensor(y).producer.map(|p| g.node(p).inputs[1]).unwrap();
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    // Output [8, 16]: tile to [2, 4, 4, 4] then Morton the equal pair.
    plan.assign_output_layout(
        &g,
        op,
        Layout::identity(g.tensor(y).shape.clone())
            .with(LayoutPrim::Split {
                dim: 0,
                factors: vec![2, 4],
            })
            .unwrap()
            .with(LayoutPrim::Split {
                dim: 2,
                factors: vec![4, 4],
            })
            .unwrap()
            .with(LayoutPrim::Morton { dim: 1 })
            .unwrap(),
    );
    // Input [8, 8]: channel-tiled + XOR swizzle of the inner tile.
    plan.assign_input_layout(
        &g,
        op,
        a,
        presets::channel_tiled_swizzled(g.tensor(a).shape.clone(), 4, 2).unwrap(),
    );
    // Weight [8, 16]: block-diagonal rotation of the last dim.
    plan.assign_input_layout(
        &g,
        op,
        b,
        presets::block_diag_rotated(g.tensor(b).shape.clone(), 3).unwrap(),
    );
    let program = lower(&g, &plan, &par_vec_schedule(&g));
    // The advanced layouts must also pass the integer-set legality
    // engine before execution (no conservative rejection regressions).
    let diags = alt_verify::verify_program(&g, &plan, &program);
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    let bindings = random_bindings(&g, 7);
    for p in all_profiles() {
        assert_bit_identical(
            &program,
            &g,
            &plan,
            &bindings,
            &p,
            4,
            "swizzle+morton+bdiag",
        );
    }
}

#[test]
fn vec_fast_path_and_parallel_loops_are_present() {
    // Guard against the fast paths silently compiling away: the conv
    // kernel above must actually contain vector-chunked and parallel
    // loops, otherwise the differential tests stop covering them.
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
    let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
    let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let conv = g.tensor(y).producer.unwrap();
    let plan = LayoutPlan::new(PropagationMode::Full);
    // Untiled axes have no inner spatial loops for `@vec` to land on, so
    // tile the spatial dims the same way the tiled-conv test does.
    let mut sched = par_vec_schedule(&g);
    sched.set(
        conv,
        OpSchedule {
            spatial: vec![
                AxisTiling::none(),
                AxisTiling::one(4),
                AxisTiling::one(2),
                AxisTiling::none(),
            ],
            vectorize: true,
            parallel: true,
            ..OpSchedule::default()
        },
    );
    let program = lower(&g, &plan, &sched);
    let kernel = compile(&program, &alt_sim::intel_cpu());
    let stats = kernel.stats();
    assert!(stats.vec_loops > 0, "no vector fast-path loops: {stats:?}");
    assert!(stats.par_loops > 0, "no parallel loops: {stats:?}");
    assert!(stats.iops > 0 && stats.fops > 0);
}

/// Model graphs end to end (prefix-truncated so the interpreter side
/// stays affordable): every profile, `@par`/`@vec` everywhere.
#[test]
fn model_prefixes_are_bit_identical_on_every_profile() {
    let cap: u64 = std::env::var("ALT_NATIVE_DIFF_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    for model in all_models(1) {
        let g = &model.graph;
        let plan = LayoutPlan::new(PropagationMode::Full);
        let program = lower(g, &plan, &par_vec_schedule(g)).truncated(cap);
        assert!(!program.groups.is_empty());
        let bindings = random_bindings(g, 5);
        for p in all_profiles() {
            assert_bit_identical(
                &program,
                g,
                &plan,
                &bindings,
                &p,
                4,
                &format!("model {}", model.name),
            );
        }
    }
}

fn divisors(n: i64) -> Vec<i64> {
    (1..=n).filter(|d| n % d == 0).collect()
}

fn pick(divs: &[i64], sel: u64) -> i64 {
    divs[(sel % divs.len() as u64) as usize]
}

/// Random factorization of `n` into >= 2 factors (seeded LCG), same
/// generator family as the verifier's property tests.
fn factorize(n: i64, rng_val: u64) -> Vec<i64> {
    let mut factors = Vec::new();
    let mut rest = n;
    let mut x = rng_val;
    while rest > 1 && factors.len() < 2 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let divs: Vec<i64> = (1..=rest).filter(|d| rest % d == 0).collect();
        let f = divs[(x >> 33) as usize % divs.len()];
        factors.push(f);
        rest /= f;
    }
    factors.push(rest);
    factors
}

/// Applies up to `n_prims` random primitives to an identity layout.
fn random_layout(shape: Shape, seed: u64, n_prims: usize) -> Layout {
    let mut layout = Layout::identity(shape);
    let mut x = seed;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    for _ in 0..n_prims {
        let dims = layout.physical_shape();
        let nd = dims.ndim();
        match next() % 8 {
            0 => {
                let candidates: Vec<usize> = (0..nd).filter(|&k| dims.dim(k) > 1).collect();
                if let Some(&k) = candidates.get(next() % candidates.len().max(1)) {
                    let factors = factorize(dims.dim(k), next() as u64);
                    if factors.len() >= 2 {
                        let _ = layout.apply(LayoutPrim::Split { dim: k, factors });
                    }
                }
            }
            1 => {
                let mut perm: Vec<usize> = (0..nd).collect();
                for i in (1..nd).rev() {
                    perm.swap(i, next() % (i + 1));
                }
                let _ = layout.apply(LayoutPrim::Reorder { perm });
            }
            2 => {
                if nd >= 2 {
                    let start = next() % (nd - 1);
                    let count = 2 + next() % (nd - start - 1).max(1);
                    let count = count.min(nd - start);
                    let _ = layout.apply(LayoutPrim::Fuse { start, count });
                }
            }
            3 => {
                let k = next() % nd;
                let d = dims.dim(k);
                if d >= 2 {
                    let tile = 2 + (next() as i64) % (d - 1);
                    let stride = 1 + (next() as i64) % tile;
                    let _ = layout.apply(LayoutPrim::Unfold {
                        dim: k,
                        tile,
                        stride,
                    });
                }
            }
            4 => {
                let k = next() % nd;
                let _ = layout.apply(LayoutPrim::Pad {
                    dim: k,
                    before: (next() % 3) as i64,
                    after: (next() % 3) as i64,
                });
            }
            5 => {
                if nd >= 2 {
                    let dim = next() % nd;
                    let src = next() % nd;
                    let bits = 1 + (next() % 2) as u32;
                    let _ = layout.apply(LayoutPrim::Swizzle { dim, src, bits });
                }
            }
            6 => {
                if nd >= 2 {
                    let dim = next() % (nd - 1);
                    let _ = layout.apply(LayoutPrim::Morton { dim });
                }
            }
            _ => {
                if nd >= 2 {
                    let dim = next() % nd;
                    let src = next() % nd;
                    let block = 1 + (next() as i64) % dims.dim(dim).max(2);
                    let _ = layout.apply(LayoutPrim::BlockDiag { dim, src, block });
                }
            }
        }
    }
    layout
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random layout chains on every GMM tensor plus random loop
    /// annotations: whatever lowering produces, native must equal the
    /// interpreter bit for bit on every machine profile.
    #[test]
    fn random_gmm_chains_are_bit_identical(
        seeds in prop::collection::vec(any::<u64>(), 3),
        n_prims in prop::collection::vec(0usize..4, 3),
        vectorize in any::<bool>(),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (g, a, op, y) = gmm_graph(6, 8, 10);
        let b = g.tensor(y).producer.map(|p| g.node(p).inputs[1]).unwrap();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(
            &g,
            op,
            random_layout(g.tensor(y).shape.clone(), seeds[0], n_prims[0]),
        );
        plan.assign_input_layout(
            &g,
            op,
            a,
            random_layout(g.tensor(a).shape.clone(), seeds[1], n_prims[1]),
        );
        plan.assign_input_layout(
            &g,
            op,
            b,
            random_layout(g.tensor(b).shape.clone(), seeds[2], n_prims[2]),
        );
        let mut sched = GraphSchedule::naive();
        sched.set(op, OpSchedule {
            vectorize,
            parallel,
            ..OpSchedule::default()
        });
        let program = lower(&g, &plan, &sched);
        let bindings = random_bindings(&g, seed);
        for p in all_profiles() {
            assert_bit_identical(&program, &g, &plan, &bindings, &p, 4, "random gmm chain");
        }
    }

    /// Random conv tilings: tiled reductions reassociate differently from
    /// the reference executor, but native and interpreter must still
    /// agree exactly.
    #[test]
    fn random_conv_tilings_are_bit_identical(
        sel in prop::collection::vec(any::<u64>(), 4),
        vectorize in any::<bool>(),
        unroll in any::<bool>(),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let phys = plan.layout_of(&g, y).physical_shape();
        let spatial: Vec<AxisTiling> = (0..phys.ndim())
            .map(|d| {
                let t = pick(&divisors(phys.dim(d)), sel[d]);
                if t > 1 { AxisTiling::one(t) } else { AxisTiling::none() }
            })
            .collect();
        let mut sched = GraphSchedule::naive();
        sched.set(conv, OpSchedule {
            spatial,
            vectorize,
            unroll,
            parallel,
            ..OpSchedule::default()
        });
        let program = lower(&g, &plan, &sched);
        let bindings = random_bindings(&g, seed);
        for p in all_profiles() {
            assert_bit_identical(&program, &g, &plan, &bindings, &p, 4, "random conv tiling");
        }
    }
}
