//! The compiled kernel representation.
//!
//! A [`NativeKernel`] mirrors the lowered loop tree of a
//! [`Program`](alt_loopir::Program), but with every symbolic index
//! expression replaced by a register id and every scalar body flattened
//! into a stack program. Two instruction sets exist:
//!
//! * **Integer ops** ([`IOp`]) compute loop-index arithmetic into a flat
//!   `i64` register file. Each op is placed in the *prologue* of the loop
//!   whose variable is its deepest dependency, so it re-executes exactly
//!   when one of its inputs changes (classic loop-invariant hoisting).
//!   Comparisons produce `0`/`1` registers consumed by predicated stores
//!   and `Select` branches.
//! * **Float ops** ([`FOp`]) evaluate one statement body as a small stack
//!   machine in the interpreter's recursive-descent order. `Select`
//!   becomes a conditional jump so only the taken arm touches memory.

use alt_loopir::StoreMode;
use alt_tensor::expr::BinOp;
use alt_tensor::op::{ScalarBinOp, UnaryOp};

/// A three-address integer instruction over the `i64` register file.
#[derive(Clone, Copy, Debug)]
pub enum IOp {
    /// `regs[dst] = regs[a] <op> regs[b]` with the [`BinOp`] semantics of
    /// symbolic index expressions (`FloorDiv`/`Mod` are euclidean).
    Bin { op: BinOp, dst: u32, a: u32, b: u32 },
    /// `regs[dst] = (regs[a] >= regs[b]) as i64`.
    Ge { dst: u32, a: u32, b: u32 },
    /// `regs[dst] = (regs[a] < regs[b]) as i64`.
    Lt { dst: u32, a: u32, b: u32 },
    /// `regs[dst] = (regs[a] == regs[b]) as i64`.
    Eq { dst: u32, a: u32, b: u32 },
    /// `regs[dst] = (regs[a] != 0 && regs[b] != 0) as i64`.
    And { dst: u32, a: u32, b: u32 },
}

/// One stack-machine instruction of a statement body.
#[derive(Clone, Copy, Debug)]
pub enum FOp {
    /// Push a literal.
    Imm(f32),
    /// Push `bufs[buf][regs[off]]` (flat physical offset).
    Load { buf: u32, off: u32 },
    /// Pop `b`, pop `a`, push `a <op> b`.
    Bin(ScalarBinOp),
    /// Pop `a`, push `op(a)`.
    Un(UnaryOp),
    /// Jump to `to` when `regs[cond] == 0` (the `Select` else-arm).
    JumpIfZero { cond: u32, to: u32 },
    /// Unconditional jump (skips the else-arm after the then-arm).
    Jump { to: u32 },
}

/// A compiled store statement.
#[derive(Clone, Debug)]
pub struct CStmt {
    /// Destination buffer index.
    pub buf: u32,
    /// Register holding the flat physical store offset.
    pub off: u32,
    /// Register holding the validity predicate (`0` = invalid slot):
    /// false + `Assign` writes `0.0`, false + accumulation is skipped —
    /// the interpreter's pad/overhang semantics.
    pub pred: Option<u32>,
    /// Assignment vs. accumulation.
    pub mode: StoreMode,
    /// The body as a stack program; its evaluation order is the
    /// interpreter's recursive descent.
    pub fops: Vec<FOp>,
}

/// Per-lane offset adjustments for an order-preserving vector chunk.
///
/// When the innermost `@vec` loop has a single-statement body whose
/// physical offsets are affine in the loop variable and whose predicates
/// do not depend on it, the executor runs the integer prologue once per
/// SIMD-width chunk (at lane 0) and derives the remaining lanes by
/// stepping each offset register by its stride. Lanes are still evaluated
/// in lane order, so accumulation order — and hence every bit of a
/// floating-point reduction — matches the scalar interpreter.
#[derive(Clone, Debug)]
pub struct VecBody {
    /// Stride of the store offset in the vectorized variable.
    pub store_stride: i64,
    /// Stride per [`FOp`] position (non-`Load` positions hold 0).
    pub load_strides: Vec<i64>,
}

/// A compiled loop nest node.
#[derive(Clone, Debug)]
pub enum CNode {
    Loop(CLoop),
    Stmt(CStmt),
}

/// A compiled loop.
#[derive(Clone, Debug)]
pub struct CLoop {
    /// Register holding the loop variable's current value.
    pub var_reg: u32,
    /// Trip count.
    pub extent: i64,
    /// Whether lowering marked this loop `@par` (spatial partitioning).
    pub parallel: bool,
    /// SIMD width used for chunking when `vec` is present.
    pub lanes: u32,
    /// Integer ops to run at the top of every iteration: exactly the ops
    /// whose deepest variable dependency is this loop's variable.
    pub prologue: Vec<IOp>,
    /// Loop body in source order.
    pub body: Vec<CNode>,
    /// Vector fast path; `Some` only when `body` is a single statement
    /// that passed the affine/predicate-independence analysis.
    pub vec: Option<VecBody>,
}

/// One lowered group (a fused operator) in compiled form.
#[derive(Clone, Debug)]
pub struct CGroup {
    /// Human-readable label, copied from the lowered group.
    pub label: String,
    /// Integer ops with no loop-variable dependency; run once per group.
    pub prologue: Vec<IOp>,
    /// The compiled loop tree.
    pub nodes: Vec<CNode>,
}

/// A compiled program: the native counterpart of
/// [`Program`](alt_loopir::Program), executable by
/// [`NativeKernel::execute`](crate::exec).
#[derive(Clone, Debug)]
pub struct NativeKernel {
    /// Compiled groups in execution order.
    pub groups: Vec<CGroup>,
    /// Size of the `i64` register file.
    pub n_regs: usize,
    /// `(register, value)` pairs loaded once before execution.
    pub consts: Vec<(u32, i64)>,
}

/// Static shape of a compiled kernel, for logs and smoke tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of compiled groups.
    pub groups: usize,
    /// Total integer ops across all prologues.
    pub iops: usize,
    /// Total float ops across all statement bodies.
    pub fops: usize,
    /// Loops taking the order-preserving vector fast path.
    pub vec_loops: usize,
    /// Loops marked parallel.
    pub par_loops: usize,
}

impl NativeKernel {
    /// Counts the kernel's instructions and specialized loops.
    pub fn stats(&self) -> KernelStats {
        fn walk(nodes: &[CNode], s: &mut KernelStats) {
            for n in nodes {
                match n {
                    CNode::Stmt(st) => s.fops += st.fops.len(),
                    CNode::Loop(l) => {
                        s.iops += l.prologue.len();
                        if l.vec.is_some() {
                            s.vec_loops += 1;
                        }
                        if l.parallel {
                            s.par_loops += 1;
                        }
                        walk(&l.body, s);
                    }
                }
            }
        }
        let mut s = KernelStats {
            groups: self.groups.len(),
            ..KernelStats::default()
        };
        for g in &self.groups {
            s.iops += g.prologue.len();
            walk(&g.nodes, &mut s);
        }
        s
    }
}
