//! Kernel execution over raw `f32` buffers.
//!
//! The executor interprets the compiled instruction streams directly —
//! integer prologues into a flat register file, statement bodies on a
//! reusable value stack — touching buffers only through precomputed flat
//! offsets. Three loop strategies exist:
//!
//! * **Scalar**: bind the loop register, run the prologue, run the body.
//! * **Vector chunk** (`@vec` fast path): run the prologue once per
//!   SIMD-width chunk and step the offset registers by their affine
//!   strides per lane, evaluating lanes *in order* so reduction bits
//!   match the interpreter.
//! * **Parallel** (`@par`): split the iteration space into contiguous
//!   ranges on scoped threads. Lowering marks only spatial loops
//!   parallel, so ranges write disjoint slots and per-slot accumulation
//!   order is preserved; nested parallel loops run serially inside a
//!   worker.
//!
//! Buffer accesses are bounds-checked in debug builds and unchecked in
//! release; offsets come from the same index expressions the interpreter
//! evaluates, so any out-of-range offset is a lowering bug that the
//! differential tests catch in debug mode first.

use std::collections::HashMap;
use std::time::Instant;

use alt_layout::LayoutPlan;
use alt_loopir::tir::Program;
use alt_loopir::{pack_buffers, unpack_buffers, StoreMode};
use alt_tensor::expr::BinOp;
use alt_tensor::op::ScalarBinOp;
use alt_tensor::{Graph, NdBuf, TensorId};

use crate::ir::{CGroup, CLoop, CNode, CStmt, FOp, IOp, NativeKernel, VecBody};

/// Wall-clock accounting of one native run.
#[derive(Clone, Debug)]
pub struct NativeRunStats {
    /// `(group label, microseconds)` per lowered group, execution order.
    pub group_us: Vec<(String, f64)>,
    /// End-to-end kernel time in microseconds (excludes pack/unpack).
    pub total_us: f64,
    /// Worker thread cap the run used.
    pub threads: usize,
}

/// Default worker-thread cap: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

struct BufPtr {
    ptr: *mut f32,
    len: usize,
}

/// Shared view of the buffer table for worker threads. Safety rests on
/// the lowering invariant that parallel iterations write disjoint slots;
/// reads may alias freely (no `&mut` references exist during execution).
struct Bufs {
    slots: Vec<BufPtr>,
}

unsafe impl Send for Bufs {}
unsafe impl Sync for Bufs {}

impl Bufs {
    #[inline]
    fn read(&self, buf: u32, off: i64) -> f32 {
        let s = &self.slots[buf as usize];
        debug_assert!(
            off >= 0 && (off as usize) < s.len,
            "load offset {off} out of bounds for buffer {buf} (len {})",
            s.len
        );
        unsafe { *s.ptr.add(off as usize) }
    }

    #[inline]
    fn write(&self, buf: u32, off: i64, v: f32) {
        let s = &self.slots[buf as usize];
        debug_assert!(
            off >= 0 && (off as usize) < s.len,
            "store offset {off} out of bounds for buffer {buf} (len {})",
            s.len
        );
        unsafe { *s.ptr.add(off as usize) = v };
    }
}

/// Per-thread mutable execution state.
struct ThreadState {
    regs: Vec<i64>,
    stack: Vec<f32>,
}

#[inline]
fn apply_ibin(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::FloorDiv => x.div_euclid(y),
        BinOp::Mod => x.rem_euclid(y),
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
    }
}

#[inline]
fn apply_fbin(op: ScalarBinOp, x: f32, y: f32) -> f32 {
    match op {
        ScalarBinOp::Add => x + y,
        ScalarBinOp::Sub => x - y,
        ScalarBinOp::Mul => x * y,
        ScalarBinOp::Div => x / y,
        ScalarBinOp::Max => x.max(y),
        ScalarBinOp::Min => x.min(y),
    }
}

#[inline]
fn run_iops(ops: &[IOp], regs: &mut [i64]) {
    for op in ops {
        match *op {
            IOp::Bin { op, dst, a, b } => {
                regs[dst as usize] = apply_ibin(op, regs[a as usize], regs[b as usize]);
            }
            IOp::Ge { dst, a, b } => {
                regs[dst as usize] = i64::from(regs[a as usize] >= regs[b as usize]);
            }
            IOp::Lt { dst, a, b } => {
                regs[dst as usize] = i64::from(regs[a as usize] < regs[b as usize]);
            }
            IOp::Eq { dst, a, b } => {
                regs[dst as usize] = i64::from(regs[a as usize] == regs[b as usize]);
            }
            IOp::And { dst, a, b } => {
                regs[dst as usize] = i64::from(regs[a as usize] != 0 && regs[b as usize] != 0);
            }
        }
    }
}

#[inline]
fn pop(stack: &mut Vec<f32>) -> f32 {
    stack.pop().expect("compiled stack program underflow")
}

struct Runner<'k> {
    kernel: &'k NativeKernel,
    bufs: Bufs,
    threads: usize,
}

impl Runner<'_> {
    fn run_group(&self, g: &CGroup, st: &mut ThreadState) {
        run_iops(&g.prologue, &mut st.regs);
        self.run_nodes(&g.nodes, st, true);
    }

    fn run_nodes(&self, nodes: &[CNode], st: &mut ThreadState, par_ok: bool) {
        for n in nodes {
            match n {
                CNode::Stmt(s) => self.run_stmt(s, st, None),
                CNode::Loop(l) => self.run_loop(l, st, par_ok),
            }
        }
    }

    fn run_loop(&self, l: &CLoop, st: &mut ThreadState, par_ok: bool) {
        if l.parallel && par_ok && self.threads > 1 && l.extent > 1 {
            return self.run_parallel(l, st);
        }
        if let Some(v) = &l.vec {
            return self.run_vec(l, v, st);
        }
        for i in 0..l.extent {
            st.regs[l.var_reg as usize] = i;
            run_iops(&l.prologue, &mut st.regs);
            self.run_nodes(&l.body, st, par_ok);
        }
    }

    /// Contiguous range partitioning over scoped threads. Each worker
    /// clones the register file (inheriting every outer-loop-invariant
    /// value) and owns its range exclusively.
    fn run_parallel(&self, l: &CLoop, st: &ThreadState) {
        let jobs = self.threads.min(l.extent as usize);
        let chunk = (l.extent as usize).div_ceil(jobs);
        std::thread::scope(|scope| {
            for k in 0..jobs {
                let lo = k * chunk;
                let hi = ((k + 1) * chunk).min(l.extent as usize);
                if lo >= hi {
                    break;
                }
                let mut ts = ThreadState {
                    regs: st.regs.clone(),
                    stack: Vec::new(),
                };
                scope.spawn(move || {
                    for i in lo..hi {
                        ts.regs[l.var_reg as usize] = i as i64;
                        run_iops(&l.prologue, &mut ts.regs);
                        self.run_nodes(&l.body, &mut ts, false);
                    }
                });
            }
        });
    }

    /// The `@vec` fast path: one prologue per SIMD-width chunk, lanes
    /// derived by stepping offsets — and evaluated strictly in lane
    /// order, preserving the interpreter's accumulation sequence.
    fn run_vec(&self, l: &CLoop, v: &VecBody, st: &mut ThreadState) {
        let Some(CNode::Stmt(s)) = l.body.first() else {
            unreachable!("vec fast path requires a single-statement body");
        };
        let w = i64::from(l.lanes);
        let mut base = 0;
        while base < l.extent {
            st.regs[l.var_reg as usize] = base;
            run_iops(&l.prologue, &mut st.regs);
            let lanes = w.min(l.extent - base);
            for lane in 0..lanes {
                self.run_stmt(s, st, Some((lane, v)));
            }
            base += w;
        }
    }

    fn run_stmt(&self, s: &CStmt, st: &mut ThreadState, lane: Option<(i64, &VecBody)>) {
        let mut off = st.regs[s.off as usize];
        if let Some((lane, v)) = lane {
            off += lane * v.store_stride;
        }
        if let Some(p) = s.pred {
            if st.regs[p as usize] == 0 {
                // Interpreter pad/overhang semantics: invalid slots are
                // zeroed by `Assign` and skipped by accumulations.
                if s.mode == StoreMode::Assign {
                    self.bufs.write(s.buf, off, 0.0);
                }
                return;
            }
        }
        let v = self.eval_fops(s, st, lane);
        match s.mode {
            StoreMode::Assign => self.bufs.write(s.buf, off, v),
            StoreMode::AddAcc => {
                let old = self.bufs.read(s.buf, off);
                self.bufs.write(s.buf, off, old + v);
            }
            StoreMode::MaxAcc => {
                let old = self.bufs.read(s.buf, off);
                self.bufs.write(s.buf, off, old.max(v));
            }
        }
    }

    fn eval_fops(&self, s: &CStmt, st: &mut ThreadState, lane: Option<(i64, &VecBody)>) -> f32 {
        st.stack.clear();
        let mut pc = 0usize;
        while pc < s.fops.len() {
            match s.fops[pc] {
                FOp::Imm(v) => st.stack.push(v),
                FOp::Load { buf, off } => {
                    let mut o = st.regs[off as usize];
                    if let Some((lane, v)) = lane {
                        o += lane * v.load_strides[pc];
                    }
                    st.stack.push(self.bufs.read(buf, o));
                }
                FOp::Bin(op) => {
                    let b = pop(&mut st.stack);
                    let a = pop(&mut st.stack);
                    st.stack.push(apply_fbin(op, a, b));
                }
                FOp::Un(op) => {
                    let a = pop(&mut st.stack);
                    st.stack.push(op.apply(a));
                }
                FOp::JumpIfZero { cond, to } => {
                    if st.regs[cond as usize] == 0 {
                        pc = to as usize;
                        continue;
                    }
                }
                FOp::Jump { to } => {
                    pc = to as usize;
                    continue;
                }
            }
            pc += 1;
        }
        pop(&mut st.stack)
    }
}

impl NativeKernel {
    /// Executes the kernel in place over a packed physical buffer table
    /// (as produced by [`pack_buffers`]), with at most `threads` workers
    /// for `@par` loops. Returns per-group wall-clock stats.
    pub fn execute(&self, bufs: &mut [NdBuf], threads: usize) -> NativeRunStats {
        let slots = bufs
            .iter_mut()
            .map(|b| {
                let d = b.data_mut();
                BufPtr {
                    ptr: d.as_mut_ptr(),
                    len: d.len(),
                }
            })
            .collect();
        let runner = Runner {
            kernel: self,
            bufs: Bufs { slots },
            threads: threads.max(1),
        };
        let mut st = ThreadState {
            regs: vec![0i64; self.n_regs],
            stack: Vec::new(),
        };
        for &(r, v) in &self.consts {
            st.regs[r as usize] = v;
        }
        let t_all = Instant::now();
        let mut group_us = Vec::with_capacity(runner.kernel.groups.len());
        for g in &runner.kernel.groups {
            let t = Instant::now();
            runner.run_group(g, &mut st);
            group_us.push((g.label.clone(), t.elapsed().as_secs_f64() * 1e6));
        }
        NativeRunStats {
            group_us,
            total_us: t_all.elapsed().as_secs_f64() * 1e6,
            threads: runner.threads,
        }
    }

    /// Packs logical bindings, executes natively and unpacks logical
    /// results — the drop-in counterpart of
    /// [`run_program`](alt_loopir::run_program), plus wall-clock stats.
    pub fn run(
        &self,
        program: &Program,
        graph: &Graph,
        plan: &LayoutPlan,
        bindings: &HashMap<TensorId, NdBuf>,
        threads: usize,
    ) -> (HashMap<TensorId, NdBuf>, NativeRunStats) {
        let mut bufs = pack_buffers(program, graph, plan, bindings);
        let stats = self.execute(&mut bufs, threads);
        (unpack_buffers(program, graph, plan, &bufs), stats)
    }
}
