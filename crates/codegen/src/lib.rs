//! Native kernel executor for lowered TIR programs.
//!
//! The tree-walking interpreter in `alt-loopir` is the semantic reference
//! for lowered programs, but it re-evaluates every symbolic index
//! expression through a per-element hash-map environment, which makes it
//! orders of magnitude slower than a real backend. This crate closes that
//! gap without an external code generator: it *compiles* a scheduled,
//! layout-specialized [`Program`](alt_loopir::Program) into a compact
//! register-based kernel and executes it directly over raw `f32` buffers.
//!
//! The contract is strict: for every program, the native executor produces
//! output **bit-identical** to the interpreter. This is what allows the
//! interpreter to be demoted to a test oracle while measurements and
//! deployment run natively. The guarantee rests on three properties:
//!
//! 1. **Same arithmetic, same order.** Scalar bodies are flattened into a
//!    postorder stack program whose evaluation order equals the
//!    interpreter's recursive descent; `Select` compiles to branches so
//!    only the taken arm is evaluated (untaken arms may index out of
//!    bounds by design).
//! 2. **Order-preserving vector chunking.** The innermost `@vec` loop is
//!    chunked by the machine profile's SIMD width, but lanes inside a
//!    chunk are evaluated and stored in lane order, so reductions
//!    accumulate in exactly the interpreter's sequence.
//! 3. **Disjoint parallel partitions.** `@par` loops run on scoped
//!    threads over contiguous iteration ranges. Lowering only marks
//!    spatial (output-partitioning) loops parallel, so threads write
//!    disjoint slots and each slot's accumulation order is unchanged.
//!
//! Index arithmetic is hoisted: every integer expression is compiled once
//! into a three-address op placed at the loop level of its deepest
//! variable dependency, with hash-consing CSE, so an expression like
//! `(i / 8) * 64` is recomputed only when `i` changes — not per element.

pub mod compile;
pub mod exec;
pub mod ir;

pub use compile::compile;
pub use exec::{default_threads, NativeRunStats};
pub use ir::{KernelStats, NativeKernel};
