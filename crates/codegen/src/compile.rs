//! Lowered-program → native-kernel compilation.
//!
//! The compiler walks the TIR loop tree once. Every symbolic integer
//! expression (store offsets, load offsets, predicate operands) is
//! flattened against the physical buffer strides into a single `Expr`,
//! then compiled to three-address [`IOp`]s with hash-consing CSE: the
//! `Expr` type is hash-comparable, so structurally equal subexpressions
//! share one register. Each op is *placed* in the prologue of the loop
//! whose variable is its deepest dependency — outer-loop-invariant index
//! math is computed once per outer iteration instead of once per element,
//! which is where most of the interpreter's time went.
//!
//! CSE entries are scoped: when a loop is popped, every expression whose
//! defining op lives in that loop's prologue is evicted (its register is
//! stale outside the loop), while expressions hoisted to enclosing loops
//! stay shared across siblings. Group-level (loop-invariant) entries stay
//! valid for the whole program because the register file persists across
//! groups on the executing thread.

use std::collections::HashMap;

use alt_loopir::tir::{BufId, Program, SExpr, Stmt, TirNode};
use alt_loopir::LoopKind;
use alt_sim::MachineProfile;
use alt_tensor::expr::{BinOp, Expr};
use alt_tensor::op::Cond;

use crate::ir::{CGroup, CLoop, CNode, CStmt, FOp, IOp, NativeKernel, VecBody};

/// Symbolic side table of one compiled statement, kept only during
/// compilation to drive the vector-chunk eligibility analysis.
struct StmtSym {
    /// Flattened store-offset expression.
    store_off: Expr,
    /// `(fop index, flattened offset expression)` per load.
    loads: Vec<(usize, Expr)>,
    /// Every condition the statement consults: the store predicate plus
    /// all `Select` conditions.
    conds: Vec<Cond>,
    /// Length of the statement's float program.
    fops_len: usize,
}

struct Scope {
    /// Ops placed at this loop level (the loop's per-iteration prologue).
    ops: Vec<IOp>,
    /// CSE keys whose defining op lives at this level; evicted on pop.
    owned: Vec<Expr>,
}

impl Scope {
    fn new() -> Self {
        Self {
            ops: Vec::new(),
            owned: Vec::new(),
        }
    }
}

struct Compiler {
    /// Row-major physical strides per buffer.
    strides: Vec<Vec<i64>>,
    lanes: u32,
    next_reg: u32,
    const_regs: HashMap<i64, u32>,
    var_regs: HashMap<u32, u32>,
    /// Loop-scope index of each in-scope variable.
    var_scope: HashMap<u32, usize>,
    /// Hash-consing table: expression → (register, defining scope index).
    memo: HashMap<Expr, (u32, usize)>,
    /// Scope stack; index 0 is the group root and never pops.
    scopes: Vec<Scope>,
}

impl Compiler {
    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn const_reg(&mut self, v: i64) -> u32 {
        if let Some(&r) = self.const_regs.get(&v) {
            return r;
        }
        let r = self.fresh();
        self.const_regs.insert(v, r);
        r
    }

    /// Compiles an integer expression; returns its register and the scope
    /// index of its defining op (0 = group-invariant).
    fn compile_expr(&mut self, e: &Expr) -> (u32, usize) {
        match e {
            Expr::Const(v) => (self.const_reg(*v), 0),
            Expr::Var(v) => {
                let reg = *self
                    .var_regs
                    .get(&v.id())
                    .unwrap_or_else(|| panic!("loop variable `{v}` not in scope"));
                (reg, self.var_scope[&v.id()])
            }
            Expr::Bin(op, a, b) => {
                if let Some(&(reg, level)) = self.memo.get(e) {
                    return (reg, level);
                }
                let (ra, la) = self.compile_expr(a);
                let (rb, lb) = self.compile_expr(b);
                let level = la.max(lb);
                let dst = self.fresh();
                self.scopes[level].ops.push(IOp::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                self.memo.insert(e.clone(), (dst, level));
                self.scopes[level].owned.push(e.clone());
                (dst, level)
            }
        }
    }

    /// Compiles a predicate to a `0`/`1` register.
    fn compile_cond(&mut self, c: &Cond) -> (u32, usize) {
        let (mk, a, b): (fn(u32, u32, u32) -> IOp, _, _) = match c {
            Cond::Ge(a, b) => (|dst, a, b| IOp::Ge { dst, a, b }, a, b),
            Cond::Lt(a, b) => (|dst, a, b| IOp::Lt { dst, a, b }, a, b),
            Cond::Eq(a, b) => (|dst, a, b| IOp::Eq { dst, a, b }, a, b),
            Cond::And(l, r) => {
                let (ra, la) = self.compile_cond(l);
                let (rb, lb) = self.compile_cond(r);
                let level = la.max(lb);
                let dst = self.fresh();
                self.scopes[level].ops.push(IOp::And { dst, a: ra, b: rb });
                return (dst, level);
            }
        };
        let (ra, la) = self.compile_expr(a);
        let (rb, lb) = self.compile_expr(b);
        let level = la.max(lb);
        let dst = self.fresh();
        self.scopes[level].ops.push(mk(dst, ra, rb));
        (dst, level)
    }

    /// Flattens multi-dimensional physical indices into one offset
    /// expression against the buffer's row-major strides. The `Expr`
    /// smart constructors constant-fold, so layouts with constant index
    /// components collapse at compile time.
    fn flat_offset(&self, buf: BufId, indices: &[Expr]) -> Expr {
        let strides = &self.strides[buf.0];
        let mut off = Expr::c(0);
        for (e, &s) in indices.iter().zip(strides) {
            off = off.add(&e.mul_c(s));
        }
        off
    }

    /// Compiles a scalar body to a stack program in recursive-descent
    /// (interpreter) order, recording load offsets and `Select`
    /// conditions in `sym`.
    fn compile_sexpr(&mut self, e: &SExpr, fops: &mut Vec<FOp>, sym: &mut StmtSym) {
        match e {
            SExpr::Imm(v) => fops.push(FOp::Imm(*v)),
            SExpr::Load { buf, indices } => {
                let off_sym = self.flat_offset(*buf, indices);
                let (off, _) = self.compile_expr(&off_sym);
                sym.loads.push((fops.len(), off_sym));
                fops.push(FOp::Load {
                    buf: buf.0 as u32,
                    off,
                });
            }
            SExpr::Bin(op, a, b) => {
                self.compile_sexpr(a, fops, sym);
                self.compile_sexpr(b, fops, sym);
                fops.push(FOp::Bin(*op));
            }
            SExpr::Unary(op, a) => {
                self.compile_sexpr(a, fops, sym);
                fops.push(FOp::Un(*op));
            }
            SExpr::Select { cond, then_, else_ } => {
                sym.conds.push(cond.clone());
                let (creg, _) = self.compile_cond(cond);
                let jz = fops.len();
                fops.push(FOp::JumpIfZero { cond: creg, to: 0 });
                self.compile_sexpr(then_, fops, sym);
                let j = fops.len();
                fops.push(FOp::Jump { to: 0 });
                let else_start = fops.len() as u32;
                if let FOp::JumpIfZero { to, .. } = &mut fops[jz] {
                    *to = else_start;
                }
                self.compile_sexpr(else_, fops, sym);
                let end = fops.len() as u32;
                if let FOp::Jump { to } = &mut fops[j] {
                    *to = end;
                }
            }
        }
    }

    fn compile_stmt(&mut self, s: &Stmt) -> (CStmt, StmtSym) {
        let store_off = self.flat_offset(s.buf, &s.indices);
        let (off, _) = self.compile_expr(&store_off);
        let mut sym = StmtSym {
            store_off,
            loads: Vec::new(),
            conds: Vec::new(),
            fops_len: 0,
        };
        let pred = s.pred.as_ref().map(|c| {
            sym.conds.push(c.clone());
            self.compile_cond(c).0
        });
        let mut fops = Vec::new();
        self.compile_sexpr(&s.value, &mut fops, &mut sym);
        sym.fops_len = fops.len();
        (
            CStmt {
                buf: s.buf.0 as u32,
                off,
                pred,
                mode: s.mode,
                fops,
            },
            sym,
        )
    }

    fn compile_nodes(&mut self, nodes: &[TirNode]) -> (Vec<CNode>, Vec<Option<StmtSym>>) {
        let mut out = Vec::with_capacity(nodes.len());
        let mut syms = Vec::with_capacity(nodes.len());
        for node in nodes {
            match node {
                TirNode::Stmt(s) => {
                    let (cs, sym) = self.compile_stmt(s);
                    out.push(CNode::Stmt(cs));
                    syms.push(Some(sym));
                }
                TirNode::Loop {
                    var,
                    extent,
                    kind,
                    body,
                } => {
                    let var_reg = self.fresh();
                    self.var_regs.insert(var.id(), var_reg);
                    self.var_scope.insert(var.id(), self.scopes.len());
                    self.scopes.push(Scope::new());
                    let (cbody, bsyms) = self.compile_nodes(body);
                    let scope = self.scopes.pop().expect("scope pushed above");
                    for key in &scope.owned {
                        self.memo.remove(key);
                    }
                    self.var_regs.remove(&var.id());
                    self.var_scope.remove(&var.id());
                    let vec = if *kind == LoopKind::Vectorized && cbody.len() == 1 {
                        bsyms[0].as_ref().and_then(|sym| vec_body(var.id(), sym))
                    } else {
                        None
                    };
                    out.push(CNode::Loop(CLoop {
                        var_reg,
                        extent: *extent,
                        parallel: *kind == LoopKind::Parallel,
                        lanes: self.lanes,
                        prologue: scope.ops,
                        body: cbody,
                        vec,
                    }));
                    syms.push(None);
                }
            }
        }
        (out, syms)
    }
}

/// Stride of `e` in variable `var` when `e` is affine in it
/// (`e = base + stride·var` with `base` independent of `var`); `None`
/// otherwise. Non-affine uses (`var` under division, modulo, min/max or a
/// variable-scaled product) disqualify the vector fast path.
fn affine_stride(e: &Expr, var: u32) -> Option<i64> {
    match e {
        Expr::Const(_) => Some(0),
        Expr::Var(v) => Some(i64::from(v.id() == var)),
        Expr::Bin(op, a, b) => match op {
            BinOp::Add => Some(affine_stride(a, var)? + affine_stride(b, var)?),
            BinOp::Sub => Some(affine_stride(a, var)? - affine_stride(b, var)?),
            BinOp::Mul => match (a.uses_var(var), b.uses_var(var)) {
                (false, false) => Some(0),
                (true, false) => match **b {
                    Expr::Const(k) => Some(affine_stride(a, var)? * k),
                    _ => None,
                },
                (false, true) => match **a {
                    Expr::Const(k) => Some(affine_stride(b, var)? * k),
                    _ => None,
                },
                (true, true) => None,
            },
            BinOp::FloorDiv | BinOp::Mod | BinOp::Min | BinOp::Max => {
                if e.uses_var(var) {
                    None
                } else {
                    Some(0)
                }
            }
        },
    }
}

fn cond_uses_var(c: &Cond, var: u32) -> bool {
    match c {
        Cond::Ge(a, b) | Cond::Lt(a, b) | Cond::Eq(a, b) => a.uses_var(var) || b.uses_var(var),
        Cond::And(l, r) => cond_uses_var(l, var) || cond_uses_var(r, var),
    }
}

/// Vector-chunk eligibility for a single-statement `@vec` loop body: all
/// offsets affine in the loop variable, no predicate or `Select`
/// condition depending on it. Lanes then differ only by fixed offset
/// strides, so the executor can run the integer prologue once per chunk.
fn vec_body(var: u32, sym: &StmtSym) -> Option<VecBody> {
    if sym.conds.iter().any(|c| cond_uses_var(c, var)) {
        return None;
    }
    let store_stride = affine_stride(&sym.store_off, var)?;
    let mut load_strides = vec![0i64; sym.fops_len];
    for (idx, e) in &sym.loads {
        load_strides[*idx] = affine_stride(e, var)?;
    }
    Some(VecBody {
        store_stride,
        load_strides,
    })
}

/// Compiles a lowered program into a [`NativeKernel`] for the given
/// machine profile (which only contributes the SIMD chunk width; the
/// kernel's *semantics* are profile-independent by construction).
pub fn compile(program: &Program, profile: &MachineProfile) -> NativeKernel {
    let mut c = Compiler {
        strides: program.buffers.iter().map(|b| b.shape.strides()).collect(),
        lanes: profile.vector_lanes.max(1),
        next_reg: 0,
        const_regs: HashMap::new(),
        var_regs: HashMap::new(),
        var_scope: HashMap::new(),
        memo: HashMap::new(),
        scopes: vec![Scope::new()],
    };
    let mut groups = Vec::with_capacity(program.groups.len());
    for g in &program.groups {
        c.scopes[0].ops = Vec::new();
        let (nodes, _) = c.compile_nodes(&g.nodes);
        let prologue = std::mem::take(&mut c.scopes[0].ops);
        groups.push(CGroup {
            label: g.label.clone(),
            prologue,
            nodes,
        });
    }
    let mut consts: Vec<(u32, i64)> = c.const_regs.iter().map(|(&v, &r)| (r, v)).collect();
    consts.sort_unstable();
    NativeKernel {
        groups,
        n_regs: c.next_reg as usize,
        consts,
    }
}
