//! Layout propagation (paper §4.2, Algorithm 1).
//!
//! A [`LayoutPlan`] records the physical layout chosen for every tensor of
//! a graph plus the layout-conversion operators that must be materialized
//! at runtime. Propagation avoids conversions in two ways:
//!
//! * a *simple* producer (padding / elementwise) can yield a consumer's
//!   requested layout directly (Fig. 5b), and
//! * a complex operator's tuned output layout is replicated across
//!   downstream elementwise operators so their loop nests reconstruct
//!   identically and fusion-after-tiling still aligns (Figs. 6/7).

use std::collections::HashMap;

use alt_tensor::{Graph, OpId, OpTag, TensorId};

use crate::primitives::Layout;

/// How aggressively layouts are propagated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropagationMode {
    /// Full ALT behaviour: absorb conversions into simple producers and
    /// replicate output layouts downstream for fusion alignment.
    Full,
    /// The paper's ALT-WP ablation: conversions between adjacent operators
    /// are eliminated (Fig. 5b) but output layouts are *not* replicated
    /// downstream, so fusion conflicts remain.
    WithoutFusionAlign,
    /// No propagation at all: every non-identity layout goes through an
    /// explicit conversion operator.
    None,
}

/// What happened when a layout was assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOutcome {
    /// The producer now yields the layout directly.
    Absorbed,
    /// A runtime conversion operator is required.
    Conversion,
    /// The layout was identity; nothing to do.
    Identity,
}

/// A runtime layout conversion: consumer `consumer` reads tensor `tensor`
/// through a converted copy with layout `layout`.
#[derive(Clone, Debug)]
pub struct Conversion {
    /// The tensor being converted.
    pub tensor: TensorId,
    /// The operator that reads the converted copy.
    pub consumer: OpId,
    /// Layout of the converted copy.
    pub layout: Layout,
}

/// Layout assignment for every tensor of a graph plus required runtime
/// conversions.
#[derive(Clone, Debug)]
pub struct LayoutPlan {
    layouts: HashMap<TensorId, Layout>,
    conversions: Vec<Conversion>,
    /// `guest -> (host, host_dim)` buffer embeddings created by the
    /// `store_at` primitive.
    embeddings: HashMap<TensorId, (TensorId, usize)>,
    mode: PropagationMode,
}

impl LayoutPlan {
    /// Creates an all-identity plan.
    pub fn new(mode: PropagationMode) -> Self {
        Self {
            layouts: HashMap::new(),
            conversions: Vec::new(),
            embeddings: HashMap::new(),
            mode,
        }
    }

    /// The propagation mode of this plan.
    pub fn mode(&self) -> PropagationMode {
        self.mode
    }

    /// The layout of `tensor` as stored by its producer (identity unless
    /// assigned).
    pub fn layout_of(&self, g: &Graph, tensor: TensorId) -> Layout {
        self.layouts
            .get(&tensor)
            .cloned()
            .unwrap_or_else(|| Layout::identity(g.tensor(tensor).shape.clone()))
    }

    /// The layout through which `consumer` reads `tensor` (the conversion
    /// copy if one exists, the stored layout otherwise).
    pub fn layout_for_read(&self, g: &Graph, tensor: TensorId, consumer: OpId) -> Layout {
        if let Some(c) = self.conversion_for(tensor, consumer) {
            return c.layout.clone();
        }
        self.layout_of(g, tensor)
    }

    /// Looks up a conversion registered for an edge.
    pub fn conversion_for(&self, tensor: TensorId, consumer: OpId) -> Option<&Conversion> {
        self.conversions
            .iter()
            .find(|c| c.tensor == tensor && c.consumer == consumer)
    }

    /// All registered conversions.
    pub fn conversions(&self) -> &[Conversion] {
        &self.conversions
    }

    /// Directly sets the stored layout of a tensor (used for parameters,
    /// whose conversion is free because it happens offline, and by tests).
    pub fn set_layout(&mut self, tensor: TensorId, layout: Layout) {
        self.layouts.insert(tensor, layout);
    }

    /// Assigns the layout a complex operator wants for one of its *input*
    /// tensors (paper Fig. 5).
    ///
    /// Parameters are always absorbed (offline packing). Otherwise the
    /// producer absorbs the conversion when it is a simple operator and
    /// the primitive sequence contains no data-expanding primitive
    /// (Algorithm 1 line 3); otherwise a runtime conversion operator is
    /// registered on the edge.
    pub fn assign_input_layout(
        &mut self,
        g: &Graph,
        consumer: OpId,
        tensor: TensorId,
        layout: Layout,
    ) -> AssignOutcome {
        if layout.is_identity() {
            // Re-assigning identity drops any previous decision for this
            // edge (the joint tuner revisits layouts many times).
            self.conversions
                .retain(|c| !(c.tensor == tensor && c.consumer == consumer));
            self.layouts.remove(&tensor);
            return AssignOutcome::Identity;
        }
        let info = g.tensor(tensor);
        // A `store_at` host's layout is pinned: replacing it would strand
        // the embedded guest at a slot that no longer exists.
        if self.embeddings.values().any(|(h, _)| *h == tensor) {
            return AssignOutcome::Absorbed;
        }
        if info.kind == alt_tensor::TensorKind::Param {
            // Constants are packed offline; no runtime cost (§4.2).
            self.layouts.insert(tensor, layout);
            return AssignOutcome::Absorbed;
        }
        // Requesting the layout the tensor is already stored in needs no
        // conversion at all.
        if self
            .layouts
            .get(&tensor)
            .map(|l| l.prims() == layout.prims())
            .unwrap_or(false)
        {
            self.conversions
                .retain(|c| !(c.tensor == tensor && c.consumer == consumer));
            return AssignOutcome::Absorbed;
        }
        let producer_tag = info.producer.map(|p| g.node(p).tag);
        // A padding operator rewrites the whole buffer anyway, so it can
        // materialize even data-expanding layouts directly (Fig. 5b: "the
        // padding operator performs two tasks: padding zeros and
        // converting the layout"). Other simple producers only absorb
        // non-expanding primitive sequences (Algorithm 1, line 3).
        let absorbable = match producer_tag {
            Some(OpTag::Padding) => true,
            Some(OpTag::Elementwise) | Some(OpTag::Other) => !layout.has_advanced(),
            _ => false,
        };
        let absorb = self.mode != PropagationMode::None
            && absorbable
            // Absorbing only works if no other consumer insists on a
            // different view of this tensor; keep it simple and safe by
            // requiring single-consumer edges.
            && info.consumers.len() == 1;
        if absorb {
            self.layouts.insert(tensor, layout);
            AssignOutcome::Absorbed
        } else {
            self.conversions
                .retain(|c| !(c.tensor == tensor && c.consumer == consumer));
            self.conversions.push(Conversion {
                tensor,
                consumer,
                layout,
            });
            AssignOutcome::Conversion
        }
    }

    /// Assigns the tuned *output* layout of a complex operator and, in
    /// [`PropagationMode::Full`], replicates it across downstream
    /// elementwise operators so fusion-after-tiling aligns (Algorithm 1's
    /// queue walk).
    ///
    /// Returns the tensors whose layouts were set.
    pub fn assign_output_layout(&mut self, g: &Graph, op: OpId, layout: Layout) -> Vec<TensorId> {
        let out = g.node(op).output;
        let mut applied = vec![out];
        if layout.is_identity() {
            self.layouts.remove(&out);
            return applied;
        }
        self.layouts.insert(out, layout.clone());
        if self.mode != PropagationMode::Full || layout.has_advanced() {
            return applied;
        }
        // Queue walk: propagate across elementwise consumers with equal
        // shapes, stopping (without conversion) at complex operators.
        let mut queue = vec![out];
        while let Some(s) = queue.pop() {
            let s_shape = g.tensor(s).shape.clone();
            for &o2 in &g.tensor(s).consumers.clone() {
                let node = g.node(o2);
                if node.tag.is_complex() {
                    // The next complex operator tunes its own input layout
                    // (§4.2: no conversion inserted here; a simple op in
                    // between performs the conversion if needed).
                    continue;
                }
                if node.tag != OpTag::Elementwise {
                    continue;
                }
                let t = node.output;
                if g.tensor(t).shape != s_shape {
                    continue;
                }
                if self.layouts.contains_key(&t) {
                    continue;
                }
                // Shape equality was checked above, so replication cannot
                // fail here; skip the tensor defensively if it ever does.
                let Ok(replicated) = self
                    .layout_of(g, s)
                    .replicate_for(g.tensor(t).shape.clone())
                else {
                    continue;
                };
                self.layouts.insert(t, replicated);
                applied.push(t);
                queue.push(t);
            }
        }
        applied
    }

    /// Applies the paper's `store_at` primitive: stores `guest` (a
    /// vector-like constant, e.g. a bias) inline in `host` (e.g. a weight
    /// matrix) along `host_dim`, so consumers touch both in the same
    /// cache lines.
    ///
    /// Restrictions (checked): both tensors must be constants with no
    /// other layout primitives applied, and the guest's shape must equal
    /// the host's shape with `host_dim` removed.
    pub fn store_at(
        &mut self,
        g: &Graph,
        host: TensorId,
        guest: TensorId,
        host_dim: usize,
    ) -> Result<(), crate::primitives::LayoutError> {
        use crate::primitives::{LayoutError, LayoutPrim};
        let hinfo = g.tensor(host);
        let ginfo = g.tensor(guest);
        if hinfo.kind != alt_tensor::TensorKind::Param
            || ginfo.kind != alt_tensor::TensorKind::Param
        {
            return Err(LayoutError::NotInvertible(
                "store_at requires constant tensors",
            ));
        }
        if !self.layout_of(g, host).is_identity() || !self.layout_of(g, guest).is_identity() {
            return Err(LayoutError::NotInvertible(
                "store_at requires untransformed layouts",
            ));
        }
        let mut expect: Vec<i64> = hinfo.shape.dims().to_vec();
        if host_dim >= expect.len() {
            return Err(LayoutError::BadDim {
                dim: host_dim,
                ndim: expect.len(),
            });
        }
        expect.remove(host_dim);
        if ginfo.shape.dims() != expect.as_slice() {
            return Err(LayoutError::NotInvertible(
                "guest shape must equal host shape minus host_dim",
            ));
        }
        let host_layout = Layout::identity(hinfo.shape.clone())
            .with(LayoutPrim::StoreAtHost { dim: host_dim })?;
        self.layouts.insert(host, host_layout);
        self.embeddings.insert(guest, (host, host_dim));
        Ok(())
    }

    /// The host buffer a tensor is embedded in via `store_at`, if any.
    pub fn embedding_of(&self, tensor: TensorId) -> Option<(TensorId, usize)> {
        self.embeddings.get(&tensor).copied()
    }

    /// All embeddings (`guest -> (host, dim)`).
    pub fn embeddings(&self) -> impl Iterator<Item = (&TensorId, &(TensorId, usize))> {
        self.embeddings.iter()
    }

    /// Clears all decisions (used between joint-tuning episodes).
    pub fn reset(&mut self) {
        self.layouts.clear();
        self.conversions.clear();
        self.embeddings.clear();
    }

    /// Iterates over all explicitly assigned layouts.
    pub fn assigned(&self) -> impl Iterator<Item = (&TensorId, &Layout)> {
        self.layouts.iter()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::presets;
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    /// pad -> C2D -> bias -> relu -> C2D chain used by several tests.
    fn sample_graph() -> (Graph, TensorId, OpId, TensorId, OpId) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 14, 14]));
        let w1 = g.add_param("w1", Shape::new([16, 8, 3, 3]));
        let padded = ops::pad2d_spatial(&mut g, x, 1);
        let c1 = ops::conv2d(&mut g, padded, w1, ConvCfg::default());
        let r = ops::relu(&mut g, c1);
        let w2 = g.add_param("w2", Shape::new([32, 16, 1, 1]));
        let c2 = ops::conv2d(&mut g, r, w2, ConvCfg::default());
        let conv1_op = g.tensor(c1).producer.unwrap();
        let conv2_op = g.tensor(c2).producer.unwrap();
        (g, padded, conv1_op, c1, conv2_op)
    }

    #[test]
    fn padding_absorbs_simple_input_layout() {
        let (g, padded, conv1, _, _) = sample_graph();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout = presets::nhwo(g.tensor(padded).shape.clone()).unwrap();
        let outcome = plan.assign_input_layout(&g, conv1, padded, layout.clone());
        assert_eq!(outcome, AssignOutcome::Absorbed);
        assert_eq!(plan.layout_of(&g, padded), layout);
        assert!(plan.conversions().is_empty());
    }

    #[test]
    fn unfolded_input_layout_absorbed_by_padding() {
        let (g, padded, conv1, _, _) = sample_graph();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout =
            presets::c2d_input_tiled(g.tensor(padded).shape.clone(), 8, 7, 7, 1, 3, 3).unwrap();
        let outcome = plan.assign_input_layout(&g, conv1, padded, layout.clone());
        // The padding producer materializes even the unfolded layout
        // directly (Fig. 5b).
        assert_eq!(outcome, AssignOutcome::Absorbed);
        assert_eq!(plan.layout_of(&g, padded), layout);
    }

    #[test]
    fn param_layout_is_free() {
        let (g, _, conv1, _, _) = sample_graph();
        let w1 = g.node(conv1).inputs[1];
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout = presets::c2d_weight_tiled(g.tensor(w1).shape.clone(), 8, 16).unwrap();
        assert_eq!(
            plan.assign_input_layout(&g, conv1, w1, layout),
            AssignOutcome::Absorbed
        );
        assert!(plan.conversions().is_empty());
    }

    #[test]
    fn output_layout_replicates_across_elementwise() {
        let (g, _, conv1, c1_out, conv2) = sample_graph();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout = presets::channel_tiled(g.tensor(c1_out).shape.clone(), 8).unwrap();
        let applied = plan.assign_output_layout(&g, conv1, layout.clone());
        // conv1 output and the relu output both get the layout; conv2
        // tunes its own input so propagation stops there.
        assert_eq!(applied.len(), 2);
        let relu_out = g.node(conv2).inputs[0];
        assert_eq!(plan.layout_of(&g, relu_out).prims(), layout.prims());
        assert!(plan.conversions().is_empty());
    }

    #[test]
    fn without_fusion_align_stops_at_direct_output() {
        let (g, _, conv1, c1_out, conv2) = sample_graph();
        let mut plan = LayoutPlan::new(PropagationMode::WithoutFusionAlign);
        let layout = presets::channel_tiled(g.tensor(c1_out).shape.clone(), 8).unwrap();
        let applied = plan.assign_output_layout(&g, conv1, layout);
        assert_eq!(applied, vec![c1_out]);
        let relu_out = g.node(conv2).inputs[0];
        assert!(plan.layout_of(&g, relu_out).is_identity());
    }

    #[test]
    fn mode_none_always_converts() {
        let (g, padded, conv1, _, _) = sample_graph();
        let mut plan = LayoutPlan::new(PropagationMode::None);
        let layout = presets::nhwo(g.tensor(padded).shape.clone()).unwrap();
        assert_eq!(
            plan.assign_input_layout(&g, conv1, padded, layout),
            AssignOutcome::Conversion
        );
        assert_eq!(plan.conversions().len(), 1);
    }

    #[test]
    fn identity_assignment_clears_previous() {
        let (g, padded, conv1, _, _) = sample_graph();
        let mut plan = LayoutPlan::new(PropagationMode::None);
        let layout = presets::nhwo(g.tensor(padded).shape.clone()).unwrap();
        plan.assign_input_layout(&g, conv1, padded, layout);
        assert_eq!(plan.conversions().len(), 1);
        let ident = Layout::identity(g.tensor(padded).shape.clone());
        assert_eq!(
            plan.assign_input_layout(&g, conv1, padded, ident),
            AssignOutcome::Identity
        );
        assert!(plan.conversions().is_empty());
    }

    #[test]
    fn elementwise_producer_rejects_advanced_layouts() {
        // relu -> C2D: an unfolded input layout must go through a
        // conversion because relu is not a buffer-rewriting pad.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 16, 16]));
        let r = alt_tensor::ops::relu(&mut g, x);
        let w = g.add_param("w", Shape::new([8, 8, 3, 3]));
        let c = alt_tensor::ops::conv2d(&mut g, r, w, ConvCfg::default());
        let conv = g.tensor(c).producer.unwrap();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let layout =
            crate::presets::c2d_input_tiled(g.tensor(r).shape.clone(), 8, 7, 7, 1, 3, 3).unwrap();
        assert_eq!(
            plan.assign_input_layout(&g, conv, r, layout),
            AssignOutcome::Conversion
        );
    }

    #[test]
    fn diamond_first_producer_wins_propagation() {
        // Paper §6: for an elementwise op with multiple tuned producers,
        // the first propagated layout is kept (heuristically "choose X0").
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 10, 10]));
        let w1 = g.add_param("w1", Shape::new([8, 8, 1, 1]));
        let w2 = g.add_param("w2", Shape::new([8, 8, 1, 1]));
        let c1 = ops::conv2d(&mut g, x, w1, ConvCfg::default());
        let c2 = ops::conv2d(&mut g, x, w2, ConvCfg::default());
        let s = ops::add(&mut g, c1, c2);
        let op1 = g.tensor(c1).producer.unwrap();
        let op2 = g.tensor(c2).producer.unwrap();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        let l1 = crate::presets::channel_tiled(g.tensor(c1).shape.clone(), 4).unwrap();
        let l2 = crate::presets::nhwo(g.tensor(c2).shape.clone()).unwrap();
        let a1 = plan.assign_output_layout(&g, op1, l1.clone());
        // op1's layout reaches the add's output.
        assert!(a1.contains(&s));
        let a2 = plan.assign_output_layout(&g, op2, l2);
        // op2's propagation stops at the already-assigned add output.
        assert_eq!(a2, vec![c2]);
        assert_eq!(plan.layout_of(&g, s).prims(), l1.prims());
    }

    #[test]
    fn store_at_host_layout_is_pinned() {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([6, 10]));
        let w = g.add_param("w", Shape::new([10, 8]));
        let b = g.add_param("b", Shape::new([8]));
        let c = alt_tensor::ops::gmm(&mut g, a, w);
        let op = g.tensor(c).producer.unwrap();
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.store_at(&g, w, b, 0).unwrap();
        let before = plan.layout_of(&g, w);
        // A later tuner attempt to re-layout the host must be a no-op.
        let tiled = crate::presets::gmm_tiled(g.tensor(w).shape.clone(), 5, 4).unwrap();
        assert_eq!(
            plan.assign_input_layout(&g, op, w, tiled),
            AssignOutcome::Absorbed
        );
        assert_eq!(plan.layout_of(&g, w).prims(), before.prims());
    }
}
