//! Integer-set relation semantics for layouts (paper-adjacent: "Modeling
//! Layout Abstractions Using Integer Set Relations").
//!
//! [`SetBuilder`] translates the quasi-affine index [`Expr`] language into
//! `alt-isl` constraints: `floordiv`/`mod` by positive constants become
//! existentially quantified quotient/remainder pairs, `min`/`max` become
//! two-way disjunctions, and a product with a {0,1}-bounded factor (the
//! shape every per-bit XOR term takes) is encoded exactly with one
//! auxiliary variable and four inequalities. Anything outside that
//! fragment returns `None` and callers fall back to interval reasoning.
//!
//! On top of the builder, [`prim_relation`] gives every [`LayoutPrim`] a
//! logical→physical [`Relation`] (canonical placement for the
//! one-to-many `unfold`), and [`Layout::to_relation`] composes the chain
//! exactly — the single source of truth the `alt-verify` set engine
//! checks accesses against.

use std::collections::{BTreeMap, HashMap};

use alt_isl::{BasicSet, Coeff, Relation, Set};
use alt_tensor::expr::{BinOp, Expr, VarGen};
use alt_tensor::op::Cond;

use crate::primitives::{rewrite_forward, Layout, LayoutPrim, VarExtents};

/// Cap on disjunction contexts a single builder may fan out to
/// (`min`/`max`/`≠` each double the frontier).
const MAX_CTXS: usize = 24;

/// An affine form over the builder's current variables, with a
/// conservative value range used to legalize products and tighten
/// `mod` results. `None` endpoints mean "unbounded/unknown".
#[derive(Clone, Debug)]
struct Aff {
    terms: BTreeMap<usize, Coeff>,
    konst: Coeff,
    lo: Option<Coeff>,
    hi: Option<Coeff>,
}

fn radd(a: Option<Coeff>, b: Option<Coeff>) -> Option<Coeff> {
    a?.checked_add(b?)
}

fn rmin(a: Option<Coeff>, b: Option<Coeff>) -> Option<Coeff> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        _ => None,
    }
}

fn rmax(a: Option<Coeff>, b: Option<Coeff>) -> Option<Coeff> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        _ => None,
    }
}

impl Aff {
    fn konst(c: Coeff) -> Self {
        Aff {
            terms: BTreeMap::new(),
            konst: c,
            lo: Some(c),
            hi: Some(c),
        }
    }

    fn dim(d: usize, extent: Coeff) -> Self {
        Aff {
            terms: BTreeMap::from([(d, 1)]),
            konst: 0,
            lo: Some(0),
            hi: Some(extent - 1),
        }
    }

    fn div_var(d: usize, lo: Option<Coeff>, hi: Option<Coeff>) -> Self {
        Aff {
            terms: BTreeMap::from([(d, 1)]),
            konst: 0,
            lo,
            hi,
        }
    }

    fn is_const(&self) -> Option<Coeff> {
        self.terms.is_empty().then_some(self.konst)
    }

    fn add(&self, o: &Aff) -> Option<Aff> {
        let mut terms = self.terms.clone();
        for (&d, &c) in &o.terms {
            let e = terms.entry(d).or_insert(0);
            *e = e.checked_add(c)?;
        }
        terms.retain(|_, c| *c != 0);
        Some(Aff {
            terms,
            konst: self.konst.checked_add(o.konst)?,
            lo: radd(self.lo, o.lo),
            hi: radd(self.hi, o.hi),
        })
    }

    fn scale(&self, k: Coeff) -> Option<Aff> {
        let mut terms = BTreeMap::new();
        for (&d, &c) in &self.terms {
            let v = c.checked_mul(k)?;
            if v != 0 {
                terms.insert(d, v);
            }
        }
        let smul = |e: Option<Coeff>| e.and_then(|v| v.checked_mul(k));
        let (lo, hi) = if k >= 0 {
            (smul(self.lo), smul(self.hi))
        } else {
            (smul(self.hi), smul(self.lo))
        };
        Some(Aff {
            terms,
            konst: self.konst.checked_mul(k)?,
            lo,
            hi,
        })
    }

    fn sub(&self, o: &Aff) -> Option<Aff> {
        self.add(&o.scale(-1)?)
    }

    /// Is this form provably {0,1}-valued?
    fn is_bit(&self) -> bool {
        self.lo == Some(0) && self.hi == Some(1)
    }
}

/// Adds `Σ scaleᵢ·affᵢ + Σ extra + konst ≥ 0` (or `= 0`) to `bs`.
fn push_row(
    bs: &mut BasicSet,
    parts: &[(Coeff, &Aff)],
    extra: &[(usize, Coeff)],
    konst: Coeff,
    equality: bool,
) -> Option<()> {
    let mut terms: BTreeMap<usize, Coeff> = BTreeMap::new();
    let mut k = konst;
    for &(s, aff) in parts {
        for (&d, &c) in &aff.terms {
            let e = terms.entry(d).or_insert(0);
            *e = e.checked_add(c.checked_mul(s)?)?;
        }
        k = k.checked_add(aff.konst.checked_mul(s)?)?;
    }
    for &(d, c) in extra {
        let e = terms.entry(d).or_insert(0);
        *e = e.checked_add(c)?;
    }
    let row: Vec<(usize, Coeff)> = terms.into_iter().collect();
    if equality {
        bs.add_eq(&row, k);
    } else {
        bs.add_ge(&row, k);
    }
    Some(())
}

/// Incremental translator from index expressions and conditions over a
/// fixed dimension space into an `alt-isl` [`Set`] (a union of basic
/// sets; disjunctions come from `min`/`max`/negations).
pub struct SetBuilder {
    n_dim: usize,
    env: HashMap<u32, (usize, i64)>,
    parts: Vec<BasicSet>,
}

impl SetBuilder {
    /// A builder over `n_dim` dimensions. `vars` maps expression
    /// variables to dimensions: `(var id, dim index, extent)`; each
    /// listed dimension gets the box bound `0 ≤ dim < extent`.
    #[must_use]
    pub fn new(n_dim: usize, vars: &[(u32, usize, i64)]) -> Self {
        let mut bs = BasicSet::universe(n_dim);
        let mut env = HashMap::new();
        for &(id, dim, extent) in vars {
            env.insert(id, (dim, extent));
            bs.bound(dim, 0, Coeff::from(extent));
        }
        SetBuilder {
            n_dim,
            env,
            parts: vec![bs],
        }
    }

    /// Replaces the variable→dimension mapping without touching the
    /// accumulated constraints. Used for "two copies of the same loop
    /// nest" queries (race detection): pin expressions once per copy
    /// with different target dimensions.
    pub fn set_env(&mut self, vars: &[(u32, usize, i64)]) {
        self.env = vars.iter().map(|&(id, d, e)| (id, (d, e))).collect();
    }

    /// Adds the box bound `0 ≤ dim < extent` to every current context
    /// (for dimensions not covered by the constructor's `vars`).
    pub fn bound_dim(&mut self, dim: usize, extent: i64) {
        for bs in &mut self.parts {
            bs.bound(dim, 0, Coeff::from(extent));
        }
    }

    /// Constrains `dim == e`. Returns `false` if the expression falls
    /// outside the supported quasi-affine fragment (caller should fall
    /// back to conservative analysis).
    #[must_use]
    pub fn pin(&mut self, e: &Expr, dim: usize) -> bool {
        let parts = std::mem::take(&mut self.parts);
        let mut next = Vec::new();
        for bs in parts {
            let Some(ctxs) = self.build(e, bs) else {
                return false;
            };
            for (mut bs, aff) in ctxs {
                if push_row(&mut bs, &[(1, &aff)], &[(dim, -1)], 0, true).is_none() {
                    return false;
                }
                next.push(bs);
            }
        }
        if next.len() > MAX_CTXS {
            return false;
        }
        self.parts = next;
        true
    }

    /// Conjoins a condition (or its negation). Returns `false` when
    /// unsupported.
    #[must_use]
    pub fn add_cond(&mut self, c: &Cond, negate: bool) -> bool {
        match (c, negate) {
            (Cond::And(l, r), false) => self.add_cond(l, false) && self.add_cond(r, false),
            (Cond::And(l, r), true) => {
                // ¬(l ∧ r) = ¬l ∨ ¬r: fork the context set.
                let saved = self.parts.clone();
                if !self.add_cond(l, true) {
                    return false;
                }
                let left = std::mem::replace(&mut self.parts, saved);
                if !self.add_cond(r, true) {
                    return false;
                }
                self.parts.extend(left);
                self.parts.len() <= MAX_CTXS
            }
            // a ≥ b  ⇔  a − b ≥ 0; ¬(a < b) is the same. The negation
            // (and a < b itself) is the strict reverse: b − a − 1 ≥ 0.
            (Cond::Ge(a, b), false) | (Cond::Lt(a, b), true) => self.constrain_ge(a, b),
            (Cond::Ge(a, b), true) | (Cond::Lt(a, b), false) => self.constrain_ge_strict(b, a),
            (Cond::Eq(a, b), false) => self.constrain_eq(a, b),
            (Cond::Eq(a, b), true) => {
                let saved = self.parts.clone();
                if !self.constrain_ge_strict(a, b) {
                    return false;
                }
                let gt = std::mem::replace(&mut self.parts, saved);
                if !self.constrain_ge_strict(b, a) {
                    return false;
                }
                self.parts.extend(gt);
                self.parts.len() <= MAX_CTXS
            }
        }
    }

    /// Constrains `dim d1 ≠ dim d2` by forking every context into the
    /// `d1 > d2` and `d1 < d2` half-spaces. Returns `false` past the
    /// disjunct cap.
    #[must_use]
    pub fn require_dims_differ(&mut self, d1: usize, d2: usize) -> bool {
        let parts = std::mem::take(&mut self.parts);
        let mut next = Vec::with_capacity(parts.len() * 2);
        for bs in parts {
            let mut gt = bs.clone();
            gt.add_ge(&[(d1, 1), (d2, -1)], -1);
            next.push(gt);
            let mut lt = bs;
            lt.add_ge(&[(d2, 1), (d1, -1)], -1);
            next.push(lt);
        }
        if next.len() > MAX_CTXS {
            return false;
        }
        self.parts = next;
        true
    }

    /// The accumulated union of contexts.
    #[must_use]
    pub fn finish(self) -> Set {
        let mut s = Set::empty(self.n_dim);
        for p in self.parts {
            s.push(p);
        }
        s
    }

    fn constrain_pair(&mut self, a: &Expr, b: &Expr, konst: Coeff, equality: bool) -> bool {
        // Σ: a − b + konst (≥ or =) 0.
        let parts = std::mem::take(&mut self.parts);
        let mut next = Vec::new();
        for bs in parts {
            let Some(actxs) = self.build(a, bs) else {
                return false;
            };
            for (bs1, aff_a) in actxs {
                let Some(bctxs) = self.build(b, bs1) else {
                    return false;
                };
                for (mut bs2, aff_b) in bctxs {
                    if push_row(&mut bs2, &[(1, &aff_a), (-1, &aff_b)], &[], konst, equality)
                        .is_none()
                    {
                        return false;
                    }
                    next.push(bs2);
                }
            }
        }
        if next.len() > MAX_CTXS {
            return false;
        }
        self.parts = next;
        true
    }

    fn constrain_ge(&mut self, a: &Expr, b: &Expr) -> bool {
        self.constrain_pair(a, b, 0, false)
    }

    /// `a > b`, i.e. `a − b − 1 ≥ 0`.
    fn constrain_ge_strict(&mut self, a: &Expr, b: &Expr) -> bool {
        self.constrain_pair(a, b, -1, false)
    }

    fn constrain_eq(&mut self, a: &Expr, b: &Expr) -> bool {
        self.constrain_pair(a, b, 0, true)
    }

    /// Recursive translation: returns, per disjunct, the context set and
    /// the affine form of `e` in it.
    fn build(&self, e: &Expr, bs: BasicSet) -> Option<Vec<(BasicSet, Aff)>> {
        match e {
            Expr::Const(c) => Some(vec![(bs, Aff::konst(Coeff::from(*c)))]),
            Expr::Var(v) => {
                let &(dim, extent) = self.env.get(&v.id())?;
                Some(vec![(bs, Aff::dim(dim, Coeff::from(extent)))])
            }
            Expr::Bin(op, l, r) => {
                let mut out = Vec::new();
                for (bs1, a) in self.build(l, bs)? {
                    for (bs2, b) in self.build(r, bs1.clone())? {
                        self.combine(*op, &a, &b, bs2, &mut out)?;
                        if out.len() > MAX_CTXS {
                            return None;
                        }
                    }
                }
                Some(out)
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn combine(
        &self,
        op: BinOp,
        a: &Aff,
        b: &Aff,
        mut bs: BasicSet,
        out: &mut Vec<(BasicSet, Aff)>,
    ) -> Option<()> {
        match op {
            BinOp::Add => out.push((bs, a.add(b)?)),
            BinOp::Sub => out.push((bs, a.sub(b)?)),
            BinOp::Mul => {
                if let Some(k) = b.is_const() {
                    out.push((bs, a.scale(k)?));
                } else if let Some(k) = a.is_const() {
                    out.push((bs, b.scale(k)?));
                } else {
                    let (bit, other) = if a.is_bit() {
                        (a, b)
                    } else if b.is_bit() {
                        (b, a)
                    } else {
                        return None; // general bilinear: unsupported
                    };
                    // w = bit·other with L ≤ other ≤ U, exactly:
                    //   L·bit ≤ w ≤ U·bit
                    //   other − U·(1−bit) ≤ w ≤ other − L·(1−bit)
                    let (l, u) = (other.lo?, other.hi?);
                    let w = bs.new_div();
                    // U·bit − w ≥ 0
                    push_row(&mut bs, &[(u, bit)], &[(w, -1)], 0, false)?;
                    // w − L·bit ≥ 0
                    push_row(&mut bs, &[(l.checked_neg()?, bit)], &[(w, 1)], 0, false)?;
                    // (other − L + L·bit) − w ≥ 0
                    push_row(
                        &mut bs,
                        &[(1, other), (l, bit)],
                        &[(w, -1)],
                        l.checked_neg()?,
                        false,
                    )?;
                    // w − (other − U + U·bit) ≥ 0
                    push_row(
                        &mut bs,
                        &[(-1, other), (u.checked_neg()?, bit)],
                        &[(w, 1)],
                        u,
                        false,
                    )?;
                    out.push((bs, Aff::div_var(w, Some(l.min(0)), Some(u.max(0)))));
                }
            }
            BinOp::FloorDiv | BinOp::Mod => {
                let c = b.is_const()?;
                if c <= 0 {
                    return None;
                }
                // a = c·q + r, 0 ≤ r < c — the exact Euclidean pair.
                let q = bs.new_div();
                let r = bs.new_div();
                push_row(&mut bs, &[(1, a)], &[(q, -c), (r, -1)], 0, true)?;
                bs.bound(r, 0, c);
                let qlo = a.lo.map(|v| v.div_euclid(c));
                let qhi = a.hi.map(|v| v.div_euclid(c));
                if op == BinOp::FloorDiv {
                    out.push((bs, Aff::div_var(q, qlo, qhi)));
                } else {
                    // Tighten the remainder when the whole range sits in
                    // one quotient block.
                    let (rlo, rhi) = match (a.lo, a.hi, qlo, qhi) {
                        (Some(l), Some(h), Some(ql), Some(qh)) if ql == qh => {
                            (l - c * ql, h - c * ql)
                        }
                        _ => (0, c - 1),
                    };
                    out.push((bs, Aff::div_var(r, Some(rlo), Some(rhi))));
                }
            }
            BinOp::Min => {
                // Branch 1: a ≤ b, result a; branch 2: b < a, result b.
                let mut le = bs.clone();
                push_row(&mut le, &[(1, b), (-1, a)], &[], 0, false)?;
                let mut aa = a.clone();
                aa.hi = rmin(a.hi, b.hi);
                out.push((le, aa));
                push_row(&mut bs, &[(1, a), (-1, b)], &[], -1, false)?;
                let mut bb = b.clone();
                bb.hi = rmin(a.hi, b.hi);
                out.push((bs, bb));
            }
            BinOp::Max => {
                let mut ge = bs.clone();
                push_row(&mut ge, &[(1, a), (-1, b)], &[], 0, false)?;
                let mut aa = a.clone();
                aa.lo = rmax(a.lo, b.lo);
                out.push((ge, aa));
                push_row(&mut bs, &[(1, b), (-1, a)], &[], -1, false)?;
                let mut bb = b.clone();
                bb.lo = rmax(a.lo, b.lo);
                out.push((bs, bb));
            }
        }
        Some(())
    }
}

/// The logical→physical relation of one primitive applied at
/// `shape_before`: `{ x → y : y = rewrite(prim, x), 0 ≤ x < shape }`.
///
/// For the one-to-many `unfold` this is the *canonical placement*
/// function (the slot `rewrite_access` picks with no window pattern),
/// matching what consumers are actually lowered against. Returns `None`
/// when the rewrite falls outside the supported quasi-affine fragment.
#[must_use]
pub fn prim_relation(prim: &LayoutPrim, shape_before: &[i64]) -> Option<Relation> {
    let n_in = shape_before.len();
    let mut gen = VarGen::new();
    let vars: Vec<alt_tensor::expr::Var> = (0..n_in).map(|k| gen.fresh(&format!("x{k}"))).collect();
    let exprs: Vec<Expr> = vars.iter().map(Expr::v).collect();
    let outs = rewrite_forward(prim, shape_before, &exprs, &VarExtents::new());
    let n_out = outs.len();
    let env: Vec<(u32, usize, i64)> = vars
        .iter()
        .enumerate()
        .map(|(k, v)| (v.id(), k, shape_before[k]))
        .collect();
    let mut builder = SetBuilder::new(n_in + n_out, &env);
    for (j, e) in outs.iter().enumerate() {
        if !builder.pin(e, n_in + j) {
            return None;
        }
    }
    Some(Relation::from_set(n_in, n_out, builder.finish()))
}

impl Layout {
    /// The exact logical→physical relation of the whole primitive chain
    /// (composition of [`prim_relation`]s), with the logical box as its
    /// domain. `None` when any link is unsupported or composition
    /// exceeds the disjunct cap.
    #[must_use]
    pub fn to_relation(&self) -> Option<Relation> {
        let dims = self.logical_shape().dims();
        let mut rel: Option<Relation> = None;
        let mut shape: &[i64] = dims;
        let mut shapes_iter = self.shape_chain().iter();
        let _ = shapes_iter.next(); // skip logical shape
        for prim in self.prims() {
            let link = prim_relation(prim, shape)?;
            rel = Some(match rel {
                None => link,
                Some(r) => r.compose(&link)?,
            });
            shape = shapes_iter.next()?;
        }
        match rel {
            Some(r) => Some(r),
            None => {
                // Identity layout: identity relation on the logical box.
                let mut bs = BasicSet::universe(2 * dims.len());
                for (k, &d) in dims.iter().enumerate() {
                    bs.bound(k, 0, Coeff::from(d));
                    bs.add_eq(&[(k, 1), (dims.len() + k, -1)], 0);
                }
                Some(Relation::from_set(
                    dims.len(),
                    dims.len(),
                    Set::from_basic(bs),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use alt_isl::{BasicSet, Coeff, Set, Verdict};
    use alt_tensor::shape::Shape;

    use crate::primitives::{Layout, LayoutPrim};

    /// Enumerates every logical point of `layout` and checks the relation
    /// maps each singleton to exactly the physical point the expression
    /// rewriter produces.
    fn assert_relation_matches_rewrites(layout: &Layout) {
        let rel = layout.to_relation().expect("relation should build");
        let dims = layout.logical_shape().dims().to_vec();
        let total: i64 = dims.iter().product();
        for lin in 0..total {
            let mut rem = lin;
            let mut idx = vec![0i64; dims.len()];
            for k in (0..dims.len()).rev() {
                idx[k] = rem % dims[k];
                rem /= dims[k];
            }
            let expected = layout.logical_to_physical(&idx).unwrap();
            let mut point = BasicSet::universe(dims.len());
            for (k, &v) in idx.iter().enumerate() {
                point.fix(k, Coeff::from(v));
            }
            let image = rel.apply(&Set::from_basic(point)).expect("apply");
            let got = image.sample().expect("image should be a single point");
            assert_eq!(got, expected, "logical {idx:?}");
            // And nothing else is in the image: per coordinate, excluding
            // the expected value must leave the image empty.
            for (j, &e) in expected.iter().enumerate() {
                let mut not_e = image.clone();
                let mut above = BasicSet::universe(expected.len());
                above.add_ge(&[(j, 1)], -Coeff::from(e) - 1); // y_j > e
                let mut below = BasicSet::universe(expected.len());
                below.add_ge(&[(j, -1)], Coeff::from(e) - 1); // y_j < e
                let mut differs = Set::empty(expected.len());
                differs.push(above);
                differs.push(below);
                not_e = not_e.intersect(&differs).expect("intersect");
                assert_eq!(
                    not_e.is_empty(),
                    Verdict::Yes,
                    "image of {idx:?} has a point with y[{j}] != {e}"
                );
            }
        }
    }

    /// Exhaustive polarity check of `add_cond` against direct evaluation:
    /// for every condition shape, the encoded set over `0 ≤ k < 8` must
    /// contain exactly the points where the condition (or its negation)
    /// holds — including through a `min`-clamped quasi-affine index, the
    /// shape `unfold` lowering produces.
    #[test]
    fn add_cond_matches_direct_evaluation() {
        use alt_tensor::expr::{Env, Expr, VarGen};
        use alt_tensor::op::Cond;

        use crate::relation::SetBuilder;

        let mut g = VarGen::new();
        let k = g.fresh("k");
        // idx = k − 3·min(k/3, 2): the unfold canonical placement.
        let idx = Expr::v(&k).sub(&Expr::v(&k).div_c(3).min_e(&Expr::c(2)).mul_c(3));
        let conds: Vec<Cond> = vec![
            Cond::Lt(idx.clone(), Expr::c(0)),
            Cond::Ge(idx.clone(), Expr::c(4)),
            Cond::Lt(Expr::v(&k), Expr::c(3)),
            Cond::Ge(Expr::v(&k), Expr::c(6)),
            Cond::Eq(idx.clone(), Expr::c(1)),
            Cond::Lt(Expr::v(&k), Expr::c(5)).and(Cond::Ge(idx.clone(), Expr::c(1))),
        ];
        for c in &conds {
            for negate in [false, true] {
                let mut b = SetBuilder::new(1, &[(k.id(), 0, 8)]);
                assert!(b.add_cond(c, negate), "encodable: {c:?}");
                let set = b.finish();
                for v in 0..8i64 {
                    let mut env = Env::new();
                    env.bind(&k, v);
                    let holds = c.eval(&env) != negate;
                    let mut point = BasicSet::universe(1);
                    point.fix(0, Coeff::from(v));
                    let hit = set.intersect(&Set::from_basic(point)).unwrap().is_empty();
                    assert_eq!(
                        hit,
                        if holds { Verdict::No } else { Verdict::Yes },
                        "cond {c:?} negate={negate} at k={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_reorder_chain_is_exact() {
        let layout = Layout::identity(Shape::new(vec![4, 6]))
            .with(LayoutPrim::Split {
                dim: 1,
                factors: vec![2, 3],
            })
            .unwrap()
            .with(LayoutPrim::Reorder {
                perm: vec![1, 0, 2],
            })
            .unwrap();
        assert_relation_matches_rewrites(&layout);
    }

    #[test]
    fn fuse_and_pad_are_exact() {
        let layout = Layout::identity(Shape::new(vec![3, 4]))
            .with(LayoutPrim::Pad {
                dim: 1,
                before: 1,
                after: 2,
            })
            .unwrap()
            .with(LayoutPrim::Fuse { start: 0, count: 2 })
            .unwrap();
        assert_relation_matches_rewrites(&layout);
    }

    #[test]
    fn swizzle_relation_is_exact() {
        let layout = Layout::identity(Shape::new(vec![4, 8]))
            .with(LayoutPrim::Swizzle {
                dim: 1,
                src: 0,
                bits: 2,
            })
            .unwrap();
        assert_relation_matches_rewrites(&layout);
    }

    #[test]
    fn morton_relation_is_exact() {
        let layout = Layout::identity(Shape::new(vec![4, 4]))
            .with(LayoutPrim::Morton { dim: 0 })
            .unwrap();
        assert_relation_matches_rewrites(&layout);
    }

    #[test]
    fn block_diag_relation_is_exact() {
        let layout = Layout::identity(Shape::new(vec![3, 5]))
            .with(LayoutPrim::BlockDiag {
                dim: 1,
                src: 0,
                block: 2,
            })
            .unwrap();
        assert_relation_matches_rewrites(&layout);
    }

    #[test]
    fn identity_layout_relation_is_identity_on_box() {
        let layout = Layout::identity(Shape::new(vec![2, 3]));
        assert_relation_matches_rewrites(&layout);
        let rel = layout.to_relation().unwrap();
        // (1, 2) -> (1, 2) is in; (1, 2) -> (2, 2) is not.
        let mut inside = BasicSet::universe(4);
        for (k, v) in [1i64, 2, 1, 2].into_iter().enumerate() {
            inside.fix(k, Coeff::from(v));
        }
        let graph = rel.as_set();
        assert_eq!(
            graph
                .intersect(&Set::from_basic(inside))
                .unwrap()
                .is_empty(),
            Verdict::No
        );
        let mut outside = BasicSet::universe(4);
        for (k, v) in [1i64, 2, 2, 2].into_iter().enumerate() {
            outside.fix(k, Coeff::from(v));
        }
        assert_eq!(
            graph
                .intersect(&Set::from_basic(outside))
                .unwrap()
                .is_empty(),
            Verdict::Yes
        );
    }
}
