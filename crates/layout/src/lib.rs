//! Data-layout transformation for the ALT reproduction (paper §4.1–4.2).
//!
//! * [`primitives`] — the layout primitives (`split`, `reorder`, `fuse`,
//!   `unfold`, `pad`, `store_at`) and the [`primitives::Layout`] type that
//!   rewrites physical shapes and access expressions.
//! * [`presets`] — constructors for the named layouts the paper evaluates
//!   (`NHWO`, `HWON`, `N O/ot H W ot`, the §5.1 tiling templates, ...).
//! * [`propagation`] — the layout-propagation mechanism (Algorithm 1) that
//!   eliminates conversion and fusion-conflict overheads.
//! * [`relation`] — exact integer-set semantics: every primitive (and the
//!   whole chain) as a quasi-affine logical→physical relation, the input
//!   to the set-based legality engine in `alt-verify`.

pub mod presets;
pub mod primitives;
pub mod propagation;
pub mod relation;

pub use primitives::{Layout, LayoutError, LayoutPrim, VarExtents};
pub use propagation::{AssignOutcome, Conversion, LayoutPlan, PropagationMode};
