//! Data-layout primitives (paper §4.1).
//!
//! A [`Layout`] is a sequence of primitives applied to a tensor's logical
//! shape. Primitives rewrite three things consistently:
//!
//! 1. the *physical shape* of the buffer,
//! 2. symbolic *access expressions* (how consumers index the tensor —
//!    Table 1 of the paper, plus Eq. 1 for `unfold`), and
//! 3. the *inverse* mapping from physical loop variables back to logical
//!    indices (how the producer of the tensor reconstructs its loop nest,
//!    paper §6).
//!
//! Concrete (integer) index maps are derived from the symbolic rewrites by
//! evaluating them on constant expressions, so there is a single source of
//! truth for the transformation semantics.

use std::collections::HashMap;
use std::fmt;

use alt_tensor::expr::Expr;
use alt_tensor::op::Cond;
use alt_tensor::{NdBuf, Shape};

/// Errors from invalid primitive applications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// Dimension index out of range.
    BadDim {
        /// The offending dimension.
        dim: usize,
        /// Current number of dimensions.
        ndim: usize,
    },
    /// `split` factors do not multiply to the dimension size.
    BadFactors {
        /// Requested factors.
        factors: Vec<i64>,
        /// Size of the dimension being split.
        dim_size: i64,
    },
    /// `reorder` permutation is not a permutation of `0..ndim`.
    BadPermutation(Vec<usize>),
    /// `fuse` range is empty or out of bounds.
    BadFuseRange {
        /// First fused dimension.
        start: usize,
        /// Number of fused dimensions.
        count: usize,
        /// Current number of dimensions.
        ndim: usize,
    },
    /// `unfold` parameters are invalid (`tile` must be in `1..=dim`,
    /// `stride` in `1..=tile`).
    BadUnfold {
        /// Tile size.
        tile: i64,
        /// Tile stride.
        stride: i64,
        /// Size of the dimension being unfolded.
        dim_size: i64,
    },
    /// `pad` amounts are negative.
    BadPad,
    /// `swizzle` parameters are invalid: `src` must differ from `dim`,
    /// `bits` must be in `1..=12`, and `2^bits` must divide the swizzled
    /// dimension's size (so each aligned block permutes onto itself).
    BadSwizzle {
        /// XOR'd dimension.
        dim: usize,
        /// Dimension supplying the XOR key.
        src: usize,
        /// Number of low bits swizzled.
        bits: u32,
        /// Size of the swizzled dimension.
        dim_size: i64,
    },
    /// `morton` requires two adjacent dimensions of equal power-of-two
    /// size (at most `2^12`).
    BadMorton {
        /// First (outer) interleaved dimension.
        dim: usize,
        /// Sizes of the two dimensions as seen.
        sizes: Vec<i64>,
    },
    /// `block_diag` parameters are invalid: `src` must differ from `dim`
    /// and `block` must be in `1..dim_size`.
    BadBlockDiag {
        /// Rotated dimension.
        dim: usize,
        /// Dimension driving the rotation.
        src: usize,
        /// Rotation step per unit of `src`.
        block: i64,
    },
    /// The primitive sequence cannot be inverted at this point.
    NotInvertible(&'static str),
    /// An index list's rank does not match the layout's rank.
    RankMismatch {
        /// What was being rewritten.
        what: &'static str,
        /// Expected number of indices.
        expected: usize,
        /// Provided number of indices.
        got: usize,
    },
    /// A buffer or tensor shape does not match the layout's shape.
    ShapeMismatch {
        /// The operation that detected the mismatch.
        what: &'static str,
        /// Expected shape (dims).
        expected: Vec<i64>,
        /// Provided shape (dims).
        got: Vec<i64>,
    },
    /// A concrete index map produced a symbolic (non-constant) result.
    NonConstantIndex {
        /// The direction of the failed map.
        what: &'static str,
        /// Rendering of the offending expression.
        expr: String,
    },
    /// The internal shape chain is corrupt (empty); indicates a layout
    /// constructed or mutated through unsafe means.
    CorruptChain,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BadDim { dim, ndim } => {
                write!(f, "dimension {dim} out of range for {ndim}-d layout")
            }
            LayoutError::BadFactors { factors, dim_size } => {
                write!(
                    f,
                    "split factors {factors:?} do not cover dim of size {dim_size}"
                )
            }
            LayoutError::BadPermutation(p) => write!(f, "invalid permutation {p:?}"),
            LayoutError::BadFuseRange { start, count, ndim } => {
                write!(
                    f,
                    "fuse range {start}+{count} out of bounds for {ndim} dims"
                )
            }
            LayoutError::BadUnfold {
                tile,
                stride,
                dim_size,
            } => write!(
                f,
                "unfold(tile={tile}, stride={stride}) invalid for dim of size {dim_size}"
            ),
            LayoutError::BadPad => write!(f, "pad amounts must be non-negative"),
            LayoutError::BadSwizzle {
                dim,
                src,
                bits,
                dim_size,
            } => write!(
                f,
                "swizzle(dim={dim}, src={src}, bits={bits}) invalid for dim of size {dim_size}"
            ),
            LayoutError::BadMorton { dim, sizes } => write!(
                f,
                "morton({dim}) needs two equal power-of-two dims, got {sizes:?}"
            ),
            LayoutError::BadBlockDiag { dim, src, block } => {
                write!(f, "block_diag(dim={dim}, src={src}, block={block}) invalid")
            }
            LayoutError::NotInvertible(what) => write!(f, "cannot invert: {what}"),
            LayoutError::RankMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: rank mismatch (expected {expected}, got {got})"),
            LayoutError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what}: shape mismatch (expected {expected:?}, got {got:?})"
            ),
            LayoutError::NonConstantIndex { what, expr } => {
                write!(f, "{what}: non-constant index {expr}")
            }
            LayoutError::CorruptChain => write!(f, "layout shape chain is empty"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl From<LayoutError> for alt_error::AltError {
    fn from(e: LayoutError) -> Self {
        alt_error::AltError::Layout {
            detail: e.to_string(),
        }
    }
}

/// One data-layout primitive (paper Table 1 and §4.1.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutPrim {
    /// Splits dimension `dim` into `factors` (all new sizes, outermost
    /// first; their product must equal the dimension size).
    Split {
        /// Dimension to split.
        dim: usize,
        /// New dimension sizes, outermost first.
        factors: Vec<i64>,
    },
    /// Permutes dimensions: new dimension `j` is old dimension `perm[j]`.
    Reorder {
        /// Permutation vector.
        perm: Vec<usize>,
    },
    /// Fuses `count` consecutive dimensions starting at `start` into one.
    Fuse {
        /// First dimension of the fused range.
        start: usize,
        /// Number of dimensions to fuse (>= 2).
        count: usize,
    },
    /// Overlapped tiling of dimension `dim` into `(num_tiles, tile)` where
    /// consecutive tiles start `stride` elements apart (paper Fig. 2).
    ///
    /// Elements covered by several tiles are *duplicated* in memory.
    Unfold {
        /// Dimension to unfold.
        dim: usize,
        /// Tile size `B`.
        tile: i64,
        /// Tile stride `S` (`S <= B` gives overlap of `B - S`).
        stride: i64,
    },
    /// Appends `after` (and prepends `before`) zero elements along `dim`,
    /// e.g. to avoid GPU shared-memory bank conflicts.
    Pad {
        /// Dimension to pad.
        dim: usize,
        /// Elements prepended.
        before: i64,
        /// Elements appended.
        after: i64,
    },
    /// Reserves one extra physical slot along `dim` so that another tensor
    /// (e.g. a bias vector) can be stored inline (paper's `store_at`).
    ///
    /// Only valid on constant parameter tensors: the host's producer never
    /// iterates the reserved slot, so this is rejected during lowering for
    /// operator-produced tensors.
    StoreAtHost {
        /// Dimension that gains the guest slot.
        dim: usize,
    },
    /// XOR swizzle: physical index along `dim` is the logical index with
    /// its low `bits` bits XOR'd against the low `bits` bits of the index
    /// along `src` (the classic shared-memory bank-conflict breaker).
    ///
    /// Bijective per `src` slice; requires `2^bits` to divide the size of
    /// `dim`, so each aligned block permutes onto itself. The shape is
    /// unchanged.
    Swizzle {
        /// Dimension whose low bits are XOR'd.
        dim: usize,
        /// Dimension supplying the XOR key.
        src: usize,
        /// Number of low bits swizzled (`1..=12`).
        bits: u32,
    },
    /// Morton (Z-order) interleave of dimensions `dim` and `dim + 1`:
    /// both must have the same power-of-two size `2^k`, and they fuse
    /// into one dimension of size `2^(2k)` whose bits alternate between
    /// the two sources (`dim` on odd bits, `dim + 1` on even bits).
    ///
    /// Bijective; improves locality for stencil-like pairs of axes.
    Morton {
        /// First (outer) of the two interleaved dimensions.
        dim: usize,
    },
    /// Block-diagonal (cyclic) remap: the physical index along `dim` is
    /// `(i + block·j) mod size(dim)` where `j` is the index along `src` —
    /// a diagonal shift per `src` slice that spreads same-`i` accesses
    /// across banks. Bijective for any `block`; the shape is unchanged.
    BlockDiag {
        /// Rotated dimension.
        dim: usize,
        /// Dimension driving the rotation.
        src: usize,
        /// Rotation step per unit of `src` (`1..size(dim)`).
        block: i64,
    },
}

impl LayoutPrim {
    /// Validates this primitive against the shape it would be applied to.
    ///
    /// Exposed so the static legality checker (`alt-verify`) can replay a
    /// layout's primitive chain and attribute each failure to the exact
    /// primitive.
    pub fn check(&self, shape: &[i64]) -> Result<(), LayoutError> {
        let ndim = shape.len();
        match self {
            LayoutPrim::Split { dim, factors } => {
                if *dim >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                let prod: i64 = factors.iter().product();
                if factors.len() < 2 || factors.iter().any(|&f| f <= 0) || prod != shape[*dim] {
                    return Err(LayoutError::BadFactors {
                        factors: factors.clone(),
                        dim_size: shape[*dim],
                    });
                }
                Ok(())
            }
            LayoutPrim::Reorder { perm } => {
                let mut seen = vec![false; ndim];
                if perm.len() != ndim {
                    return Err(LayoutError::BadPermutation(perm.clone()));
                }
                for &p in perm {
                    if p >= ndim || seen[p] {
                        return Err(LayoutError::BadPermutation(perm.clone()));
                    }
                    seen[p] = true;
                }
                Ok(())
            }
            LayoutPrim::Fuse { start, count } => {
                if *count < 2 || start + count > ndim {
                    return Err(LayoutError::BadFuseRange {
                        start: *start,
                        count: *count,
                        ndim,
                    });
                }
                Ok(())
            }
            LayoutPrim::Unfold { dim, tile, stride } => {
                if *dim >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                let d = shape[*dim];
                if *tile < 1 || *tile > d || *stride < 1 || *stride > *tile {
                    return Err(LayoutError::BadUnfold {
                        tile: *tile,
                        stride: *stride,
                        dim_size: d,
                    });
                }
                Ok(())
            }
            LayoutPrim::Pad { dim, before, after } => {
                if *dim >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                if *before < 0 || *after < 0 {
                    return Err(LayoutError::BadPad);
                }
                Ok(())
            }
            LayoutPrim::StoreAtHost { dim } => {
                if *dim >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                Ok(())
            }
            LayoutPrim::Swizzle { dim, src, bits } => {
                if *dim >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                if *src >= ndim {
                    return Err(LayoutError::BadDim { dim: *src, ndim });
                }
                let d = shape[*dim];
                if *src == *dim || *bits == 0 || *bits > 12 || d % (1i64 << *bits) != 0 {
                    return Err(LayoutError::BadSwizzle {
                        dim: *dim,
                        src: *src,
                        bits: *bits,
                        dim_size: d,
                    });
                }
                Ok(())
            }
            LayoutPrim::Morton { dim } => {
                if dim + 1 >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                let (a, b) = (shape[*dim], shape[dim + 1]);
                let pow2 = |v: i64| v > 0 && v & (v - 1) == 0;
                if a != b || !pow2(a) || a > (1 << 12) {
                    return Err(LayoutError::BadMorton {
                        dim: *dim,
                        sizes: vec![a, b],
                    });
                }
                Ok(())
            }
            LayoutPrim::BlockDiag { dim, src, block } => {
                if *dim >= ndim {
                    return Err(LayoutError::BadDim { dim: *dim, ndim });
                }
                if *src >= ndim {
                    return Err(LayoutError::BadDim { dim: *src, ndim });
                }
                if *src == *dim || *block < 1 || *block >= shape[*dim] {
                    return Err(LayoutError::BadBlockDiag {
                        dim: *dim,
                        src: *src,
                        block: *block,
                    });
                }
                Ok(())
            }
        }
    }

    /// Shape after applying this primitive to `shape`.
    fn apply_shape(&self, shape: &[i64]) -> Vec<i64> {
        let mut out = shape.to_vec();
        match self {
            LayoutPrim::Split { dim, factors } => {
                out.splice(*dim..=*dim, factors.iter().copied());
            }
            LayoutPrim::Reorder { perm } => {
                out = perm.iter().map(|&p| shape[p]).collect();
            }
            LayoutPrim::Fuse { start, count } => {
                let fused: i64 = shape[*start..start + count].iter().product();
                out.splice(*start..start + count, [fused]);
            }
            LayoutPrim::Unfold { dim, tile, stride } => {
                let d = shape[*dim];
                let tiles = num_tiles(d, *tile, *stride);
                out.splice(*dim..=*dim, [tiles, *tile]);
            }
            LayoutPrim::Pad { dim, before, after } => {
                out[*dim] += before + after;
            }
            LayoutPrim::StoreAtHost { dim } => {
                out[*dim] += 1;
            }
            LayoutPrim::Swizzle { .. } | LayoutPrim::BlockDiag { .. } => {}
            LayoutPrim::Morton { dim } => {
                let fused = shape[*dim] * shape[dim + 1];
                out.splice(*dim..=dim + 1, [fused]);
            }
        }
        out
    }

    /// Whether the primitive is "advanced" in the paper's sense, i.e. can
    /// expand data (Algorithm 1, first constraint).
    pub fn is_advanced(&self) -> bool {
        matches!(
            self,
            LayoutPrim::Unfold { .. } | LayoutPrim::Pad { .. } | LayoutPrim::StoreAtHost { .. }
        )
    }
}

/// Number of tiles produced by `unfold`: `ceil((d - tile) / stride) + 1`.
pub fn num_tiles(d: i64, tile: i64, stride: i64) -> i64 {
    if d <= tile {
        1
    } else {
        (d - tile + stride - 1) / stride + 1
    }
}

/// Extents of index variables, used to recognize sliding-window access
/// patterns (`V*i + r`) so `unfold` can apply the paper's Eq. 1.
pub type VarExtents = HashMap<u32, i64>;

/// Result of pattern-matching an access expression against `V*i + r`.
struct WindowPattern {
    /// The window-position subexpression `i`.
    base: Expr,
    /// Constant stride `V` multiplying the window position.
    stride: i64,
    /// The in-window offset subexpression `r` (already scaled by dilation).
    offset: Expr,
    /// Window extent `M` (max value of `r` plus one).
    window: i64,
}

/// Tries to decompose `e` as `base * V + offset` where `offset` is a
/// (possibly dilated) reduction variable with known extent.
fn match_window(e: &Expr, extents: &VarExtents) -> Option<WindowPattern> {
    // Accept `a + off` where `off` is `Var(r)` or `Var(r) * c`, and `a` is
    // `Var(i)` or `Var(i) * V` or any expression not containing `r`.
    let (a, off) = match e {
        Expr::Bin(alt_tensor::expr::BinOp::Add, x, y) => (x.as_ref(), y.as_ref()),
        _ => return None,
    };
    let (offset, window) = match off {
        Expr::Var(r) => {
            let m = *extents.get(&r.id())?;
            (off.clone(), m)
        }
        Expr::Bin(alt_tensor::expr::BinOp::Mul, v, c) => match (v.as_ref(), c.as_ref()) {
            (Expr::Var(r), Expr::Const(c)) if *c > 0 => {
                let m = *extents.get(&r.id())?;
                (off.clone(), (m - 1) * c + 1)
            }
            _ => return None,
        },
        _ => return None,
    };
    let (base, stride) = match a {
        Expr::Bin(alt_tensor::expr::BinOp::Mul, v, c) => match c.as_ref() {
            Expr::Const(cv) if *cv > 0 => (v.as_ref().clone(), *cv),
            _ => (a.clone(), 1),
        },
        _ => (a.clone(), 1),
    };
    Some(WindowPattern {
        base,
        stride,
        offset,
        window,
    })
}

/// A data layout: a logical shape plus a primitive sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct Layout {
    logical: Shape,
    prims: Vec<LayoutPrim>,
    /// Shape before each primitive; `shapes[i]` is the input of `prims[i]`
    /// and `shapes[prims.len()]` is the physical shape.
    shapes: Vec<Vec<i64>>,
}

impl Layout {
    /// The identity layout for a logical shape.
    pub fn identity(logical: Shape) -> Self {
        let dims = logical.dims().to_vec();
        Self {
            logical,
            prims: Vec::new(),
            shapes: vec![dims],
        }
    }

    /// Applies one primitive, validating it against the current shape.
    pub fn apply(&mut self, prim: LayoutPrim) -> Result<(), LayoutError> {
        let cur = self.shapes.last().ok_or(LayoutError::CorruptChain)?;
        prim.check(cur)?;
        let next = prim.apply_shape(cur);
        self.prims.push(prim);
        self.shapes.push(next);
        Ok(())
    }

    /// Builder-style [`Layout::apply`].
    pub fn with(mut self, prim: LayoutPrim) -> Result<Self, LayoutError> {
        self.apply(prim)?;
        Ok(self)
    }

    /// The logical shape this layout started from.
    pub fn logical_shape(&self) -> &Shape {
        &self.logical
    }

    /// The physical buffer shape, or [`LayoutError::CorruptChain`] if the
    /// internal shape chain is empty.
    pub fn try_physical_shape(&self) -> Result<Shape, LayoutError> {
        self.shapes
            .last()
            .map(|d| Shape::new(d.clone()))
            .ok_or(LayoutError::CorruptChain)
    }

    /// The physical buffer shape.
    ///
    /// The shape chain is non-empty by construction ([`Layout::identity`]
    /// seeds one entry and [`Layout::pop_prim`] removes prim/shape pairs
    /// together), so this cannot fail on layouts built through the public
    /// API; fallible callers can use [`Layout::try_physical_shape`].
    pub fn physical_shape(&self) -> Shape {
        self.try_physical_shape()
            .expect("layout shape chain corrupt")
    }

    /// Row-major strides of the physical buffer — the linearization the
    /// native code generator resolves index expressions against.
    pub fn physical_strides(&self) -> Vec<i64> {
        self.physical_shape().strides()
    }

    /// The primitive sequence.
    pub fn prims(&self) -> &[LayoutPrim] {
        &self.prims
    }

    /// The cached shape chain: entry 0 is the logical shape's dims and
    /// entry `k + 1` is the shape after primitive `k`.
    pub fn shape_chain(&self) -> &[Vec<i64>] {
        &self.shapes
    }

    /// Replays the primitive chain from the logical shape, re-checking
    /// every primitive and the cached shape chain.
    ///
    /// Layouts built through [`Layout::apply`] always pass; this exists
    /// so the static legality checker can re-establish the invariant for
    /// layouts that crossed a serialization or plan-mutation boundary,
    /// and returns the first offending primitive on failure.
    pub fn revalidate(&self) -> Result<(), LayoutError> {
        let mut cur = self.logical.dims().to_vec();
        if self.shapes.first() != Some(&cur) {
            return Err(LayoutError::ShapeMismatch {
                what: "revalidate",
                expected: cur,
                got: self.shapes.first().cloned().unwrap_or_default(),
            });
        }
        for (k, prim) in self.prims.iter().enumerate() {
            prim.check(&cur)?;
            cur = prim.apply_shape(&cur);
            let cached = self.shapes.get(k + 1).ok_or(LayoutError::CorruptChain)?;
            if cached != &cur {
                return Err(LayoutError::ShapeMismatch {
                    what: "revalidate",
                    expected: cur,
                    got: cached.clone(),
                });
            }
        }
        Ok(())
    }

    /// Derives human-readable names for the physical dimensions by pushing
    /// `logical` (one name per logical dimension) through the primitive
    /// sequence, mirroring [`LayoutPrim::apply_shape`]:
    ///
    /// - `split` into two factors yields `x.o` / `x.i` (more factors yield
    ///   `x.s0`, `x.s1`, ...),
    /// - `reorder` permutes names,
    /// - `fuse` joins names with `+`,
    /// - `unfold` yields `x.t` (tiles) / `x.u` (in-tile),
    /// - `pad` / `store_at` keep the name.
    ///
    /// The result depends only on the layout's primitive sequence, so it is
    /// stable across runs — profiles keyed by these names diff cleanly.
    /// A `logical` of the wrong rank falls back to positional `d{k}` names.
    pub fn physical_dim_names(&self, logical: &[&str]) -> Vec<String> {
        let mut names: Vec<String> = if logical.len() == self.logical.dims().len() {
            logical.iter().map(|s| s.to_string()).collect()
        } else {
            (0..self.logical.dims().len())
                .map(|k| format!("d{k}"))
                .collect()
        };
        for prim in &self.prims {
            match prim {
                LayoutPrim::Split { dim, factors } => {
                    let base = names[*dim].clone();
                    let parts: Vec<String> = if factors.len() == 2 {
                        vec![format!("{base}.o"), format!("{base}.i")]
                    } else {
                        (0..factors.len()).map(|j| format!("{base}.s{j}")).collect()
                    };
                    names.splice(*dim..=*dim, parts);
                }
                LayoutPrim::Reorder { perm } => {
                    names = perm.iter().map(|&p| names[p].clone()).collect();
                }
                LayoutPrim::Fuse { start, count } => {
                    let fused = names[*start..start + count].join("+");
                    names.splice(*start..start + count, [fused]);
                }
                LayoutPrim::Unfold { dim, .. } => {
                    let base = names[*dim].clone();
                    names.splice(*dim..=*dim, [format!("{base}.t"), format!("{base}.u")]);
                }
                LayoutPrim::Pad { .. } | LayoutPrim::StoreAtHost { .. } => {}
                LayoutPrim::Swizzle { dim, src, .. } => {
                    let key = names[*src].clone();
                    names[*dim] = format!("{}^{key}", names[*dim]);
                }
                LayoutPrim::Morton { dim } => {
                    let fused = format!("{}~{}", names[*dim], names[*dim + 1]);
                    names.splice(*dim..=dim + 1, [fused]);
                }
                LayoutPrim::BlockDiag { dim, src, .. } => {
                    let key = names[*src].clone();
                    names[*dim] = format!("{}@{key}", names[*dim]);
                }
            }
        }
        names
    }

    /// True when no primitives have been applied.
    pub fn is_identity(&self) -> bool {
        self.prims.is_empty()
    }

    /// True when the sequence contains a data-expanding (advanced)
    /// primitive.
    pub fn has_advanced(&self) -> bool {
        self.prims.iter().any(|p| p.is_advanced())
    }

    /// Removes the most recent primitive (used by the inverse primitives
    /// `fold`, `unpad` and `decouple_at`, which transform layouts back —
    /// §4.1.2).
    pub fn pop_prim(&mut self) -> Option<LayoutPrim> {
        let p = self.prims.pop()?;
        self.shapes.pop();
        Some(p)
    }

    /// Inverse of [`LayoutPrim::Unfold`]: removes a trailing unfold.
    pub fn fold(&mut self) -> Result<(), LayoutError> {
        match self.prims.last() {
            Some(LayoutPrim::Unfold { .. }) => {
                self.pop_prim();
                Ok(())
            }
            _ => Err(LayoutError::NotInvertible("last primitive is not unfold")),
        }
    }

    /// Inverse of [`LayoutPrim::Pad`]: removes a trailing pad.
    pub fn unpad(&mut self) -> Result<(), LayoutError> {
        match self.prims.last() {
            Some(LayoutPrim::Pad { .. }) => {
                self.pop_prim();
                Ok(())
            }
            _ => Err(LayoutError::NotInvertible("last primitive is not pad")),
        }
    }

    /// Inverse of [`LayoutPrim::StoreAtHost`]: releases the guest slot.
    pub fn decouple_at(&mut self) -> Result<(), LayoutError> {
        match self.prims.last() {
            Some(LayoutPrim::StoreAtHost { .. }) => {
                self.pop_prim();
                Ok(())
            }
            _ => Err(LayoutError::NotInvertible("last primitive is not store_at")),
        }
    }

    /// Replicates this layout's primitive sequence onto another tensor of
    /// the same logical shape (the propagation mechanism of §4.2).
    ///
    /// Returns [`LayoutError::ShapeMismatch`] if `logical` differs from
    /// this layout's logical shape — propagation is only defined for
    /// shape-equal tensors (Algorithm 1, third constraint).
    pub fn replicate_for(&self, logical: Shape) -> Result<Layout, LayoutError> {
        if self.logical != logical {
            return Err(LayoutError::ShapeMismatch {
                what: "replicate_for",
                expected: self.logical.dims().to_vec(),
                got: logical.dims().to_vec(),
            });
        }
        Ok(self.clone())
    }

    /// Rewrites logical access expressions into physical access
    /// expressions (consumer side; Table 1 and Eq. 1).
    ///
    /// `extents` provides variable extents so sliding-window accesses can
    /// use the paper's Eq. 1 placement for unfolded dimensions; pass an
    /// empty map to always use the generic (clamped) placement.
    pub fn rewrite_access(
        &self,
        exprs: &[Expr],
        extents: &VarExtents,
    ) -> Result<Vec<Expr>, LayoutError> {
        if exprs.len() != self.logical.ndim() {
            return Err(LayoutError::RankMismatch {
                what: "rewrite_access",
                expected: self.logical.ndim(),
                got: exprs.len(),
            });
        }
        let mut cur: Vec<Expr> = exprs.to_vec();
        for (prim, shape) in self.prims.iter().zip(self.shapes.iter()) {
            cur = rewrite_forward(prim, shape, &cur, extents);
        }
        Ok(cur)
    }

    /// Maps physical index expressions (producer loop variables) back to
    /// logical index expressions, together with the validity conditions
    /// under which the physical slot corresponds to a real element (false
    /// for pad slots and unfold overhang).
    pub fn inverse_access(&self, phys: &[Expr]) -> Result<(Vec<Expr>, Vec<Cond>), LayoutError> {
        let ndim = self.try_physical_shape()?.ndim();
        if phys.len() != ndim {
            return Err(LayoutError::RankMismatch {
                what: "inverse_access",
                expected: ndim,
                got: phys.len(),
            });
        }
        let mut cur: Vec<Expr> = phys.to_vec();
        let mut conds = Vec::new();
        for (prim, shape) in self.prims.iter().zip(self.shapes.iter()).rev() {
            cur = rewrite_inverse(prim, shape, &cur, &mut conds);
        }
        Ok((cur, conds))
    }

    /// Maps a concrete logical index to its canonical physical index.
    pub fn logical_to_physical(&self, idx: &[i64]) -> Result<Vec<i64>, LayoutError> {
        let exprs: Vec<Expr> = idx.iter().map(|&i| Expr::c(i)).collect();
        let out = self.rewrite_access(&exprs, &HashMap::new())?;
        out.iter()
            .map(|e| match e {
                Expr::Const(v) => Ok(*v),
                other => Err(LayoutError::NonConstantIndex {
                    what: "logical_to_physical",
                    expr: other.to_string(),
                }),
            })
            .collect()
    }

    /// Maps a concrete physical index back to the logical index it holds,
    /// or `None` for slots that hold no logical element (padding/overhang).
    pub fn physical_to_logical(&self, idx: &[i64]) -> Result<Option<Vec<i64>>, LayoutError> {
        let exprs: Vec<Expr> = idx.iter().map(|&i| Expr::c(i)).collect();
        let (out, conds) = self.inverse_access(&exprs)?;
        let env = alt_tensor::Env::new();
        if !conds.iter().all(|c| c.eval(&env)) {
            return Ok(None);
        }
        let log: Vec<i64> = out
            .iter()
            .map(|e| match e {
                Expr::Const(v) => Ok(*v),
                other => Err(LayoutError::NonConstantIndex {
                    what: "physical_to_logical",
                    expr: other.to_string(),
                }),
            })
            .collect::<Result<_, _>>()?;
        // Guard against overhang beyond the logical extent.
        if log
            .iter()
            .zip(self.logical.dims())
            .any(|(&i, &d)| i < 0 || i >= d)
        {
            return Ok(None);
        }
        Ok(Some(log))
    }

    /// Packs a logically-laid-out buffer into this physical layout.
    ///
    /// Physical slots with no logical element (padding, overhang) are
    /// zero-filled; overlapped slots duplicate their logical element.
    pub fn pack(&self, logical: &NdBuf) -> Result<NdBuf, LayoutError> {
        if logical.shape() != &self.logical {
            return Err(LayoutError::ShapeMismatch {
                what: "pack",
                expected: self.logical.dims().to_vec(),
                got: logical.shape().dims().to_vec(),
            });
        }
        let phys = self.try_physical_shape()?;
        let mut out = NdBuf::zeros(phys.clone());
        for pidx in phys.iter_indices() {
            if let Some(lidx) = self.physical_to_logical(&pidx)? {
                out.set(&pidx, logical.get(&lidx));
            }
        }
        Ok(out)
    }

    /// Unpacks a physical buffer back to logical order using canonical
    /// slots.
    pub fn unpack(&self, physical: &NdBuf) -> Result<NdBuf, LayoutError> {
        let phys = self.try_physical_shape()?;
        if physical.shape() != &phys {
            return Err(LayoutError::ShapeMismatch {
                what: "unpack",
                expected: phys.dims().to_vec(),
                got: physical.shape().dims().to_vec(),
            });
        }
        let mut out = NdBuf::zeros(self.logical.clone());
        for lidx in self.logical.clone().iter_indices() {
            let pidx = self.logical_to_physical(&lidx)?;
            out.set(&lidx, physical.get(&pidx));
        }
        Ok(out)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ->", self.logical)?;
        for p in &self.prims {
            match p {
                LayoutPrim::Split { dim, factors } => write!(f, " split({dim}, {factors:?})")?,
                LayoutPrim::Reorder { perm } => write!(f, " reorder({perm:?})")?,
                LayoutPrim::Fuse { start, count } => {
                    write!(f, " fuse({start}..{})", start + count)?;
                }
                LayoutPrim::Unfold { dim, tile, stride } => {
                    write!(f, " unfold({dim}, B={tile}, S={stride})")?;
                }
                LayoutPrim::Pad { dim, before, after } => {
                    write!(f, " pad({dim}, {before}, {after})")?;
                }
                LayoutPrim::StoreAtHost { dim } => write!(f, " store_at_host({dim})")?,
                LayoutPrim::Swizzle { dim, src, bits } => {
                    write!(f, " swizzle({dim}, src={src}, bits={bits})")?;
                }
                LayoutPrim::Morton { dim } => write!(f, " morton({dim})")?,
                LayoutPrim::BlockDiag { dim, src, block } => {
                    write!(f, " block_diag({dim}, src={src}, block={block})")?;
                }
            }
        }
        match self.try_physical_shape() {
            Ok(s) => write!(f, " => {s}"),
            Err(_) => write!(f, " => <corrupt shape chain>"),
        }
    }
}

/// Applies one primitive's forward access rewrite.
pub(crate) fn rewrite_forward(
    prim: &LayoutPrim,
    shape_before: &[i64],
    exprs: &[Expr],
    extents: &VarExtents,
) -> Vec<Expr> {
    match prim {
        LayoutPrim::Split { dim, factors } => {
            let e = &exprs[*dim];
            let m = factors.len();
            let mut parts = Vec::with_capacity(m);
            for j in 0..m {
                let suffix: i64 = factors[j + 1..].iter().product();
                let mut part = e.div_c(suffix);
                if j > 0 {
                    part = part.mod_c(factors[j]);
                }
                parts.push(part);
            }
            let mut out = exprs.to_vec();
            out.splice(*dim..=*dim, parts);
            out
        }
        LayoutPrim::Reorder { perm } => perm.iter().map(|&p| exprs[p].clone()).collect(),
        LayoutPrim::Fuse { start, count } => {
            let mut fused = exprs[*start].clone();
            for j in 1..*count {
                fused = fused.mul_c(shape_before[start + j]).add(&exprs[start + j]);
            }
            let mut out = exprs.to_vec();
            out.splice(*start..start + count, [fused]);
            out
        }
        LayoutPrim::Unfold { dim, tile, stride } => {
            let d = shape_before[*dim];
            let tiles = num_tiles(d, *tile, *stride);
            let e = &exprs[*dim];
            // Paper Eq. 1: place a whole sliding window inside one tile;
            // the tile index comes from the window-position subexpression,
            // not the raw element index. This placement is only in-bounds
            // when the tile stride advances by exactly `windows_per_tile`
            // windows (`S == V * wpt`), which is how the §5.1 template
            // instantiates unfold; otherwise fall back to the generic
            // clamped placement.
            let eq1 = match_window(e, extents).and_then(|w| {
                if w.window > *tile {
                    return None;
                }
                let wpt = (*tile - w.window) / w.stride + 1;
                if *stride != w.stride * wpt {
                    return None;
                }
                let t = w.base.div_c(wpt).min_e(&Expr::c(tiles - 1));
                let b = w.base.mul_c(w.stride).add(&w.offset).sub(&t.mul_c(*stride));
                Some((t, b))
            });
            let (t, b) = eq1.unwrap_or_else(|| generic_unfold(e, *stride, tiles));
            let mut out = exprs.to_vec();
            out.splice(*dim..=*dim, [t, b]);
            out
        }
        LayoutPrim::Pad { dim, before, .. } => {
            let mut out = exprs.to_vec();
            out[*dim] = out[*dim].add_c(*before);
            out
        }
        LayoutPrim::StoreAtHost { .. } => exprs.to_vec(),
        LayoutPrim::Swizzle { dim, src, bits } => {
            // phys = (e with its low `bits` bits XOR'd against src's).
            let e = &exprs[*dim];
            let low = e.mod_c(1i64 << *bits);
            let mut out = exprs.to_vec();
            out[*dim] = e.sub(&low).add(&xor_low_bits(e, &exprs[*src], *bits));
            out
        }
        LayoutPrim::Morton { dim } => {
            // Interleave: bit j of `x` lands on physical bit 2j+1, bit j
            // of `y` on physical bit 2j.
            let k = shape_before[*dim].trailing_zeros();
            let x = &exprs[*dim];
            let y = &exprs[dim + 1];
            let mut acc = Expr::c(0);
            for j in 0..k {
                acc = acc.add(&bit_of(x, j).mul_c(1i64 << (2 * j + 1)));
                acc = acc.add(&bit_of(y, j).mul_c(1i64 << (2 * j)));
            }
            let mut out = exprs.to_vec();
            out.splice(*dim..=dim + 1, [acc]);
            out
        }
        LayoutPrim::BlockDiag { dim, src, block } => {
            let d = shape_before[*dim];
            let mut out = exprs.to_vec();
            out[*dim] = exprs[*dim].add(&exprs[*src].mul_c(*block)).mod_c(d);
            out
        }
    }
}

/// Generic (pattern-free) unfold placement: canonical tile `min(e/S, T-1)`.
fn generic_unfold(e: &Expr, stride: i64, tiles: i64) -> (Expr, Expr) {
    let t = e.div_c(stride).min_e(&Expr::c(tiles - 1));
    let b = e.sub(&t.mul_c(stride));
    (t, b)
}

/// Bit `j` of a non-negative expression: `(e div 2^j) mod 2`.
fn bit_of(e: &Expr, j: u32) -> Expr {
    e.div_c(1 << j).mod_c(2)
}

/// XOR of the low `bits` bits of `a` and `b`, written with quasi-affine
/// arithmetic only: per bit, `x ⊕ y = x + y − 2·x·y` (each factor is
/// {0,1}-valued, which keeps the product exactly encodable as an integer
/// set — see `alt-verify`'s set bridge).
fn xor_low_bits(a: &Expr, b: &Expr, bits: u32) -> Expr {
    let mut acc = Expr::c(0);
    for j in 0..bits {
        let x = bit_of(a, j);
        let y = bit_of(b, j);
        let xor = x.add(&y).sub(&x.mul(&y).mul_c(2));
        acc = acc.add(&xor.mul_c(1 << j));
    }
    acc
}

/// Applies one primitive's inverse access rewrite (physical -> logical).
fn rewrite_inverse(
    prim: &LayoutPrim,
    shape_before: &[i64],
    exprs: &[Expr],
    conds: &mut Vec<Cond>,
) -> Vec<Expr> {
    match prim {
        LayoutPrim::Split { dim, factors } => {
            // dims dim..dim+m recombine.
            let m = factors.len();
            let mut e = exprs[*dim].clone();
            for j in 1..m {
                e = e.mul_c(factors[j]).add(&exprs[dim + j]);
            }
            let mut out = exprs.to_vec();
            out.splice(*dim..dim + m, [e]);
            out
        }
        LayoutPrim::Reorder { perm } => {
            let mut out = vec![Expr::c(0); exprs.len()];
            for (j, &p) in perm.iter().enumerate() {
                out[p] = exprs[j].clone();
            }
            out
        }
        LayoutPrim::Fuse { start, count } => {
            let e = &exprs[*start];
            let mut parts = Vec::with_capacity(*count);
            for j in 0..*count {
                let suffix: i64 = shape_before[start + j + 1..start + count].iter().product();
                let mut part = e.div_c(suffix);
                if j > 0 {
                    part = part.mod_c(shape_before[start + j]);
                }
                parts.push(part);
            }
            let mut out = exprs.to_vec();
            out.splice(*start..start + 1, parts);
            out
        }
        LayoutPrim::Unfold { dim, tile, stride } => {
            let d = shape_before[*dim];
            let t = &exprs[*dim];
            let b = &exprs[dim + 1];
            let e = t.mul_c(*stride).add(b);
            // Overhang slots of the last tile map past the end.
            let tiles = num_tiles(d, *tile, *stride);
            if (tiles - 1) * stride + tile > d {
                conds.push(Cond::Lt(e.clone(), Expr::c(d)));
            }
            let mut out = exprs.to_vec();
            out.splice(*dim..dim + 2, [e]);
            out
        }
        LayoutPrim::Pad { dim, before, after } => {
            let d = shape_before[*dim];
            let mut out = exprs.to_vec();
            let e = out[*dim].sub(&Expr::c(*before));
            if *before > 0 {
                conds.push(Cond::Ge(e.clone(), Expr::c(0)));
            }
            if *after > 0 {
                conds.push(Cond::Lt(e.clone(), Expr::c(d)));
            }
            out[*dim] = e;
            out
        }
        LayoutPrim::StoreAtHost { dim } => {
            let d = shape_before[*dim];
            conds.push(Cond::Lt(exprs[*dim].clone(), Expr::c(d)));
            exprs.to_vec()
        }
        LayoutPrim::Swizzle { dim, src, bits } => {
            // XOR is an involution and `src` passes through unchanged, so
            // the inverse is the forward formula applied to physical
            // indices. Bijective: no validity conditions.
            let p = &exprs[*dim];
            let low = p.mod_c(1i64 << *bits);
            let mut out = exprs.to_vec();
            out[*dim] = p.sub(&low).add(&xor_low_bits(p, &exprs[*src], *bits));
            out
        }
        LayoutPrim::Morton { dim } => {
            // De-interleave: odd physical bits rebuild `x`, even bits `y`.
            let k = shape_before[*dim].trailing_zeros();
            let p = &exprs[*dim];
            let mut x = Expr::c(0);
            let mut y = Expr::c(0);
            for j in 0..k {
                x = x.add(&bit_of(p, 2 * j + 1).mul_c(1i64 << j));
                y = y.add(&bit_of(p, 2 * j).mul_c(1i64 << j));
            }
            let mut out = exprs.to_vec();
            out.splice(*dim..dim + 1, [x, y]);
            out
        }
        LayoutPrim::BlockDiag { dim, src, block } => {
            // Euclidean mod undoes the cyclic shift even when the
            // difference is negative. Bijective: no conditions.
            let d = shape_before[*dim];
            let mut out = exprs.to_vec();
            out[*dim] = exprs[*dim].sub(&exprs[*src].mul_c(*block)).mod_c(d);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use alt_tensor::{Env, VarGen};

    fn layout4(dims: [i64; 4]) -> Layout {
        Layout::identity(Shape::new(dims.to_vec()))
    }

    #[test]
    fn nhwo_permutation() {
        // NOHW (logical) -> NHWO (physical).
        let l = layout4([1, 64, 56, 56])
            .with(LayoutPrim::Reorder {
                perm: vec![0, 2, 3, 1],
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[1, 56, 56, 64]);
        assert_eq!(
            l.logical_to_physical(&[0, 5, 6, 7]).unwrap(),
            vec![0, 6, 7, 5]
        );
        assert_eq!(
            l.physical_to_logical(&[0, 6, 7, 5]).unwrap(),
            Some(vec![0, 5, 6, 7])
        );
    }

    #[test]
    fn split_reorder_tiled_channels() {
        // N O H W -> N O/16 H W 16 (the N O/ot H W ot layout).
        let l = layout4([1, 64, 8, 8])
            .with(LayoutPrim::Split {
                dim: 1,
                factors: vec![4, 16],
            })
            .unwrap()
            .with(LayoutPrim::Reorder {
                perm: vec![0, 1, 3, 4, 2],
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[1, 4, 8, 8, 16]);
        // o = 37 -> (2, 5): phys [n, 2, h, w, 5].
        assert_eq!(
            l.logical_to_physical(&[0, 37, 3, 4]).unwrap(),
            vec![0, 2, 3, 4, 5]
        );
    }

    #[test]
    fn physical_dim_names_follow_lineage() {
        // N O H W -split(O)-> -reorder-> N O.o H W O.i
        let l = layout4([1, 64, 8, 8])
            .with(LayoutPrim::Split {
                dim: 1,
                factors: vec![4, 16],
            })
            .unwrap()
            .with(LayoutPrim::Reorder {
                perm: vec![0, 1, 3, 4, 2],
            })
            .unwrap();
        assert_eq!(
            l.physical_dim_names(&["n", "o", "h", "w"]),
            vec!["n", "o.o", "h", "w", "o.i"]
        );
    }

    #[test]
    fn physical_dim_names_fuse_unfold_pad() {
        let l = Layout::identity(Shape::new([2, 6, 5, 8]))
            .with(LayoutPrim::Fuse { start: 1, count: 3 })
            .unwrap()
            .with(LayoutPrim::Unfold {
                dim: 1,
                tile: 30,
                stride: 30,
            })
            .unwrap()
            .with(LayoutPrim::Pad {
                dim: 2,
                before: 0,
                after: 2,
            })
            .unwrap();
        assert_eq!(
            l.physical_dim_names(&["n", "h", "w", "o"]),
            vec!["n", "h+w+o.t", "h+w+o.u"]
        );
        // Wrong-rank logical names fall back to positional d{k}.
        assert_eq!(
            l.physical_dim_names(&["n", "h"]),
            vec!["d0", "d1+d2+d3.t", "d1+d2+d3.u"]
        );
    }

    #[test]
    fn physical_dim_names_identity_and_many_way_split() {
        let l = layout4([1, 64, 8, 8]);
        assert_eq!(
            l.physical_dim_names(&["n", "o", "h", "w"]),
            vec!["n", "o", "h", "w"]
        );
        let l = layout4([1, 64, 8, 8])
            .with(LayoutPrim::Split {
                dim: 1,
                factors: vec![2, 4, 8],
            })
            .unwrap();
        assert_eq!(
            l.physical_dim_names(&["n", "o", "h", "w"]),
            vec!["n", "o.s0", "o.s1", "o.s2", "h", "w"]
        );
    }

    #[test]
    fn fuse_then_split_paper_example() {
        // Paper §4.1.1: NHWO -fuse(1..4)-> N(HWO) -split-> N (O/4) 4 (HW)
        // -reorder-> N (O/4) (HW) 4.
        let (h, w, o) = (6, 5, 8);
        let l = Layout::identity(Shape::new([2, h, w, o]))
            .with(LayoutPrim::Fuse { start: 1, count: 3 })
            .unwrap()
            .with(LayoutPrim::Split {
                dim: 1,
                factors: vec![o / 4, 4, h * w],
            })
            .unwrap()
            .with(LayoutPrim::Reorder {
                perm: vec![0, 1, 3, 2],
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[2, o / 4, h * w, 4]);
        // Spot-check the access arithmetic of the paper's running example:
        // e = h*(W*O) + w*O + o; phys = [n, e/(HW)/4, e%(HW), (e/(HW))%4].
        for &(n, hh, ww, oo) in &[(0i64, 0i64, 0i64, 0i64), (1, 3, 2, 5), (1, 5, 4, 7)] {
            let e = hh * (w * o) + ww * o + oo;
            let expect = vec![n, e / (h * w) / 4, e % (h * w), (e / (h * w)) % 4];
            assert_eq!(l.logical_to_physical(&[n, hh, ww, oo]).unwrap(), expect);
        }
    }

    #[test]
    fn unfold_array_example() {
        // Paper §4.1.2: {1,2,3,4,5} with B=3, S=2 -> {{1,2,3},{3,4,5}}.
        let l = Layout::identity(Shape::new([5]))
            .with(LayoutPrim::Unfold {
                dim: 0,
                tile: 3,
                stride: 2,
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[2, 3]);
        let data = NdBuf::from_vec(Shape::new([5]), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let packed = l.pack(&data).unwrap();
        assert_eq!(packed.data(), &[1.0, 2.0, 3.0, 3.0, 4.0, 5.0]);
        let unpacked = l.unpack(&packed).unwrap();
        assert_eq!(unpacked.data(), data.data());
    }

    #[test]
    fn unfold_overhang_is_zero_filled() {
        // d=5, B=3, S=3 -> tiles = ceil(2/3)+1 = 2, second tile covers 3..5
        // plus one overhang slot.
        let l = Layout::identity(Shape::new([5]))
            .with(LayoutPrim::Unfold {
                dim: 0,
                tile: 3,
                stride: 3,
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[2, 3]);
        let data = NdBuf::from_vec(Shape::new([5]), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let packed = l.pack(&data).unwrap();
        assert_eq!(packed.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 0.0]);
        assert_eq!(l.physical_to_logical(&[1, 2]).unwrap(), None);
    }

    #[test]
    fn pad_shifts_and_guards() {
        let l = Layout::identity(Shape::new([4]))
            .with(LayoutPrim::Pad {
                dim: 0,
                before: 1,
                after: 2,
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[7]);
        assert_eq!(l.logical_to_physical(&[0]).unwrap(), vec![1]);
        assert_eq!(l.physical_to_logical(&[0]).unwrap(), None);
        assert_eq!(l.physical_to_logical(&[5]).unwrap(), None);
        assert_eq!(l.physical_to_logical(&[2]).unwrap(), Some(vec![1]));
    }

    #[test]
    fn pack_unpack_roundtrip_composite() {
        let l = layout4([2, 8, 6, 6])
            .with(LayoutPrim::Split {
                dim: 1,
                factors: vec![2, 4],
            })
            .unwrap()
            .with(LayoutPrim::Reorder {
                perm: vec![0, 1, 3, 4, 2],
            })
            .unwrap()
            .with(LayoutPrim::Unfold {
                dim: 2,
                tile: 4,
                stride: 2,
            })
            .unwrap();
        let logical = NdBuf::from_fn(Shape::new([2, 8, 6, 6]), |i| i as f32);
        let packed = l.pack(&logical).unwrap();
        let unpacked = l.unpack(&packed).unwrap();
        assert_eq!(unpacked.data(), logical.data());
    }

    #[test]
    fn window_pattern_uses_eq1() {
        // Access h*1 + rh where rh has extent 3 (KH=3), unfold with
        // B = ht + KH - 1 = 6, S = ht = 4: Eq. 1 gives t = h / 4.
        let mut g = VarGen::new();
        let h = g.fresh("h");
        let rh = g.fresh("rh");
        let mut extents = VarExtents::new();
        extents.insert(rh.id(), 3);
        let l = Layout::identity(Shape::new([10]))
            .with(LayoutPrim::Unfold {
                dim: 0,
                tile: 6,
                stride: 4,
            })
            .unwrap();
        let access = Expr::v(&h).add(&Expr::v(&rh));
        let out = l.rewrite_access(&[access], &extents).unwrap();
        assert_eq!(out.len(), 2);
        // Evaluate: for h in 0..8 (output positions), rh in 0..3, the
        // physical element must hold logical h + rh.
        for hh in 0..8 {
            for rr in 0..3 {
                let mut env = Env::new();
                env.bind(&h, hh);
                env.bind(&rh, rr);
                let t = out[0].eval(&env);
                let b = out[1].eval(&env);
                // Tile content: tile t starts at logical t*S.
                assert_eq!(t * 4 + b, hh + rr, "h={hh} rh={rr}");
                assert!((0..6).contains(&b), "offset {b} out of tile");
                // Eq. 1 keeps a whole window inside one tile.
                assert_eq!(t, hh / 4);
            }
        }
    }

    #[test]
    fn store_at_host_reserves_slot() {
        let l = Layout::identity(Shape::new([3, 4]))
            .with(LayoutPrim::StoreAtHost { dim: 0 })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[4, 4]);
        assert_eq!(l.physical_to_logical(&[3, 0]).unwrap(), None);
        assert_eq!(l.logical_to_physical(&[2, 1]).unwrap(), vec![2, 1]);
    }

    #[test]
    fn invalid_primitives_rejected() {
        let l = layout4([1, 8, 4, 4]);
        assert!(matches!(
            l.clone()
                .with(LayoutPrim::Split {
                    dim: 1,
                    factors: vec![3, 2]
                })
                .unwrap_err(),
            LayoutError::BadFactors { .. }
        ));
        assert!(matches!(
            l.clone()
                .with(LayoutPrim::Reorder {
                    perm: vec![0, 0, 2, 3]
                })
                .unwrap_err(),
            LayoutError::BadPermutation(_)
        ));
        assert!(matches!(
            l.clone()
                .with(LayoutPrim::Unfold {
                    dim: 2,
                    tile: 8,
                    stride: 1
                })
                .unwrap_err(),
            LayoutError::BadUnfold { .. }
        ));
        assert!(matches!(
            l.with(LayoutPrim::Fuse { start: 3, count: 2 }).unwrap_err(),
            LayoutError::BadFuseRange { .. }
        ));
    }

    #[test]
    fn swizzle_is_a_bijection_per_src_slice() {
        // 8x16, XOR the low 2 bits of dim 1 with the low 2 bits of dim 0.
        let l = Layout::identity(Shape::new([8, 16]))
            .with(LayoutPrim::Swizzle {
                dim: 1,
                src: 0,
                bits: 2,
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[8, 16]);
        // Spot-check the XOR arithmetic: col 5 (0b0101) in row 3 (0b0011)
        // lands at 0b0101 ^ 0b0011-low-2 = 0b0110 = 6.
        assert_eq!(l.logical_to_physical(&[3, 5]).unwrap(), vec![3, 6]);
        // Bijection: every physical slot holds exactly one logical element.
        let mut seen = std::collections::HashSet::new();
        for r in 0..8 {
            for c in 0..16 {
                let p = l.logical_to_physical(&[r, c]).unwrap();
                assert_eq!(p[0], r);
                assert!(seen.insert((p[0], p[1])), "collision at {p:?}");
                assert_eq!(l.physical_to_logical(&p).unwrap(), Some(vec![r, c]));
            }
        }
        let data = NdBuf::from_fn(Shape::new([8, 16]), |i| i as f32);
        let packed = l.pack(&data).unwrap();
        assert_eq!(l.unpack(&packed).unwrap().data(), data.data());
    }

    #[test]
    fn morton_interleaves_bits() {
        let l = Layout::identity(Shape::new([4, 4]))
            .with(LayoutPrim::Morton { dim: 0 })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[16]);
        // (x=0b10, y=0b01) -> bits x1 y1 x0 y0 = 1 0 0 1 = 9.
        assert_eq!(l.logical_to_physical(&[2, 1]).unwrap(), vec![9]);
        assert_eq!(l.physical_to_logical(&[9]).unwrap(), Some(vec![2, 1]));
        let mut seen = std::collections::HashSet::new();
        for x in 0..4 {
            for y in 0..4 {
                let p = l.logical_to_physical(&[x, y]).unwrap();
                assert!(seen.insert(p[0]));
                assert_eq!(l.physical_to_logical(&p).unwrap(), Some(vec![x, y]));
            }
        }
        let data = NdBuf::from_fn(Shape::new([4, 4]), |i| i as f32);
        let packed = l.pack(&data).unwrap();
        assert_eq!(l.unpack(&packed).unwrap().data(), data.data());
    }

    #[test]
    fn block_diag_rotates_rows() {
        let l = Layout::identity(Shape::new([4, 8]))
            .with(LayoutPrim::BlockDiag {
                dim: 1,
                src: 0,
                block: 2,
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[4, 8]);
        // Row 3: col c lands at (c + 6) mod 8.
        assert_eq!(l.logical_to_physical(&[3, 5]).unwrap(), vec![3, 3]);
        assert_eq!(l.physical_to_logical(&[3, 3]).unwrap(), Some(vec![3, 5]));
        let data = NdBuf::from_fn(Shape::new([4, 8]), |i| i as f32);
        let packed = l.pack(&data).unwrap();
        assert_eq!(l.unpack(&packed).unwrap().data(), data.data());
    }

    #[test]
    fn new_primitives_validate_parameters() {
        let l = Layout::identity(Shape::new([8, 12]));
        // 12 is not divisible by 2^3.
        assert!(matches!(
            l.clone()
                .with(LayoutPrim::Swizzle {
                    dim: 1,
                    src: 0,
                    bits: 3
                })
                .unwrap_err(),
            LayoutError::BadSwizzle { .. }
        ));
        assert!(matches!(
            l.clone()
                .with(LayoutPrim::Swizzle {
                    dim: 0,
                    src: 0,
                    bits: 1
                })
                .unwrap_err(),
            LayoutError::BadSwizzle { .. }
        ));
        // 8 != 12 and 12 is not a power of two.
        assert!(matches!(
            l.clone().with(LayoutPrim::Morton { dim: 0 }).unwrap_err(),
            LayoutError::BadMorton { .. }
        ));
        assert!(matches!(
            l.clone()
                .with(LayoutPrim::BlockDiag {
                    dim: 1,
                    src: 0,
                    block: 12
                })
                .unwrap_err(),
            LayoutError::BadBlockDiag { .. }
        ));
        assert!(matches!(
            l.with(LayoutPrim::BlockDiag {
                dim: 1,
                src: 1,
                block: 2
            })
            .unwrap_err(),
            LayoutError::BadBlockDiag { .. }
        ));
    }

    #[test]
    fn new_primitive_names_and_display() {
        let l = Layout::identity(Shape::new([4, 4, 8]))
            .with(LayoutPrim::Morton { dim: 0 })
            .unwrap()
            .with(LayoutPrim::Swizzle {
                dim: 1,
                src: 0,
                bits: 2,
            })
            .unwrap()
            .with(LayoutPrim::BlockDiag {
                dim: 1,
                src: 0,
                block: 1,
            })
            .unwrap();
        assert_eq!(
            l.physical_dim_names(&["x", "y", "c"]),
            vec!["x~y", "c^x~y@x~y"]
        );
        let s = format!("{l}");
        assert!(s.contains("morton(0)"), "{s}");
        assert!(s.contains("swizzle(1, src=0, bits=2)"), "{s}");
        assert!(s.contains("block_diag(1, src=0, block=1)"), "{s}");
    }

    #[test]
    fn display_is_informative() {
        let l = layout4([1, 8, 4, 4])
            .with(LayoutPrim::Reorder {
                perm: vec![0, 2, 3, 1],
            })
            .unwrap();
        let s = format!("{l}");
        assert!(s.contains("reorder"), "{s}");
    }

    #[test]
    fn inverse_primitives_undo() {
        let mut l = Layout::identity(Shape::new([8]))
            .with(LayoutPrim::Unfold {
                dim: 0,
                tile: 4,
                stride: 2,
            })
            .unwrap();
        assert_eq!(l.physical_shape().dims(), &[3, 4]);
        l.fold().unwrap();
        assert!(l.is_identity());
        assert!(l.fold().is_err());
        l.apply(LayoutPrim::Pad {
            dim: 0,
            before: 0,
            after: 3,
        })
        .unwrap();
        l.unpad().unwrap();
        assert!(l.is_identity());
        l.apply(LayoutPrim::StoreAtHost { dim: 0 }).unwrap();
        l.decouple_at().unwrap();
        assert!(l.is_identity());
        assert!(l.decouple_at().is_err());
    }
}
